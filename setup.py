"""Setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed editable (``pip install -e . --no-use-pep517``) in
offline environments that lack the ``wheel`` package required by the PEP 517
editable build path.
"""

from setuptools import setup

setup()
