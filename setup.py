"""Setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can still be installed editable in offline environments that lack
the ``wheel`` package required by the PEP 517/660 editable build path
(``pip install -e . --no-use-pep517``, or ``python setup.py develop`` when
even that is unavailable).  CI installs normally with ``pip install -e .``.
"""

from setuptools import setup

setup()
