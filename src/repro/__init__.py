"""repro — Velocity Partitioning for moving-object indexes.

A from-scratch reproduction of *"Boosting Moving Object Indexing through
Velocity Partitioning"* (Nguyen, He, Zhang, Ward — PVLDB 5(9), 2012).

The package contains the paper's core contribution (the VP technique:
velocity analyzer, DVA coordinate frames, index manager) plus every
substrate it relies on: a simulated paged storage layer with an LRU buffer,
the TPR-tree/TPR*-tree family, a B+-tree-based Bx-tree with space-filling
curves and velocity histograms, road-network workload generators in the
style of the Chen et al. benchmark, and an experiment harness that
regenerates every figure of the paper's evaluation.

Quickstart::

    from repro import (
        WorkloadParameters, build_workload, build_standard_indexes,
        ExperimentRunner,
    )

    params = WorkloadParameters(num_objects=2000)
    workload = build_workload("CH", params)
    indexes = build_standard_indexes(workload, params)
    runner = ExperimentRunner(workload)
    for name, index in indexes.items():
        print(runner.run(index, name=name).as_row())
"""

from repro.geometry import Point, Rect, Vector, MovingRect
from repro.objects import (
    MovingObject,
    RangeQuery,
    CircularRange,
    RectangularRange,
    TimeSliceRangeQuery,
    TimeIntervalRangeQuery,
    MovingRangeQuery,
    KNNQuery,
    AdaptiveRadius,
    k_nearest_neighbors,
)
from repro.storage import BufferManager, DiskManager, IOStats
from repro.tprtree import TPRTree, TPRStarTree
from repro.btree import BPlusTree
from repro.bxtree import BxTree, HilbertCurve, ZCurve
from repro.core import (
    VelocityAnalyzer,
    VelocityPartitioning,
    DominantVelocityAxis,
    CoordinateFrame,
    IndexManager,
    VPIndex,
    TauMonitor,
    refresh_taus,
    make_vp_bx_tree,
    make_vp_tprstar_tree,
)
from repro.network import RoadNetwork, network_for
from repro.workload import (
    Workload,
    WorkloadParameters,
    build_workload,
    UniformWorkloadGenerator,
    NetworkWorkloadGenerator,
)
from repro.bench import ExperimentRunner, IndexMetrics, build_standard_indexes, run_comparison

__version__ = "1.0.0"

__all__ = [
    "Point",
    "Rect",
    "Vector",
    "MovingRect",
    "MovingObject",
    "RangeQuery",
    "CircularRange",
    "RectangularRange",
    "TimeSliceRangeQuery",
    "TimeIntervalRangeQuery",
    "MovingRangeQuery",
    "KNNQuery",
    "AdaptiveRadius",
    "k_nearest_neighbors",
    "BufferManager",
    "DiskManager",
    "IOStats",
    "TPRTree",
    "TPRStarTree",
    "BPlusTree",
    "BxTree",
    "HilbertCurve",
    "ZCurve",
    "VelocityAnalyzer",
    "VelocityPartitioning",
    "DominantVelocityAxis",
    "CoordinateFrame",
    "IndexManager",
    "VPIndex",
    "TauMonitor",
    "refresh_taus",
    "make_vp_bx_tree",
    "make_vp_tprstar_tree",
    "RoadNetwork",
    "network_for",
    "Workload",
    "WorkloadParameters",
    "build_workload",
    "UniformWorkloadGenerator",
    "NetworkWorkloadGenerator",
    "ExperimentRunner",
    "IndexMetrics",
    "build_standard_indexes",
    "run_comparison",
    "__version__",
]
