"""Simulated paged storage with an LRU buffer and I/O accounting.

The paper evaluates disk-based indexes (4 KB pages, a 50-page RAM buffer,
query/update I/O as the primary metric).  This package provides the same
substrate in simulation: every index node lives on a :class:`Page`, node
accesses go through a :class:`BufferManager`, and the buffer counts the
physical reads and writes that would have hit the disk.
"""

from repro.storage.page import Page, PAGE_SIZE_BYTES
from repro.storage.disk_manager import DiskManager
from repro.storage.buffer_manager import BufferManager
from repro.storage.faults import (
    FaultCounters,
    FaultInjectingDiskManager,
    FaultProfile,
    InjectedFault,
    PageReadError,
    PageWriteError,
    ShardDownError,
    fault_wrap,
)
from repro.storage.stats import IOStats, Counter
from repro.storage.durable import (
    DEFAULT_SLOT_BYTES,
    DurabilityError,
    FileDiskManager,
    PageCorruptionError,
    PageOverflowError,
    inject_bit_flip,
    inject_torn_page,
)

__all__ = [
    "Page",
    "PAGE_SIZE_BYTES",
    "DiskManager",
    "BufferManager",
    "DEFAULT_SLOT_BYTES",
    "DurabilityError",
    "FaultCounters",
    "FaultInjectingDiskManager",
    "FaultProfile",
    "FileDiskManager",
    "InjectedFault",
    "PageCorruptionError",
    "PageOverflowError",
    "PageReadError",
    "PageWriteError",
    "ShardDownError",
    "fault_wrap",
    "inject_bit_flip",
    "inject_torn_page",
    "IOStats",
    "Counter",
]
