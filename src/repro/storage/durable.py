"""Crash-safe file-backed page store behind the ``DiskManager`` contract.

:class:`FileDiskManager` persists pages into a single file of fixed-size
*slots*, duck-type compatible with the in-memory
:class:`~repro.storage.disk_manager.DiskManager` (same ``allocate`` /
``free`` / ``read`` / ``write`` / ``peek`` / ``stats`` surface), so it
slides under an unmodified :class:`~repro.storage.BufferManager` — and
under the :class:`~repro.storage.faults.FaultInjectingDiskManager`
wrapper, which composes injected faults with real file I/O.

**File layout.**  Slot 0 holds the store header (magic, format version,
byte order, slot size, allocation state: ``next_id`` plus the free list);
slot 1 is the double-write buffer; page ``p`` lives in slot ``2 + p``.
Every slot is framed as ``crc32 | length | body`` where the CRC covers the
*frame id* and body length as well as the body, so an all-zero slot, a
short slot, or a frame misdirected to the wrong slot can never validate.

**Checksums.**  Every :meth:`read` decodes the frame and verifies its CRC;
a mismatch raises :class:`PageCorruptionError`, a subclass of the fault
module's ``PageReadError`` — the serving layer's supervisor already treats
that as a transient infrastructure fault (bounded retries, then breaker +
recovery), so a flipped bit on disk degrades into a shard recovery instead
of silently corrupt answers.

**Torn-write protection.**  A page write first lands in the double-write
slot (tagged with its target page id) and is fsync'd there before the home
slot is touched.  A crash therefore leaves at most one of the two copies
torn: if the home write tore, the DW slot holds a complete copy and
:meth:`_recover_double_write` redoes it on the next open; if the DW write
tore, the home slot still holds the previous complete version and the torn
DW frame simply fails its CRC and is ignored.  The DW fsync doubles as the
barrier that makes reusing the single DW slot safe — fsync covers the
whole file, so every earlier home write is durable before the DW copy
protecting it is overwritten.

**What fsync guarantees here.**  ``write()`` guarantees *atomicity* (never
a half page), not durability: a page write is durable only once a later
fsync covers its home slot — the next page write's DW fsync, or
:meth:`sync`, which also persists the allocation header.  The checkpoint
protocol in :mod:`repro.serve.durable_store` calls ``sync()`` before it
snapshots the file, which is the only point the recovery path ever trusts
``pages.db``.  With ``fsync=False`` the same writes happen without any
barrier — tests use it for speed; real durability requires the default.

Page payloads are serialized with :mod:`repro.storage.codec`; a payload
whose encoding outgrows the slot raises :class:`PageOverflowError` (raise
``slot_bytes`` — the slot is deliberately larger than the simulated 4 KB
logical page because Python object encodings are not byte-budgeted).

The CRC detects corruption, not staleness: a crash can leave a page slot
holding an older *complete* version of the page (see the fsync note
above).  Layers that need point-in-time consistency must recover from a
synced snapshot plus a log, which is exactly what the serve-layer
checkpoint/WAL protocol does.
"""

from __future__ import annotations

import os
import struct
import sys
import zlib
from typing import Any, Callable, Dict, List, Optional

from repro.storage.codec import decode_payload, encode_payload
from repro.storage.faults import PageReadError
from repro.storage.page import Page
from repro.storage.stats import IOStats

#: Default slot size.  Four times the simulated 4 KB logical page: the
#: codec's Python-object encodings (pickled fallback values, per-value
#: tags) are not as tight as the paper's fixed-width entry model, and a
#: page that no longer fits its slot is unrecoverable.
DEFAULT_SLOT_BYTES = 16384

_MAGIC = b"RPRODSK1"
_FORMAT_VERSION = 1
#: Synthetic frame ids of the non-page slots (real page ids are >= 0).
_HEADER_ID = -2
_DW_ID = -3

_FRAME_HEADER = struct.Struct("<II")
_CRC_PREFIX = struct.Struct("<qI")
_HEADER_FIXED = struct.Struct("<8sIBIqI")
_I64 = struct.Struct("<q")


class DurabilityError(RuntimeError):
    """The durable store is unusable (bad header, wrong format, misuse)."""


class PageOverflowError(DurabilityError):
    """A page payload's encoding does not fit its fixed-size slot."""


class PageCorruptionError(PageReadError):
    """A page frame failed its CRC32 check on read.

    Subclassing :class:`~repro.storage.faults.PageReadError` is the
    integration with the serving layer: corruption surfaces as a transient
    read fault, so supervised reads retry it and repeated failures trip
    the shard's breaker / trigger recovery — no special-casing above the
    storage layer.
    """


class FileDiskManager:
    """A ``DiskManager`` over one paged file with CRC + double-write safety.

    Args:
        path: backing file; created when absent, reopened (with
            double-write recovery) when present.
        slot_bytes: on-disk slot size; must match the file's header when
            reopening an existing store.
        stats: shared I/O counters (a private one is created if omitted).
        fsync: issue real fsync barriers (see the module docstring);
            disable only in tests where durability across a host crash is
            irrelevant.
        crash_hook: optional test-only callable invoked at named points of
            the write protocol (``"dw:torn"`` between the two halves of a
            double-write frame, ``"dw:synced"`` after its fsync,
            ``"home:torn"`` between the halves of a home-slot write).  The
            crash tests SIGKILL the process inside the hook to land a real
            kill exactly inside a chosen torn-write window.
    """

    def __init__(
        self,
        path: str,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        stats: Optional[IOStats] = None,
        fsync: bool = True,
        crash_hook: Optional[Callable[[str], None]] = None,
    ) -> None:
        if slot_bytes < 256:
            raise ValueError("slot_bytes must be at least 256")
        self.path = str(path)
        self.slot_bytes = slot_bytes
        self.stats = stats if stats is not None else IOStats()
        self._fsync_enabled = fsync
        self._crash_hook = crash_hook
        self._free_ids: List[int] = []
        self._next_id = 0
        self._allocated: set = set()
        #: Pages allocated but never written back yet: their payloads only
        #: exist in memory (matching the in-memory manager, where a read
        #: after allocate returns the live object).
        self._pending: Dict[int, Page] = {}
        #: Double-write redo performed while opening (0 or 1).
        self.dw_recoveries = 0
        #: CRC mismatches detected by :meth:`read`/:meth:`peek`.
        self.checksum_failures = 0
        self._closed = False
        existed = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        if existed:
            self._recover_double_write()
            self._load_header()
        else:
            self._write_header()
            self._file_sync()

    # ------------------------------------------------------------------
    # Frame plumbing
    # ------------------------------------------------------------------
    def _hook(self, event: str) -> None:
        if self._crash_hook is not None:
            self._crash_hook(event)

    def _file_sync(self) -> None:
        if self._fsync_enabled:
            os.fsync(self._fd)

    def _slot_offset(self, frame_id: int) -> int:
        if frame_id == _HEADER_ID:
            return 0
        if frame_id == _DW_ID:
            return self.slot_bytes
        return (2 + frame_id) * self.slot_bytes

    def _frame(self, frame_id: int, body: bytes) -> bytes:
        crc = zlib.crc32(_CRC_PREFIX.pack(frame_id, len(body)) + body)
        return _FRAME_HEADER.pack(crc, len(body)) + body

    def _write_frame(self, frame_id: int, frame: bytes, label: str) -> None:
        offset = self._slot_offset(frame_id)
        if self._crash_hook is None:
            os.pwrite(self._fd, frame, offset)
            return
        # Two-part write with the hook between the halves: a SIGKILL
        # inside the hook leaves a genuinely torn frame on disk.
        half = max(1, len(frame) // 2)
        os.pwrite(self._fd, frame[:half], offset)
        self._hook(f"{label}:torn")
        os.pwrite(self._fd, frame[half:], offset + half)

    def _read_frame(self, frame_id: int) -> Optional[bytes]:
        """The frame body at ``frame_id``'s slot, or None if torn/invalid."""
        data = os.pread(self._fd, self.slot_bytes, self._slot_offset(frame_id))
        if len(data) < _FRAME_HEADER.size:
            return None
        crc, length = _FRAME_HEADER.unpack_from(data)
        if length > len(data) - _FRAME_HEADER.size:
            return None
        body = data[_FRAME_HEADER.size : _FRAME_HEADER.size + length]
        if zlib.crc32(_CRC_PREFIX.pack(frame_id, length) + body) != crc:
            return None
        return body

    def _protected_write(self, frame_id: int, body: bytes) -> None:
        """Write ``body`` to its slot under the double-write protocol."""
        frame = self._frame(frame_id, body)
        dw_body = _I64.pack(frame_id) + body
        dw_frame = self._frame(_DW_ID, dw_body)
        if len(dw_frame) > self.slot_bytes:
            raise PageOverflowError(
                f"frame {frame_id}: encoded payload is {len(body)} bytes; the "
                f"double-write copy does not fit a {self.slot_bytes}-byte slot "
                "(construct the FileDiskManager with a larger slot_bytes)"
            )
        self._write_frame(_DW_ID, dw_frame, "dw")
        self._file_sync()
        self._hook("dw:synced")
        self._write_frame(frame_id, frame, "home")

    def _recover_double_write(self) -> None:
        """Redo the home write a crash may have torn (idempotent)."""
        dw_body = self._read_frame(_DW_ID)
        if dw_body is None or len(dw_body) < _I64.size:
            return
        (target,) = _I64.unpack_from(dw_body)
        body = dw_body[_I64.size :]
        if self._read_frame(target) != body:
            os.pwrite(self._fd, self._frame(target, body), self._slot_offset(target))
            self._file_sync()
            self.dw_recoveries += 1
        # Invalidate the DW slot so a later crash cannot replay a stale
        # copy over a page that has legitimately moved on.
        os.pwrite(self._fd, b"\0" * _FRAME_HEADER.size, self._slot_offset(_DW_ID))
        self._file_sync()

    # ------------------------------------------------------------------
    # Header (allocation state) persistence
    # ------------------------------------------------------------------
    def _header_body(self) -> bytes:
        free = sorted(self._free_ids)
        fixed = _HEADER_FIXED.pack(
            _MAGIC,
            _FORMAT_VERSION,
            1 if sys.byteorder == "little" else 0,
            self.slot_bytes,
            self._next_id,
            len(free),
        )
        return fixed + struct.pack(f"<{len(free)}q", *free)

    def _write_header(self) -> None:
        body = self._header_body()
        if len(body) + _FRAME_HEADER.size + _I64.size > self.slot_bytes:
            raise DurabilityError(
                f"free list with {len(self._free_ids)} entries overflows the "
                f"{self.slot_bytes}-byte header slot; raise slot_bytes"
            )
        self._protected_write(_HEADER_ID, body)

    def _load_header(self) -> None:
        body = self._read_frame(_HEADER_ID)
        if body is None:
            raise DurabilityError(f"{self.path}: store header is missing or corrupt")
        magic, version, little, slot_bytes, next_id, free_count = (
            _HEADER_FIXED.unpack_from(body)
        )
        if magic != _MAGIC:
            raise DurabilityError(f"{self.path}: not a FileDiskManager store")
        if version != _FORMAT_VERSION:
            raise DurabilityError(
                f"{self.path}: format version {version} (this build reads "
                f"{_FORMAT_VERSION})"
            )
        if bool(little) != (sys.byteorder == "little"):
            raise DurabilityError(
                f"{self.path}: store was written on a "
                f"{'little' if little else 'big'}-endian machine"
            )
        if slot_bytes != self.slot_bytes:
            raise DurabilityError(
                f"{self.path}: store uses {slot_bytes}-byte slots, opened with "
                f"slot_bytes={self.slot_bytes}"
            )
        self._next_id = next_id
        free = struct.unpack_from(f"<{free_count}q", body, _HEADER_FIXED.size)
        self._free_ids = list(free)
        self._allocated = set(range(next_id)) - set(free)

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, payload: Any = None) -> Page:
        """Allocate a fresh page (or reuse a freed page id).

        Pure metadata: nothing touches the file until the page's first
        write-back (the buffer keeps fresh pages dirty, so one always
        happens before the page can be evicted) or the next :meth:`sync`.
        """
        if self._free_ids:
            page_id = self._free_ids.pop()
        else:
            page_id = self._next_id
            self._next_id += 1
        page = Page(page_id=page_id, payload=payload)
        self._allocated.add(page_id)
        self._pending[page_id] = page
        return page

    def free(self, page_id: int) -> None:
        """Release a page and recycle its id.

        Raises:
            KeyError: if the page does not exist.
        """
        if page_id not in self._allocated:
            raise KeyError(f"page {page_id} does not exist")
        self._allocated.discard(page_id)
        self._pending.pop(page_id, None)
        self._free_ids.append(page_id)

    # ------------------------------------------------------------------
    # Physical I/O
    # ------------------------------------------------------------------
    def read(self, page_id: int) -> Page:
        """Read and CRC-verify a page (counted as one physical read).

        Raises:
            KeyError: if the page is not allocated.
            PageCorruptionError: if the slot's frame fails its checksum —
                counted in :attr:`checksum_failures`, and *not* counted as
                a physical read (the read never yielded a page, matching
                the fault injector's accounting of failed attempts).
        """
        if page_id not in self._allocated:
            raise KeyError(f"page {page_id} does not exist")
        pending = self._pending.get(page_id)
        if pending is not None:
            self.stats.record_physical_read()
            return pending
        body = self._read_frame(page_id)
        if body is None:
            self.checksum_failures += 1
            raise PageCorruptionError(
                f"page {page_id} failed its CRC32 check in {self.path}"
            )
        self.stats.record_physical_read()
        return Page(page_id=page_id, payload=decode_payload(body))

    def write(self, page: Page) -> None:
        """Serialize and persist a page under the double-write protocol.

        Counted as one physical write; the page's home slot is atomic from
        this call on (see the module docstring), durable from the next
        fsync-bearing operation on.

        Raises:
            KeyError: if the page is not allocated.
            PageOverflowError: if the encoded payload outgrows the slot.
        """
        if page.page_id not in self._allocated:
            raise KeyError(f"page {page.page_id} does not exist")
        self._protected_write(page.page_id, encode_payload(page.payload))
        self._pending.pop(page.page_id, None)
        page.dirty = False
        page.write_backs += 1
        self.stats.record_physical_write()

    def sync(self) -> None:
        """Persist the allocation header and fsync the file.

        After ``sync()`` returns, every previously written page and the
        current ``next_id``/free-list are durable — the precondition for
        snapshotting the file as a checkpoint image.  Pages still pending
        (allocated, never written) are *not* persisted; flush the buffer
        first.
        """
        self._write_header()
        self._file_sync()

    def close(self) -> None:
        """``sync()`` then close the file descriptor (idempotent)."""
        if self._closed:
            return
        self.sync()
        self._closed = True
        os.close(self._fd)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def peek(self, page_id: int) -> Page:
        """Access a page without recording I/O (testing/debugging only)."""
        if page_id not in self._allocated:
            raise KeyError(f"page {page_id} does not exist")
        pending = self._pending.get(page_id)
        if pending is not None:
            return pending
        body = self._read_frame(page_id)
        if body is None:
            self.checksum_failures += 1
            raise PageCorruptionError(
                f"page {page_id} failed its CRC32 check in {self.path}"
            )
        return Page(page_id=page_id, payload=decode_payload(body))

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._allocated

    def __len__(self) -> int:
        return len(self._allocated)

    @property
    def allocated_page_ids(self) -> List[int]:
        """Page ids currently allocated."""
        return sorted(self._allocated)


# ----------------------------------------------------------------------
# File-level fault injection (the durable analogue of faults.py)
# ----------------------------------------------------------------------
def _page_slot_offset(page_id: int, slot_bytes: int) -> int:
    return (2 + page_id) * slot_bytes


def inject_bit_flip(
    path: str,
    page_id: int,
    slot_bytes: int = DEFAULT_SLOT_BYTES,
    byte_offset: int = 0,
    bit: int = 0,
) -> None:
    """Flip one bit inside a stored page's body (silent media corruption).

    ``byte_offset`` is relative to the frame *body*; the frame's CRC is
    left untouched, so the next read of the page must fail its checksum.
    """
    offset = _page_slot_offset(page_id, slot_bytes) + _FRAME_HEADER.size + byte_offset
    fd = os.open(path, os.O_RDWR)
    try:
        byte = os.pread(fd, 1, offset)
        if not byte:
            raise ValueError(f"page {page_id} has no byte at body offset {byte_offset}")
        os.pwrite(fd, bytes([byte[0] ^ (1 << bit)]), offset)
    finally:
        os.close(fd)


def inject_torn_page(
    path: str, page_id: int, slot_bytes: int = DEFAULT_SLOT_BYTES
) -> None:
    """Zero the second half of a page's slot (a simulated torn write)."""
    offset = _page_slot_offset(page_id, slot_bytes)
    half = slot_bytes // 2
    fd = os.open(path, os.O_RDWR)
    try:
        os.pwrite(fd, b"\0" * half, offset + half)
    finally:
        os.close(fd)


__all__ = [
    "DEFAULT_SLOT_BYTES",
    "DurabilityError",
    "FileDiskManager",
    "PageCorruptionError",
    "PageOverflowError",
    "inject_bit_flip",
    "inject_torn_page",
]
