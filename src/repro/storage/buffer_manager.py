"""LRU buffer manager with batch-aware sweep hints.

The paper's experiments use a 50-page RAM buffer (Table 1); leaf accesses
therefore dominate physical I/O because interior nodes tend to stay
resident.  The buffer manager implements standard steal/no-force LRU
buffering over the :class:`~repro.storage.DiskManager`:

* a buffer hit costs no physical I/O;
* a miss costs one physical read (plus one physical write if the evicted
  frame is dirty);
* pinned pages are never evicted.

Two *advisory* hints let the execution layer above describe a key-ordered
batch sweep (the B+-tree's ``apply_batch`` / ``range_search_batch``) so the
replacement policy stops working against it:

* :meth:`pin_frontier` pins the sweep's current cursor pages (leaf plus
  parent) so the frontier cannot be evicted mid-batch by the sweep's own
  leaf traffic (the B+-tree's update sweep holds the same pins directly on
  its cursor pages, which is cheaper when only one cursor moves at a
  time);
* :meth:`advise_sequential` prefers evicting the most recently used *clean*
  unpinned page while a sweep is running.  Under a sweep, that page is the
  leaf the sweep just moved past — which will not be revisited (keys only
  ascend) — whereas the LRU victim is typically a root or interior page
  every later descent still needs.  This is the classic defense against
  sequential flooding; dirty pages keep normal LRU treatment so the hint
  never forces eager write-backs.

Both hints are advisory: they never change which pages a caller sees, only
which frame is evicted, and :attr:`batch_hints_enabled` turns them into
no-ops so benchmarks can measure their effect.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterable, Optional

from repro.storage.disk_manager import DiskManager
from repro.storage.page import Page
from repro.storage.stats import IOStats

#: RAM buffer size used throughout the experiments (Table 1 of the paper).
DEFAULT_BUFFER_PAGES = 50


class BufferPoolFullError(RuntimeError):
    """Raised when every frame in the pool is pinned and a new page is needed."""


class BufferManager:
    """A fixed-capacity LRU page buffer."""

    def __init__(
        self,
        disk: Optional[DiskManager] = None,
        capacity: int = DEFAULT_BUFFER_PAGES,
        stats: Optional[IOStats] = None,
    ) -> None:
        """Create a buffer over ``disk`` (a private disk is created if omitted).

        The buffer and its disk always share one :class:`IOStats` object so
        every physical read/write is counted exactly once.  Passing both a
        ``disk`` and a ``stats`` is only allowed when they already agree —
        silently preferring either object would leave the caller watching
        counters that the other half of the I/O never reaches.
        """
        if capacity < 1:
            raise ValueError("buffer capacity must be at least one page")
        if disk is not None and stats is not None and disk.stats is not stats:
            raise ValueError(
                "conflicting IOStats: the disk manager already records into its "
                "own stats object; pass either disk or stats, or the disk's own "
                "stats object"
            )
        if disk is not None:
            self.stats = disk.stats
        else:
            self.stats = stats if stats is not None else IOStats()
        self.disk = disk if disk is not None else DiskManager(self.stats)
        self.capacity = capacity
        self._frames: "OrderedDict[int, Page]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Master switch for the sweep hints; benchmarks flip it off to
        #: measure the unhinted replacement policy on identical traffic.
        self.batch_hints_enabled = True
        self._frontier: Dict[int, Page] = {}
        self._sequential_depth = 0

    # ------------------------------------------------------------------
    # Page lifecycle
    # ------------------------------------------------------------------
    def new_page(self, payload: Any = None) -> Page:
        """Allocate a new page and cache it (dirty) in the buffer.

        Room is made *before* the page is allocated: if evicting a dirty
        victim fails (e.g. an injected :class:`PageWriteError`), the error
        surfaces with the pool unchanged and no orphan page allocated on
        disk — a retry starts from a clean slate.
        """
        self._ensure_capacity()
        page = self.disk.allocate(payload)
        page.mark_dirty()
        self._frames[page.page_id] = page
        return page

    def fetch(self, page_id: int) -> Page:
        """Fetch a page, reading it from disk on a miss.

        The miss path is exception-safe against disk faults: room is made
        first (an eviction write-back failure leaves the victim resident
        and dirty), the disk read runs second (a read failure leaves the
        pool untouched), and only then is the frame admitted — a plain
        dictionary insert that cannot fail.  A failed fetch therefore
        never leaves a half-admitted frame, and retrying it costs exactly
        one extra logical read + buffer miss per failed attempt.
        """
        self.stats.record_logical_read()
        if page_id in self._frames:
            self.hits += 1
            self.stats.record_buffer_hit()
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        self.misses += 1
        self.stats.record_buffer_miss()
        self._ensure_capacity()
        page = self.disk.read(page_id)
        self._frames[page_id] = page
        return page

    def mark_dirty(self, page: Page) -> None:
        """Record a modification of a buffered page."""
        self.stats.record_logical_write()
        page.mark_dirty()

    def resident_page(self, page_id: int) -> Optional[Page]:
        """The resident frame for ``page_id``, or None if it is not buffered.

        Unlike :meth:`fetch` this performs no I/O and records no access: it
        exists so a batch sweep that already holds a node (its cursor) can
        mark the node's page dirty without paying — or accounting — a second
        fetch of a page it provably has in hand.
        """
        return self._frames.get(page_id)

    def free_page(self, page_id: int) -> None:
        """Drop a page from the buffer and the disk (e.g. after a node merge)."""
        frontier_page = self._frontier.pop(page_id, None)
        if frontier_page is not None:
            frontier_page.unpin()
        self._frames.pop(page_id, None)
        self.disk.free(page_id)

    def flush(self) -> None:
        """Write every dirty buffered page back to disk."""
        for page in self._frames.values():
            if page.dirty:
                self.disk.write(page)

    def clear(self) -> None:
        """Flush and empty the buffer (keeps the disk contents)."""
        self.release_frontier()
        self.flush()
        self._frames.clear()

    def __enter__(self) -> "BufferManager":
        """Context-manager support: ``with buffer: ...`` flushes on exit.

        The durable backend only persists what reaches the disk manager,
        so scopes that mutate an index flush their dirty frames on the way
        out — including the exceptional way out, where losing the writes
        on top of the exception would compound the failure.
        """
        return self

    def __exit__(self, *exc_info) -> None:
        self.flush()

    # ------------------------------------------------------------------
    # Explicit pinning
    # ------------------------------------------------------------------
    def pin(self, page_id: int) -> Page:
        """Fetch ``page_id`` and pin it; the caller must :meth:`unpin` it.

        Pinned pages are never evicted; when every frame is pinned and a new
        page is needed, :class:`BufferPoolFullError` is raised.
        """
        page = self.fetch(page_id)
        page.pin()
        return page

    def unpin(self, page_id: int) -> None:
        """Release one pin on a resident page.

        Raises:
            KeyError: if the page is not resident (a pinned page cannot have
                been evicted, so this always indicates a caller bug).
            ValueError: if the page's pin count would underflow.
        """
        page = self._frames.get(page_id)
        if page is None:
            raise KeyError(f"page {page_id} is not resident; cannot unpin")
        page.unpin()

    # ------------------------------------------------------------------
    # Batch sweep hints (advisory)
    # ------------------------------------------------------------------
    def pin_frontier(self, page_ids: Iterable[int]) -> None:
        """Replace the sweep-frontier pin set with ``page_ids``.

        The frontier is the set of cursor pages a key-ordered batch sweep is
        currently positioned on (leaf plus parent).  Pages leaving the set
        are unpinned, pages entering it are pinned; ids that are not
        resident are ignored (the hint never triggers I/O of its own — the
        sweep has, by construction, just fetched its cursor pages).

        Call :meth:`release_frontier` (or ``pin_frontier(())``) when the
        sweep finishes; a frontier is also released by :meth:`clear`.
        """
        if not self.batch_hints_enabled:
            return
        # Never pin more than capacity - 4 frames: a root-to-leaf descent must
        # always find evictable frames, however small the pool is configured.
        limit = self.capacity - 4
        frames = self._frames
        frontier = self._frontier
        wanted: Dict[int, Page] = {}
        for page_id in page_ids:
            if len(wanted) >= limit:
                break
            page = frames.get(page_id)
            if page is not None:
                wanted[page_id] = page
        if wanted.keys() == frontier.keys():
            return
        for page_id, page in frontier.items():
            if page_id not in wanted:
                page.unpin()
        for page_id, page in wanted.items():
            if page_id not in frontier:
                page.pin()
        self._frontier = wanted

    def release_frontier(self) -> None:
        """Unpin every frontier page (end of a batch sweep)."""
        for page in self._frontier.values():
            page.unpin()
        self._frontier = {}

    def advise_sequential(self, active: bool) -> None:
        """Advise that a key-ordered sequential sweep is starting/ending.

        While active, eviction prefers the most recently used *unpinned*
        page (the page the sweep just moved past, which ascending keys will
        never revisit) over the LRU victim (typically an interior page that
        later descents still need).  Calls nest; the hint is advisory and
        disabled along with :attr:`batch_hints_enabled`.
        """
        if not self.batch_hints_enabled:
            return
        if active:
            self._sequential_depth += 1
        elif self._sequential_depth > 0:
            self._sequential_depth -= 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_capacity(self) -> None:
        """Evict until one free frame exists (may raise; pool stays valid).

        An eviction that fails mid write-back leaves the victim resident
        and dirty (``_evict_one`` only drops a frame after its write-back
        succeeded), so callers can always retry after a transient fault.
        """
        while len(self._frames) >= self.capacity:
            self._evict_one()

    def _evict_one(self) -> None:
        if self._sequential_depth > 0:
            # Sequential sweep: the most recently used *clean* unpinned page
            # is the leaf the sweep just scanned past, which ascending keys
            # never revisit — evict it and keep the interior pages.  Dirty
            # pages are left to the LRU fallback: evicting a just-modified
            # leaf would force an immediate physical write that plain LRU
            # frequently coalesces with the page's next modification.
            for page_id, page in reversed(self._frames.items()):
                if page.is_pinned or page.dirty:
                    continue
                del self._frames[page_id]
                return
        for page_id, page in self._frames.items():
            if page.is_pinned:
                continue
            if page.dirty:
                self.disk.write(page)
            del self._frames[page_id]
            return
        raise BufferPoolFullError("all buffer frames are pinned")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, page_id: int) -> bool:
        return page_id in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def frontier_page_ids(self) -> "frozenset[int]":
        """The currently pinned sweep-frontier pages (for tests/diagnostics)."""
        return frozenset(self._frontier)
