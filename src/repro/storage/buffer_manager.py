"""LRU buffer manager.

The paper's experiments use a 50-page RAM buffer (Table 1); leaf accesses
therefore dominate physical I/O because interior nodes tend to stay
resident.  The buffer manager implements standard steal/no-force LRU
buffering over the :class:`~repro.storage.DiskManager`:

* a buffer hit costs no physical I/O;
* a miss costs one physical read (plus one physical write if the evicted
  frame is dirty);
* pinned pages are never evicted.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Optional

from repro.storage.disk_manager import DiskManager
from repro.storage.page import Page
from repro.storage.stats import IOStats

#: RAM buffer size used throughout the experiments (Table 1 of the paper).
DEFAULT_BUFFER_PAGES = 50


class BufferPoolFullError(RuntimeError):
    """Raised when every frame in the pool is pinned and a new page is needed."""


class BufferManager:
    """A fixed-capacity LRU page buffer."""

    def __init__(
        self,
        disk: Optional[DiskManager] = None,
        capacity: int = DEFAULT_BUFFER_PAGES,
        stats: Optional[IOStats] = None,
    ) -> None:
        """Create a buffer over ``disk`` (a private disk is created if omitted).

        The buffer and its disk always share one :class:`IOStats` object so
        every physical read/write is counted exactly once.  Passing both a
        ``disk`` and a ``stats`` is only allowed when they already agree —
        silently preferring either object would leave the caller watching
        counters that the other half of the I/O never reaches.
        """
        if capacity < 1:
            raise ValueError("buffer capacity must be at least one page")
        if disk is not None and stats is not None and disk.stats is not stats:
            raise ValueError(
                "conflicting IOStats: the disk manager already records into its "
                "own stats object; pass either disk or stats, or the disk's own "
                "stats object"
            )
        if disk is not None:
            self.stats = disk.stats
        else:
            self.stats = stats if stats is not None else IOStats()
        self.disk = disk if disk is not None else DiskManager(self.stats)
        self.capacity = capacity
        self._frames: "OrderedDict[int, Page]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    # Page lifecycle
    # ------------------------------------------------------------------
    def new_page(self, payload: Any = None) -> Page:
        """Allocate a new page and cache it (dirty) in the buffer."""
        page = self.disk.allocate(payload)
        page.mark_dirty()
        self._admit(page)
        return page

    def fetch(self, page_id: int) -> Page:
        """Fetch a page, reading it from disk on a miss."""
        self.stats.record_logical_read()
        if page_id in self._frames:
            self.hits += 1
            self._frames.move_to_end(page_id)
            return self._frames[page_id]
        self.misses += 1
        page = self.disk.read(page_id)
        self._admit(page)
        return page

    def mark_dirty(self, page: Page) -> None:
        """Record a modification of a buffered page."""
        self.stats.record_logical_write()
        page.mark_dirty()

    def free_page(self, page_id: int) -> None:
        """Drop a page from the buffer and the disk (e.g. after a node merge)."""
        self._frames.pop(page_id, None)
        self.disk.free(page_id)

    def flush(self) -> None:
        """Write every dirty buffered page back to disk."""
        for page in self._frames.values():
            if page.dirty:
                self.disk.write(page)

    def clear(self) -> None:
        """Flush and empty the buffer (keeps the disk contents)."""
        self.flush()
        self._frames.clear()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _admit(self, page: Page) -> None:
        if page.page_id in self._frames:
            self._frames.move_to_end(page.page_id)
            return
        while len(self._frames) >= self.capacity:
            self._evict_one()
        self._frames[page.page_id] = page

    def _evict_one(self) -> None:
        for page_id, page in self._frames.items():
            if page.is_pinned:
                continue
            if page.dirty:
                self.disk.write(page)
            del self._frames[page_id]
            return
        raise BufferPoolFullError("all buffer frames are pinned")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, page_id: int) -> bool:
        return page_id in self._frames

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
