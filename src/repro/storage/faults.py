"""Deterministic fault injection for the simulated storage layer.

Every layer above the disk — buffer manager, indexes, the sharded serving
layer — has an implicit contract that page I/O succeeds.  Real disks (and
real shard workers) do not honor that contract, so this module provides a
:class:`FaultInjectingDiskManager` that wraps any
:class:`~repro.storage.DiskManager` and injects failures according to a
*deterministic, seedable* :class:`FaultProfile`.  Determinism is the whole
point: a chaos test that fails under seed 1337 must fail the same way on
every machine and every rerun, so fault decisions come from a private
``random.Random(seed)`` plus explicit per-operation schedules, never from
wall-clock time or global randomness.

Four fault families are supported:

* **Transient read faults** — :class:`PageReadError` raised *instead of*
  performing the read (the failed attempt reaches no platter, so no
  physical read is recorded).  Triggered by a per-read probability, by
  scheduled read ordinals (``fail_reads_at``), or by page-id triggers
  (``fail_read_pages``, each firing ``page_fault_times`` times so retries
  eventually succeed).
* **Transient write faults** — :class:`PageWriteError`, same trigger
  vocabulary on the write path.
* **Injected latency** — a fixed per-read/per-write delay delivered
  through an injectable ``sleep`` callable, so tests can use a fake clock
  and benchmarks a real one.
* **Shard down** — a kill switch (:meth:`FaultInjectingDiskManager.kill`
  or the scheduled ``kill_at_op``) after which every read *and* write
  raises :class:`ShardDownError` until :meth:`revive` is called.  Unlike
  the transient families this is not retryable: the serving layer treats
  it as a dead worker and recovers by rebuilding the shard.

The wrapper is duck-type compatible with :class:`DiskManager` (same
``allocate`` / ``free`` / ``read`` / ``write`` / ``peek`` / ``stats``
surface), so it can sit under a :class:`~repro.storage.BufferManager`
unchanged — including mid-run, by reassigning ``buffer.disk``.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional

from repro.storage.disk_manager import DiskManager
from repro.storage.page import Page
from repro.storage.stats import IOStats


class InjectedFault(IOError):
    """Base class of every fault this module injects.

    The supervisor layers above catch exactly this type: an
    :class:`InjectedFault` models an infrastructure failure (retry or
    recover), while any other exception is a software bug and must
    propagate unchanged.
    """


class PageReadError(InjectedFault):
    """A transient page read failure (retrying may succeed)."""


class PageWriteError(InjectedFault):
    """A transient page write failure (retrying may succeed)."""


class ShardDownError(InjectedFault):
    """The disk's worker is down; no operation succeeds until revival.

    Not transient: retrying against a dead shard cannot help, so the
    serving layer responds with circuit-breaking and shard recovery
    instead of backoff.
    """


@dataclass(frozen=True)
class FaultProfile:
    """A deterministic, seedable fault schedule.

    All trigger vocabularies compose: an operation fails if *any* trigger
    fires for it (scheduled ordinal, page trigger, or the seeded
    probability draw).  Ordinals count *attempts* per operation kind
    (0-based), including attempts that themselves failed — which is what
    makes retry tests deterministic.

    Attributes:
        seed: seed of the private RNG behind the probability triggers.
        read_error_rate: per-read probability of a :class:`PageReadError`.
        write_error_rate: per-write probability of a :class:`PageWriteError`.
        fail_reads_at: read ordinals that raise (each fires once).
        fail_writes_at: write ordinals that raise (each fires once).
        fail_read_pages: page ids whose first ``page_fault_times`` reads
            raise (transient: later retries succeed).
        fail_write_pages: page ids whose first ``page_fault_times`` writes
            raise.
        page_fault_times: how many times each page trigger fires.
        read_latency_s: injected delay before every read.
        write_latency_s: injected delay before every write.
        kill_at_op: total operation ordinal (reads + writes combined) at
            which the disk goes down, as if the worker died mid-stream;
            ``None`` disables the scheduled kill.
    """

    seed: int = 0
    read_error_rate: float = 0.0
    write_error_rate: float = 0.0
    fail_reads_at: FrozenSet[int] = frozenset()
    fail_writes_at: FrozenSet[int] = frozenset()
    fail_read_pages: FrozenSet[int] = frozenset()
    fail_write_pages: FrozenSet[int] = frozenset()
    page_fault_times: int = 1
    read_latency_s: float = 0.0
    write_latency_s: float = 0.0
    kill_at_op: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("read_error_rate", "write_error_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.page_fault_times < 0:
            raise ValueError("page_fault_times must be non-negative")


@dataclass
class FaultCounters:
    """What the injector actually did (for assertions and bench reports)."""

    read_errors: int = 0
    write_errors: int = 0
    down_errors: int = 0
    injected_latency_s: float = 0.0

    @property
    def total_errors(self) -> int:
        """Every injected error across the three error families."""
        return self.read_errors + self.write_errors + self.down_errors


class FaultInjectingDiskManager:
    """A :class:`DiskManager` wrapper that injects faults per a profile.

    Only the physical I/O surface (``read`` / ``write``) injects faults;
    allocation and free are metadata operations and always delegate.  A
    failed operation raises *before* touching the inner disk, so the
    shared :class:`IOStats` never counts I/O that "never reached the
    platter" — the accounting a retry loop then produces is exactly one
    extra buffer miss per failed attempt, which the chaos tests pin.

    Args:
        inner: the wrapped disk (a private one is created if omitted).
        profile: the fault schedule; defaults to a no-fault profile.
        sleep: latency delivery callable (inject a fake clock in tests).
    """

    def __init__(
        self,
        inner: Optional[DiskManager] = None,
        profile: Optional[FaultProfile] = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.inner = inner if inner is not None else DiskManager()
        self.profile = profile if profile is not None else FaultProfile()
        self._sleep = sleep
        self._rng = random.Random(self.profile.seed)
        self.counters = FaultCounters()
        self.reads_attempted = 0
        self.writes_attempted = 0
        self._down = False
        self._page_read_faults: Dict[int, int] = {
            page_id: self.profile.page_fault_times
            for page_id in self.profile.fail_read_pages
        }
        self._page_write_faults: Dict[int, int] = {
            page_id: self.profile.page_fault_times
            for page_id in self.profile.fail_write_pages
        }

    # ------------------------------------------------------------------
    # Kill switch
    # ------------------------------------------------------------------
    def kill(self) -> None:
        """Take the disk down: every subsequent read/write raises."""
        self._down = True

    def revive(self) -> None:
        """Bring the disk back up (the transient profiles stay active)."""
        self._down = False

    @property
    def is_down(self) -> bool:
        """Whether the kill switch is currently engaged."""
        return self._down

    # ------------------------------------------------------------------
    # Fault decision
    # ------------------------------------------------------------------
    @property
    def _ops_attempted(self) -> int:
        return self.reads_attempted + self.writes_attempted

    def _maybe_scheduled_kill(self) -> None:
        kill_at = self.profile.kill_at_op
        if kill_at is not None and self._ops_attempted >= kill_at:
            self._down = True

    def _check_down(self, page_id: int) -> None:
        if self._down:
            self.counters.down_errors += 1
            raise ShardDownError(f"disk is down (page {page_id})")

    def _inject_latency(self, seconds: float) -> None:
        if seconds > 0.0:
            self.counters.injected_latency_s += seconds
            self._sleep(seconds)

    def _roll(self, rate: float) -> bool:
        # Consume one RNG sample per attempt *only* when the family is
        # armed, so schedules stay deterministic when rates are mixed in.
        return rate > 0.0 and self._rng.random() < rate

    @staticmethod
    def _page_trigger(pending: Dict[int, int], page_id: int) -> bool:
        remaining = pending.get(page_id, 0)
        if remaining <= 0:
            return False
        pending[page_id] = remaining - 1
        return True

    # ------------------------------------------------------------------
    # Physical I/O (fault-injecting surface)
    # ------------------------------------------------------------------
    def read(self, page_id: int) -> Page:
        """Read a page, or raise per the profile (no I/O is counted then)."""
        self._maybe_scheduled_kill()
        op = self.reads_attempted
        self.reads_attempted += 1
        self._check_down(page_id)
        self._inject_latency(self.profile.read_latency_s)
        if (
            op in self.profile.fail_reads_at
            or self._page_trigger(self._page_read_faults, page_id)
            or self._roll(self.profile.read_error_rate)
        ):
            self.counters.read_errors += 1
            raise PageReadError(f"injected read fault (page {page_id}, read #{op})")
        return self.inner.read(page_id)

    def write(self, page: Page) -> None:
        """Write a page back, or raise per the profile (page stays dirty)."""
        self._maybe_scheduled_kill()
        op = self.writes_attempted
        self.writes_attempted += 1
        self._check_down(page.page_id)
        self._inject_latency(self.profile.write_latency_s)
        if (
            op in self.profile.fail_writes_at
            or self._page_trigger(self._page_write_faults, page.page_id)
            or self._roll(self.profile.write_error_rate)
        ):
            self.counters.write_errors += 1
            raise PageWriteError(f"injected write fault (page {page.page_id}, write #{op})")
        self.inner.write(page)

    # ------------------------------------------------------------------
    # Fault-free delegation (metadata + introspection)
    # ------------------------------------------------------------------
    @property
    def stats(self) -> IOStats:
        """The wrapped disk's stats object (shared with its buffer)."""
        return self.inner.stats

    def allocate(self, payload: Any = None) -> Page:
        """Allocate a page on the wrapped disk (never faulted)."""
        return self.inner.allocate(payload)

    def free(self, page_id: int) -> None:
        """Free a page on the wrapped disk (never faulted)."""
        self.inner.free(page_id)

    def peek(self, page_id: int) -> Page:
        """Access a page without I/O accounting (testing/debugging only)."""
        return self.inner.peek(page_id)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    @property
    def allocated_page_ids(self) -> List[int]:
        """Page ids currently allocated on the wrapped disk."""
        return self.inner.allocated_page_ids


def fault_wrap(
    buffer,
    profile: Optional[FaultProfile] = None,
    sleep: Callable[[float], None] = time.sleep,
) -> FaultInjectingDiskManager:
    """Slide a fault injector under an existing buffer manager, in place.

    Wraps ``buffer.disk`` in a :class:`FaultInjectingDiskManager` and
    reassigns it, returning the injector so callers can flip its kill
    switch or read its counters.  Safe on a live index: the wrapper shares
    the inner disk's page table and stats, so accounting is unchanged
    until a fault actually fires.
    """
    injector = FaultInjectingDiskManager(buffer.disk, profile=profile, sleep=sleep)
    buffer.disk = injector
    return injector


__all__ = [
    "FaultCounters",
    "FaultInjectingDiskManager",
    "FaultProfile",
    "InjectedFault",
    "PageReadError",
    "PageWriteError",
    "ShardDownError",
    "fault_wrap",
]
