"""I/O and operation statistics.

Every experiment in the paper reports average I/O per query and per update.
The :class:`IOStats` object is shared by a :class:`~repro.storage.DiskManager`
and its :class:`~repro.storage.BufferManager`, and exposes scoped counters so
the benchmark harness can attribute physical I/O to the operation (query or
update) that caused it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional


@dataclass
class Counter:
    """A simple read/write counter."""

    reads: int = 0
    writes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0

    def snapshot(self) -> "Counter":
        return Counter(self.reads, self.writes)

    def __sub__(self, other: "Counter") -> "Counter":
        return Counter(self.reads - other.reads, self.writes - other.writes)


@dataclass
class BufferCounter:
    """Buffer-pool hit/miss counter (one logical fetch is a hit or a miss)."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    def snapshot(self) -> "BufferCounter":
        return BufferCounter(self.hits, self.misses)

    def __sub__(self, other: "BufferCounter") -> "BufferCounter":
        return BufferCounter(self.hits - other.hits, self.misses - other.misses)


@dataclass
class IOStats:
    """Physical I/O statistics, optionally attributed to named scopes."""

    physical: Counter = field(default_factory=Counter)
    logical: Counter = field(default_factory=Counter)
    buffer: BufferCounter = field(default_factory=BufferCounter)
    scopes: Dict[str, Counter] = field(default_factory=dict)
    buffer_scopes: Dict[str, BufferCounter] = field(default_factory=dict)
    _active_scope: Optional[str] = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_physical_read(self, count: int = 1) -> None:
        self.physical.reads += count
        if self._active_scope is not None:
            self.scopes[self._active_scope].reads += count

    def record_physical_write(self, count: int = 1) -> None:
        self.physical.writes += count
        if self._active_scope is not None:
            self.scopes[self._active_scope].writes += count

    def record_logical_read(self, count: int = 1) -> None:
        self.logical.reads += count

    def record_logical_write(self, count: int = 1) -> None:
        self.logical.writes += count

    def record_buffer_hit(self, count: int = 1) -> None:
        self.buffer.hits += count
        if self._active_scope is not None:
            self.buffer_scopes[self._active_scope].hits += count

    def record_buffer_miss(self, count: int = 1) -> None:
        self.buffer.misses += count
        if self._active_scope is not None:
            self.buffer_scopes[self._active_scope].misses += count

    # ------------------------------------------------------------------
    # Scoping
    # ------------------------------------------------------------------
    @contextmanager
    def scope(self, name: str) -> Iterator[Counter]:
        """Attribute physical I/O recorded inside the block to ``name``.

        Nested scopes are not supported; the harness measures one operation
        at a time, which is all the experiments need.
        """
        if self._active_scope is not None:
            raise RuntimeError("nested I/O scopes are not supported")
        counter = self.scopes.setdefault(name, Counter())
        self.buffer_scopes.setdefault(name, BufferCounter())
        before = counter.snapshot()
        self._active_scope = name
        try:
            yield counter
        finally:
            self._active_scope = None
        # The delta for this invocation is available to callers via
        # ``counter - before`` if they captured ``before``; we keep the
        # cumulative counter in ``scopes``.
        del before

    def scoped(self, name: str) -> Counter:
        """Cumulative counter for scope ``name`` (created on demand)."""
        return self.scopes.setdefault(name, Counter())

    def buffer_scoped(self, name: str) -> BufferCounter:
        """Cumulative buffer hit/miss counter for scope ``name`` (on demand)."""
        return self.buffer_scopes.setdefault(name, BufferCounter())

    # ------------------------------------------------------------------
    # Reset / report
    # ------------------------------------------------------------------
    def reset(self) -> None:
        self.physical.reset()
        self.logical.reset()
        self.buffer.reset()
        for counter in self.scopes.values():
            counter.reset()
        for counter in self.buffer_scopes.values():
            counter.reset()

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        result = {
            "physical": {"reads": self.physical.reads, "writes": self.physical.writes},
            "logical": {"reads": self.logical.reads, "writes": self.logical.writes},
            "buffer": {"hits": self.buffer.hits, "misses": self.buffer.misses},
        }
        for name, counter in self.scopes.items():
            result[name] = {"reads": counter.reads, "writes": counter.writes}
        for name, counter in self.buffer_scopes.items():
            result[f"buffer:{name}"] = {"hits": counter.hits, "misses": counter.misses}
        return result
