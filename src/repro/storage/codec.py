"""Stable binary codec for page payloads (node serialization).

The durable backend (:mod:`repro.storage.durable`) stores every page as a
fixed-size slot of bytes, so the live node objects the indexes put into
page payloads — the B+-tree's ``_LeafNode``/``_InteriorNode`` and the TPR
family's :class:`~repro.tprtree.node.TPRNode` — need a byte representation
that round-trips *exactly*.  This module provides one: a tagged binary
format built from ``struct``-packed scalars and ``array`` column dumps.

Exactness is the load-bearing property.  Keys are ``int64`` and geometry
is IEEE-754 ``double``; both serialize to their in-memory bit patterns, so
a node decoded from disk is indistinguishable from the node that was
encoded — which is what lets the crash-recovery tests pin *bit-identical*
range and kNN answers after a reopen.

Payload types without a dedicated tag (index families can put anything
into a page) fall back to a pickle envelope: less compact and not
format-stable across library versions, but always correct within one
deployment.  Leaf *values* get the same treatment one level down: the
common cases (:class:`~repro.objects.moving_object.MovingObject`, ints,
floats, strings) have compact fixed encodings, everything else pickles.

Numbers are packed little-endian (``<`` in every format string) and the
``array`` columns are byte-dumped, so the on-disk format is only portable
between machines of the same byte order; :class:`~repro.storage.durable.
FileDiskManager` records the byte order in its header and refuses to open
a store written under the other one.

The node classes are imported lazily: ``repro.btree`` and ``repro.tprtree``
themselves import ``repro.storage``, and a module-level import here would
close that cycle while those packages are still half-initialized.
"""

from __future__ import annotations

import pickle
import struct
from array import array
from typing import Any, Callable, Dict, List, Tuple

#: Payload (page-level) tags.
_P_PICKLE = 0
_P_NONE = 1
_P_BTREE_LEAF = 2
_P_BTREE_INTERIOR = 3
_P_TPR_NODE = 4

#: Value (leaf-entry-level) tags.
_V_PICKLE = 0
_V_NONE = 1
_V_MOVING_OBJECT = 2
_V_INT = 3
_V_FLOAT = 4
_V_STR = 5
_V_BYTES = 6
_V_TRUE = 7
_V_FALSE = 8
_V_TUPLE = 9
_V_LIST = 10

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
#: oid + (x, y, vx, vy, reference_time).
_MOVING_OBJECT = struct.Struct("<q5d")
#: page_id, next_leaf (or -1), entry count.
_LEAF_HEADER = struct.Struct("<qqI")
#: page_id, key count, child count.
_INTERIOR_HEADER = struct.Struct("<qII")
#: page_id, parent_page_id (or -1), is_leaf flag, entry count.
_TPR_HEADER = struct.Struct("<qqBI")


class _Classes:
    """Lazily resolved node/value classes (breaks the import cycle)."""

    _resolved: Dict[str, Any] = {}

    @classmethod
    def get(cls) -> Dict[str, Any]:
        if not cls._resolved:
            from repro.btree.bplus_tree import _InteriorNode, _LeafNode
            from repro.geometry.point import Point
            from repro.geometry.vector import Vector
            from repro.objects.moving_object import MovingObject
            from repro.tprtree.node import TPRNode

            cls._resolved = {
                "leaf": _LeafNode,
                "interior": _InteriorNode,
                "tpr": TPRNode,
                "obj": MovingObject,
                "point": Point,
                "vector": Vector,
            }
        return cls._resolved


def _pack_bytes(out: List[bytes], blob: bytes) -> None:
    out.append(_U32.pack(len(blob)))
    out.append(blob)


def _unpack_bytes(data: bytes, offset: int) -> Tuple[bytes, int]:
    (length,) = _U32.unpack_from(data, offset)
    offset += _U32.size
    return data[offset : offset + length], offset + length


# ----------------------------------------------------------------------
# Leaf values
# ----------------------------------------------------------------------
def _encode_value(out: List[bytes], value: Any) -> None:
    classes = _Classes.get()
    if value is None:
        out.append(bytes([_V_NONE]))
    elif type(value) is classes["obj"]:
        out.append(bytes([_V_MOVING_OBJECT]))
        out.append(
            _MOVING_OBJECT.pack(
                value.oid,
                value.position.x,
                value.position.y,
                value.velocity.vx,
                value.velocity.vy,
                value.reference_time,
            )
        )
    elif value is True:
        out.append(bytes([_V_TRUE]))
    elif value is False:
        out.append(bytes([_V_FALSE]))
    elif type(value) is int and _I64_MIN <= value <= _I64_MAX:
        out.append(bytes([_V_INT]))
        out.append(_I64.pack(value))
    elif type(value) is float:
        out.append(bytes([_V_FLOAT]))
        out.append(_F64.pack(value))
    elif type(value) is str:
        out.append(bytes([_V_STR]))
        _pack_bytes(out, value.encode("utf-8"))
    elif type(value) is bytes:
        out.append(bytes([_V_BYTES]))
        _pack_bytes(out, value)
    elif type(value) in (tuple, list):
        out.append(bytes([_V_TUPLE if type(value) is tuple else _V_LIST]))
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_value(out, item)
    else:
        out.append(bytes([_V_PICKLE]))
        _pack_bytes(out, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))


def _decode_value(data: bytes, offset: int) -> Tuple[Any, int]:
    classes = _Classes.get()
    tag = data[offset]
    offset += 1
    if tag == _V_NONE:
        return None, offset
    if tag == _V_MOVING_OBJECT:
        oid, x, y, vx, vy, tref = _MOVING_OBJECT.unpack_from(data, offset)
        obj = classes["obj"](
            oid=oid,
            position=classes["point"](x, y),
            velocity=classes["vector"](vx, vy),
            reference_time=tref,
        )
        return obj, offset + _MOVING_OBJECT.size
    if tag == _V_TRUE:
        return True, offset
    if tag == _V_FALSE:
        return False, offset
    if tag == _V_INT:
        (value,) = _I64.unpack_from(data, offset)
        return value, offset + _I64.size
    if tag == _V_FLOAT:
        (value,) = _F64.unpack_from(data, offset)
        return value, offset + _F64.size
    if tag == _V_STR:
        blob, offset = _unpack_bytes(data, offset)
        return blob.decode("utf-8"), offset
    if tag == _V_BYTES:
        return _unpack_bytes(data, offset)
    if tag in (_V_TUPLE, _V_LIST):
        (count,) = _U32.unpack_from(data, offset)
        offset += _U32.size
        items = []
        for _ in range(count):
            item, offset = _decode_value(data, offset)
            items.append(item)
        return (tuple(items) if tag == _V_TUPLE else items), offset
    if tag == _V_PICKLE:
        blob, offset = _unpack_bytes(data, offset)
        return pickle.loads(blob), offset
    raise ValueError(f"unknown value tag {tag}")


# ----------------------------------------------------------------------
# Page payloads
# ----------------------------------------------------------------------
def encode_payload(payload: Any) -> bytes:
    """Serialize one page payload to bytes (see module docstring).

    The encoding is a pure function of the payload's logical content, so
    re-encoding a decoded payload yields the same bytes.
    """
    classes = _Classes.get()
    if payload is None:
        return bytes([_P_NONE])
    out: List[bytes] = []
    kind = type(payload)
    if kind is classes["leaf"]:
        out.append(bytes([_P_BTREE_LEAF]))
        next_leaf = -1 if payload.next_leaf is None else payload.next_leaf
        out.append(_LEAF_HEADER.pack(payload.page_id, next_leaf, len(payload.keys)))
        out.append(payload.keys.tobytes())
        for value in payload.values:
            _encode_value(out, value)
    elif kind is classes["interior"]:
        out.append(bytes([_P_BTREE_INTERIOR]))
        out.append(
            _INTERIOR_HEADER.pack(
                payload.page_id, len(payload.keys), len(payload.children)
            )
        )
        out.append(payload.keys.tobytes())
        out.append(struct.pack(f"<{len(payload.children)}q", *payload.children))
    elif kind is classes["tpr"]:
        out.append(bytes([_P_TPR_NODE]))
        parent = -1 if payload.parent_page_id is None else payload.parent_page_id
        columns = payload.columns
        out.append(
            _TPR_HEADER.pack(
                payload.page_id, parent, 1 if payload.is_leaf else 0, len(columns[0])
            )
        )
        for column in columns:
            out.append(column.tobytes())
        out.append(payload._refs.tobytes())
    else:
        out.append(bytes([_P_PICKLE]))
        out.append(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    return b"".join(out)


def decode_payload(data: bytes) -> Any:
    """Rebuild a page payload from :func:`encode_payload` bytes."""
    classes = _Classes.get()
    tag = data[0]
    if tag == _P_NONE:
        return None
    if tag == _P_PICKLE:
        return pickle.loads(data[1:])
    offset = 1
    if tag == _P_BTREE_LEAF:
        page_id, next_leaf, count = _LEAF_HEADER.unpack_from(data, offset)
        offset += _LEAF_HEADER.size
        keys = array("q")
        keys.frombytes(data[offset : offset + 8 * count])
        offset += 8 * count
        values: List[Any] = []
        for _ in range(count):
            value, offset = _decode_value(data, offset)
            values.append(value)
        return classes["leaf"](
            page_id=page_id,
            keys=keys,
            values=values,
            next_leaf=None if next_leaf < 0 else next_leaf,
        )
    if tag == _P_BTREE_INTERIOR:
        page_id, key_count, child_count = _INTERIOR_HEADER.unpack_from(data, offset)
        offset += _INTERIOR_HEADER.size
        keys = array("q")
        keys.frombytes(data[offset : offset + 8 * key_count])
        offset += 8 * key_count
        children = list(struct.unpack_from(f"<{child_count}q", data, offset))
        return classes["interior"](page_id=page_id, keys=keys, children=children)
    if tag == _P_TPR_NODE:
        page_id, parent, is_leaf, count = _TPR_HEADER.unpack_from(data, offset)
        offset += _TPR_HEADER.size
        node = classes["tpr"](
            page_id=page_id,
            is_leaf=bool(is_leaf),
            parent_page_id=None if parent < 0 else parent,
        )
        for name in ("_x0", "_y0", "_x1", "_y1", "_vx0", "_vy0", "_vx1", "_vy1", "_tref"):
            column = array("d")
            column.frombytes(data[offset : offset + 8 * count])
            offset += 8 * count
            setattr(node, name, column)
        refs = array("q")
        refs.frombytes(data[offset : offset + 8 * count])
        node._refs = refs
        return node
    raise ValueError(f"unknown payload tag {tag}")


__all__ = ["encode_payload", "decode_payload"]
