"""Simulated disk: a page-id keyed store with free-list reuse."""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.storage.page import Page
from repro.storage.stats import IOStats


class DiskManager:
    """Allocates, reads, writes and frees simulated disk pages.

    Reads and writes performed directly through the disk manager count as
    physical I/O.  Indexes normally access pages through a
    :class:`~repro.storage.BufferManager`, which only falls through to the
    disk manager on a buffer miss or on eviction of a dirty page.
    """

    def __init__(self, stats: Optional[IOStats] = None) -> None:
        self._pages: Dict[int, Page] = {}
        self._free_ids: List[int] = []
        self._next_id = 0
        self.stats = stats if stats is not None else IOStats()

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, payload: Any = None) -> Page:
        """Allocate a fresh page (or reuse a freed page id)."""
        if self._free_ids:
            page_id = self._free_ids.pop()
        else:
            page_id = self._next_id
            self._next_id += 1
        page = Page(page_id=page_id, payload=payload)
        self._pages[page_id] = page
        return page

    def free(self, page_id: int) -> None:
        """Release a page and recycle its id.

        Raises:
            KeyError: if the page does not exist.
        """
        if page_id not in self._pages:
            raise KeyError(f"page {page_id} does not exist")
        del self._pages[page_id]
        self._free_ids.append(page_id)

    # ------------------------------------------------------------------
    # Physical I/O
    # ------------------------------------------------------------------
    def read(self, page_id: int) -> Page:
        """Read a page from "disk" (counted as one physical read)."""
        try:
            page = self._pages[page_id]
        except KeyError:
            raise KeyError(f"page {page_id} does not exist") from None
        self.stats.record_physical_read()
        return page

    def write(self, page: Page) -> None:
        """Write a page back to "disk" (counted as one physical write)."""
        if page.page_id not in self._pages:
            raise KeyError(f"page {page.page_id} does not exist")
        self._pages[page.page_id] = page
        page.dirty = False
        page.write_backs += 1
        self.stats.record_physical_write()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    @property
    def allocated_page_ids(self) -> List[int]:
        return list(self._pages.keys())

    def peek(self, page_id: int) -> Page:
        """Access a page without recording I/O (testing/debugging only)."""
        return self._pages[page_id]
