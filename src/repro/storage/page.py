"""Simulated disk page.

A page stores an arbitrary Python payload (an index node) together with the
metadata a real pager would maintain: page id, dirty flag, and a pin count.
Capacity accounting is done logically: each index computes how many entries
fit on a 4 KB page from the size of its entry record, mirroring how the
paper's C++ implementation derives node fan-out from the page size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

#: Disk page size used throughout the experiments (Table 1 of the paper).
PAGE_SIZE_BYTES = 4096


@dataclass
class Page:
    """A single simulated disk page."""

    page_id: int
    payload: Optional[Any] = None
    dirty: bool = False
    pin_count: int = 0
    size_bytes: int = PAGE_SIZE_BYTES
    #: Incremented every time the page is written back; used in tests.
    write_backs: int = field(default=0, compare=False)

    def pin(self) -> None:
        """Pin the page in the buffer (it cannot be evicted while pinned)."""
        self.pin_count += 1

    def unpin(self) -> None:
        """Release one pin.

        Raises:
            ValueError: if the page is not pinned.
        """
        if self.pin_count <= 0:
            raise ValueError(f"page {self.page_id} is not pinned")
        self.pin_count -= 1

    @property
    def is_pinned(self) -> bool:
        return self.pin_count > 0

    def mark_dirty(self) -> None:
        """Record that the in-memory copy differs from the on-disk copy."""
        self.dirty = True


def entries_per_page(
    entry_size_bytes: int,
    header_bytes: int = 32,
    page_size_bytes: int = PAGE_SIZE_BYTES,
) -> int:
    """Number of fixed-size entries that fit on one page.

    Args:
        entry_size_bytes: size of a single entry record.
        header_bytes: per-page header overhead.
        page_size_bytes: disk page size; the paper uses 4 KB, and the
            scaled-down benchmark parameters shrink the page along with the
            cardinality so the index keeps a realistic number of pages.

    Returns:
        The fan-out implied by the page size; always at least 2 so that tree
        indexes remain well formed even for very large entries.
    """
    if entry_size_bytes <= 0:
        raise ValueError("entry_size_bytes must be positive")
    if page_size_bytes <= header_bytes:
        raise ValueError("page_size_bytes must exceed the header size")
    usable = page_size_bytes - header_bytes
    return max(2, usable // entry_size_bytes)
