"""Shared helpers for bottom-up (bulk) index packing.

Besides the chunking arithmetic, this module hosts the *velocity binning*
behind the ``velocity_str`` packing strategy: objects are grouped by the
dominant velocity axis (DVA) closest to their velocity — the same analysis
the paper's VP layer performs at indexing time — so that each STR-packed
node holds objects that move compatibly and its time-parameterized bound
grows along one axis instead of ballooning in every direction.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

#: Packing strategies understood by the TPR-family ``bulk_load``.
PACKING_STRATEGIES = ("midpoint_str", "velocity_str")


def loader_accepts(loader, *names: str) -> bool:
    """Whether a callable's signature has every keyword parameter in ``names``.

    Lets strategy-aware callers (the index manager, the bench harness)
    forward packing options to loaders that understand them while leaving
    the Bx family's sorted leaf packing untouched — each forwarded keyword
    must be probed, not just ``strategy``, because a loader may grow one
    option without the other.
    """
    import inspect

    try:
        parameters = inspect.signature(loader).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False
    return all(name in parameters for name in names)


def chunk_count(n: int, capacity: int) -> int:
    """Number of nodes needed to pack ``n`` entries at up to ``capacity`` each."""
    return max(1, -(-n // capacity))


def even_chunks(items: List, num_chunks: int) -> List[List]:
    """Split ``items`` into ``num_chunks`` contiguous runs whose sizes differ by at most one."""
    base, extra = divmod(len(items), num_chunks)
    chunks: List[List] = []
    start = 0
    for index in range(num_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks


def velocity_bins(
    objects: Sequence,
    axes: Optional[Sequence] = None,
    k: int = 2,
    seed: Optional[int] = 0,
    min_bin: int = 1,
) -> List[List]:
    """Group moving objects by their nearest dominant velocity axis.

    Args:
        objects: moving objects (anything with a ``velocity`` vector).
        axes: dominant velocity axes to bin against.  When omitted, the
            velocity analyzer (PC-distance k-means, Algorithm 1 of the
            paper) is run over the objects' velocities to find ``k`` axes —
            the same axes the VP layer would use, so a velocity-binned
            packing mirrors the runtime partitioning.
        k: number of axes for the analyzer when ``axes`` is omitted.
        seed: analyzer seed (reproducible binning).
        min_bin: bins smaller than this are merged into the largest bin so
            downstream packing can honor minimum node fill.

    Returns:
        A list of non-empty object bins (at most ``len(axes)`` of them);
        objects beyond every axis's τ share the final "outlier" bin.  Falls
        back to a single bin when the input is too small to analyze.
    """
    objects = list(objects)
    if axes is None:
        if len(objects) <= max(k, 1):
            return [objects] if objects else []
        from repro.core.velocity_analyzer import VelocityAnalyzer

        partitioning = VelocityAnalyzer(k=k, seed=seed).analyze(
            [obj.velocity for obj in objects]
        )
        assigned = partitioning.partition_for_batch([obj.velocity for obj in objects])
        num_bins = partitioning.k + 1
        bins: List[List] = [[] for _ in range(num_bins)]
        for obj, partition in zip(objects, assigned):
            bins[partition if partition is not None else num_bins - 1].append(obj)
    else:
        bins = [[] for _ in axes]
        for obj in objects:
            best = min(
                range(len(axes)),
                key=lambda i: obj.velocity.perpendicular_distance_to_axis(axes[i]),
            )
            bins[best].append(obj)
    bins = [group for group in bins if group]
    if len(bins) <= 1:
        return bins
    # Merge undersized bins into the largest one so every bin can fill its
    # nodes to the tree's minimum occupancy.
    small = [group for group in bins if len(group) < min_bin]
    bins = [group for group in bins if len(group) >= min_bin]
    if small:
        if not bins:
            merged: List = []
            for group in small:
                merged.extend(group)
            return [merged]
        largest = max(bins, key=len)
        for group in small:
            largest.extend(group)
    return bins
