"""Shared helpers for bottom-up (bulk) index packing."""

from __future__ import annotations

from typing import List


def chunk_count(n: int, capacity: int) -> int:
    """Number of nodes needed to pack ``n`` entries at up to ``capacity`` each."""
    return max(1, -(-n // capacity))


def even_chunks(items: List, num_chunks: int) -> List[List]:
    """Split ``items`` into ``num_chunks`` contiguous runs whose sizes differ by at most one."""
    base, extra = divmod(len(items), num_chunks)
    chunks: List[List] = []
    start = 0
    for index in range(num_chunks):
        size = base + (1 if index < extra else 0)
        chunks.append(items[start : start + size])
        start += size
    return chunks
