"""Benchmark parameters (Table 1 of the paper).

The defaults mirror the bold values of Table 1, except the object
cardinality, which is scaled down so the pure-Python simulator finishes in
reasonable time.  Paper-scale runs simply pass ``num_objects=100_000``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.geometry.rect import Rect

#: The paper's data space: 100,000 m x 100,000 m (Table 1).
PAPER_SPACE = Rect(0.0, 0.0, 100_000.0, 100_000.0)

#: Scaled-down default data space.  The cardinality default is ~33x smaller
#: than the paper's 100K objects, so the space is shrunk as well to keep the
#: object density (and with it the number of objects a query window covers)
#: in a realistic range; see EXPERIMENTS.md for the scaling rationale.
DEFAULT_SPACE = Rect(0.0, 0.0, 50_000.0, 50_000.0)


@dataclass(frozen=True)
class WorkloadParameters:
    """Knobs of a benchmark workload run.

    Attributes mirror Table 1 of the paper:

    * ``num_objects`` — cardinality of objects (paper default 100K).
    * ``max_speed`` — maximum object speed in m per timestamp (paper default 100).
    * ``max_update_interval`` — maximum timestamps between updates of one
      object (120).
    * ``query_radius`` — circular range query radius in meters (500).
    * ``query_predictive_time`` — how far into the future queries look (60).
    * ``time_duration`` — length of the simulated event stream (240).
    * ``num_queries`` — number of range queries issued over the duration.
    * ``buffer_pages`` — RAM buffer size in pages.  The paper uses 50 pages
      against 100K+ objects (about 2.5% of the index fits in RAM); the
      scaled-down default keeps the same *ratio* by shrinking the buffer
      along with the cardinality, otherwise the whole index would be cached
      and the I/O comparison would be meaningless.
    * ``page_size`` — disk page size in bytes.  The paper uses 4 KB pages;
      the scaled-down default shrinks the page along with the cardinality so
      the index spans a realistic number of pages (and node fan-outs stay
      proportionate to the data size).
    * ``rectangular_queries`` — use 1000 m x 1000 m rectangles instead of
      circles (Section 6.8).
    """

    num_objects: int = 3_000
    max_speed: float = 100.0
    max_update_interval: float = 120.0
    query_radius: float = 500.0
    query_predictive_time: float = 60.0
    time_duration: float = 120.0
    num_queries: int = 50
    buffer_pages: int = 10
    page_size: int = 1024
    rectangular_queries: bool = False
    rectangle_side: float = 1000.0
    space: Rect = DEFAULT_SPACE
    seed: int = 42

    def scaled(self, **overrides) -> "WorkloadParameters":
        """A copy with some parameters overridden."""
        return replace(self, **overrides)


#: Default parameter set used across the experiments (scaled-down Table 1).
DEFAULT_PARAMETERS = WorkloadParameters()
