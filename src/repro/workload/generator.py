"""Top-level workload builder keyed by the paper's dataset names."""

from __future__ import annotations

from typing import List, Optional

from repro.network.generators import NETWORK_BUILDERS, network_for
from repro.workload.events import Workload
from repro.workload.network_workload import NetworkWorkloadGenerator
from repro.workload.parameters import WorkloadParameters
from repro.workload.uniform import UniformWorkloadGenerator

#: Dataset names used across the experiments (Figure 19 of the paper).
DATASETS: List[str] = ["CH", "SA", "MEL", "NY", "uniform"]


def build_workload(
    dataset: str,
    params: Optional[WorkloadParameters] = None,
    include_queries: bool = True,
    seed: Optional[int] = None,
) -> Workload:
    """Build the workload for one of the paper's datasets.

    Args:
        dataset: one of ``CH``, ``SA``, ``MEL``, ``NY`` (road networks) or
            ``uniform`` (the synthetic skew-free control).
        params: workload parameters; the scaled-down Table 1 defaults are
            used when omitted.
        include_queries: whether to interleave range-query events.
        seed: overrides the parameter seed for the generator RNG.

    Raises:
        ValueError: for an unknown dataset name.
    """
    if params is None:
        params = WorkloadParameters()
    name = dataset.lower()
    if name == "uniform":
        return UniformWorkloadGenerator(params, seed=seed).generate(include_queries)
    if dataset.upper() in NETWORK_BUILDERS:
        network = network_for(dataset, space=params.space)
        return NetworkWorkloadGenerator(network, params, seed=seed).generate(include_queries)
    raise ValueError(f"unknown dataset {dataset!r}; expected one of {DATASETS}")
