"""Range-query workload generation."""

from __future__ import annotations

import random
from typing import List, Optional

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.objects.queries import (
    CircularRange,
    RangeQuery,
    RectangularRange,
    TimeSliceRangeQuery,
)
from repro.workload.events import QueryEvent
from repro.workload.parameters import WorkloadParameters


class QueryWorkloadGenerator:
    """Generates predictive range queries spread uniformly over the duration.

    The default query is the paper's default: a circular time-slice range
    query with a random center, fixed radius, and a fixed predictive time
    (the query asks about ``issue_time + predictive_time``).  Rectangular
    queries use a square window of the configured side length.
    """

    def __init__(self, params: WorkloadParameters, seed: Optional[int] = None) -> None:
        self.params = params
        self._rng = random.Random(params.seed if seed is None else seed)

    def generate(self) -> List[QueryEvent]:
        """Query events spread over ``[0, time_duration]``."""
        events: List[QueryEvent] = []
        count = self.params.num_queries
        if count <= 0:
            return events
        duration = self.params.time_duration
        for index in range(count):
            issue_time = duration * index / count
            events.append(QueryEvent(time=issue_time, query=self.make_query(issue_time)))
        return events

    def make_query(self, issue_time: float, predictive_time: Optional[float] = None) -> RangeQuery:
        """A single query issued at ``issue_time``."""
        if predictive_time is None:
            predictive_time = self.params.query_predictive_time
        center = self._random_center()
        if self.params.rectangular_queries:
            half = self.params.rectangle_side / 2.0
            spatial = RectangularRange(Rect.from_center(center, half, half))
        else:
            spatial = CircularRange(center=center, radius=self.params.query_radius)
        return TimeSliceRangeQuery(
            spatial, time=issue_time + predictive_time, issue_time=issue_time
        )

    def _random_center(self) -> Point:
        space = self.params.space
        return Point(
            self._rng.uniform(space.x_min, space.x_max),
            self._rng.uniform(space.y_min, space.y_max),
        )
