"""Road-network workload generator (Chen et al. benchmark style).

Objects drive along the edges of a :class:`~repro.network.RoadNetwork`.
Each object starts somewhere on a random edge and repeatedly:

1. moves linearly along its current edge at its current speed;
2. when it reaches the end of the edge — or when the maximum update
   interval elapses, whichever comes first — it reports an update with its
   new position and its new velocity (the direction of the next edge of a
   drive-forward random walk, at a freshly drawn speed).

Because edges follow the network's dominant directions, the resulting
velocity distribution shows the skew of Figure 1(b): most velocity points
lie along a small number of axes, with the network's irregular links
providing the outliers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.network.road_network import RoadNetwork
from repro.objects.moving_object import MovingObject
from repro.workload.events import UpdateEvent, Workload
from repro.workload.parameters import WorkloadParameters
from repro.workload.query_workload import QueryWorkloadGenerator


@dataclass
class _Traveler:
    """Simulation state of one object driving on the network."""

    obj: MovingObject
    from_node: int
    to_node: int
    remaining_distance: float


class NetworkWorkloadGenerator:
    """Generates a workload of objects driving on a road network."""

    def __init__(
        self,
        network: RoadNetwork,
        params: WorkloadParameters,
        seed: Optional[int] = None,
    ) -> None:
        self.network = network
        self.params = params
        self._rng = random.Random(params.seed if seed is None else seed)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self, include_queries: bool = True) -> Workload:
        """Build the full workload: initial objects, updates, and queries."""
        travelers = [self._spawn(oid) for oid in range(self.params.num_objects)]
        initial = [t.obj for t in travelers]
        events: List = []
        for traveler in travelers:
            events.extend(self._drive(traveler))
        if include_queries:
            events.extend(
                QueryWorkloadGenerator(
                    self.params, seed=self._rng.randrange(1 << 30)
                ).generate()
            )
        events.sort(key=lambda e: e.time)
        return Workload(
            name=self.network.name,
            space=self.params.space,
            initial_objects=initial,
            events=events,
            max_speed=self.params.max_speed,
            max_update_interval=self.params.max_update_interval,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _random_speed(self) -> float:
        """Speeds are drawn between a quarter of the maximum and the maximum."""
        return self._rng.uniform(0.25 * self.params.max_speed, self.params.max_speed)

    def _spawn(self, oid: int) -> _Traveler:
        edge = self.network.random_edge(self._rng)
        if self._rng.random() < 0.5:
            from_node, to_node = edge.source, edge.target
        else:
            from_node, to_node = edge.target, edge.source
        fraction = self._rng.random()
        position = self.network.point_along(from_node, to_node, fraction)
        direction = self.network.edge_direction(from_node, to_node)
        speed = self._random_speed()
        obj = MovingObject(
            oid=oid,
            position=position,
            velocity=direction.scaled(speed),
            reference_time=0.0,
        )
        return _Traveler(
            obj=obj,
            from_node=from_node,
            to_node=to_node,
            remaining_distance=edge.length * (1.0 - fraction),
        )

    def _drive(self, traveler: _Traveler) -> List[UpdateEvent]:
        """Simulate one object until the end of the workload duration."""
        events: List[UpdateEvent] = []
        time = 0.0
        while True:
            speed = traveler.obj.speed
            if speed <= 0.0:
                break
            time_to_node = traveler.remaining_distance / speed
            interval = min(time_to_node, self.params.max_update_interval)
            reached_node = time_to_node <= self.params.max_update_interval
            time += interval
            if time > self.params.time_duration:
                break
            old = traveler.obj
            position = old.position_at(time)
            if reached_node:
                # Arrived (to numerical precision) at to_node: continue along
                # a new edge chosen by the drive-forward random walk.
                position = self.network.position(traveler.to_node)
                next_node = self.network.next_node_random_walk(
                    traveler.to_node, traveler.from_node, self._rng
                )
                direction = self.network.edge_direction(traveler.to_node, next_node)
                edge_length = self.network.position(traveler.to_node).distance_to(
                    self.network.position(next_node)
                )
                traveler.from_node, traveler.to_node = traveler.to_node, next_node
                traveler.remaining_distance = edge_length
            else:
                # Mid-edge periodic update: keep direction, redraw the speed.
                traveler.remaining_distance -= speed * interval
                direction = self.network.edge_direction(
                    traveler.from_node, traveler.to_node
                )
            new_speed = self._random_speed()
            new = MovingObject(
                oid=old.oid,
                position=position,
                velocity=direction.scaled(new_speed),
                reference_time=time,
            )
            events.append(UpdateEvent(time=time, old=old, new=new))
            traveler.obj = new
        return events
