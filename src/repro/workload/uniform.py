"""Uniform (skew-free) workload generator.

The uniform data set of Section 6 is the control: object positions are
uniform in the space and velocity directions are uniform over the circle, so
there are no dominant velocity axes and the VP technique has nothing to
exploit.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.objects.moving_object import MovingObject
from repro.workload.events import UpdateEvent, Workload
from repro.workload.parameters import WorkloadParameters
from repro.workload.query_workload import QueryWorkloadGenerator


class UniformWorkloadGenerator:
    """Uniformly distributed objects moving in uniformly random directions."""

    def __init__(self, params: WorkloadParameters, seed: Optional[int] = None) -> None:
        self.params = params
        self._rng = random.Random(params.seed if seed is None else seed)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(self, include_queries: bool = True) -> Workload:
        """Build the full workload: initial objects, updates, and queries."""
        initial = [self._random_object(oid, time=0.0) for oid in range(self.params.num_objects)]
        events: List = []
        events.extend(self._update_events(initial))
        if include_queries:
            events.extend(QueryWorkloadGenerator(self.params, seed=self._rng.randrange(1 << 30)).generate())
        events.sort(key=lambda e: e.time)
        return Workload(
            name="uniform",
            space=self.params.space,
            initial_objects=initial,
            events=events,
            max_speed=self.params.max_speed,
            max_update_interval=self.params.max_update_interval,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _random_object(self, oid: int, time: float) -> MovingObject:
        space = self.params.space
        position = Point(
            self._rng.uniform(space.x_min, space.x_max),
            self._rng.uniform(space.y_min, space.y_max),
        )
        return MovingObject(
            oid=oid,
            position=position,
            velocity=self._random_velocity(),
            reference_time=time,
        )

    def _random_velocity(self) -> Vector:
        angle = self._rng.uniform(0.0, 2.0 * math.pi)
        speed = self._rng.uniform(0.0, self.params.max_speed)
        return Vector(speed * math.cos(angle), speed * math.sin(angle))

    def _update_events(self, initial: List[MovingObject]) -> List[UpdateEvent]:
        """Each object updates at a random interval up to the maximum.

        The new snapshot keeps the predicted position (linear motion was
        exact until the update) and draws a fresh random velocity, clamped
        back into the space so objects do not drift out of the domain.
        """
        events: List[UpdateEvent] = []
        space = self.params.space
        for obj in initial:
            current = obj
            time = 0.0
            while True:
                time += self._rng.uniform(
                    self.params.max_update_interval * 0.25,
                    self.params.max_update_interval,
                )
                if time > self.params.time_duration:
                    break
                position = current.position_at(time)
                position = Point(
                    min(max(position.x, space.x_min), space.x_max),
                    min(max(position.y, space.y_min), space.y_max),
                )
                updated = MovingObject(
                    oid=current.oid,
                    position=position,
                    velocity=self._random_velocity(),
                    reference_time=time,
                )
                events.append(UpdateEvent(time=time, old=current, new=updated))
                current = updated
        return events
