"""Workload generation in the style of the Chen et al. benchmark.

A workload bundles the initial objects, a time-ordered stream of update and
query events, and the parameters that produced them.  Road-network workloads
(objects driving along a :class:`~repro.network.RoadNetwork`) reproduce the
skewed velocity distributions the paper exploits; the uniform workload is
the skew-free control.
"""

from repro.workload.events import QueryEvent, UpdateEvent, Workload
from repro.workload.parameters import WorkloadParameters, DEFAULT_PARAMETERS
from repro.workload.uniform import UniformWorkloadGenerator
from repro.workload.network_workload import NetworkWorkloadGenerator
from repro.workload.query_workload import QueryWorkloadGenerator
from repro.workload.generator import build_workload, DATASETS

__all__ = [
    "QueryEvent",
    "UpdateEvent",
    "Workload",
    "WorkloadParameters",
    "DEFAULT_PARAMETERS",
    "UniformWorkloadGenerator",
    "NetworkWorkloadGenerator",
    "QueryWorkloadGenerator",
    "build_workload",
    "DATASETS",
]
