"""Workload event types."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Union

from repro.geometry.rect import Rect
from repro.geometry.vector import Vector
from repro.objects.moving_object import MovingObject
from repro.objects.queries import RangeQuery


@dataclass(frozen=True)
class UpdateEvent:
    """A velocity/position update for one object (deletion + insertion)."""

    time: float
    old: MovingObject
    new: MovingObject

    def __post_init__(self) -> None:
        if self.old.oid != self.new.oid:
            raise ValueError("an update must keep the object id")


@dataclass(frozen=True)
class QueryEvent:
    """A predictive range query issued at ``time``."""

    time: float
    query: RangeQuery


Event = Union[UpdateEvent, QueryEvent]


@dataclass
class Workload:
    """A complete benchmark workload.

    Attributes:
        name: dataset name (CH, SA, MEL, NY, uniform, ...).
        space: data space of the workload.
        initial_objects: objects present at time 0 (the index is bulk-built
            from these before the event stream starts).
        events: time-ordered update and query events.
        max_speed: maximum object speed used by the generator.
        max_update_interval: maximum time between two updates of one object.
    """

    name: str
    space: Rect
    initial_objects: List[MovingObject]
    events: List[Event] = field(default_factory=list)
    max_speed: float = 0.0
    max_update_interval: float = 120.0

    @property
    def num_objects(self) -> int:
        return len(self.initial_objects)

    @property
    def update_events(self) -> List[UpdateEvent]:
        return [e for e in self.events if isinstance(e, UpdateEvent)]

    @property
    def query_events(self) -> List[QueryEvent]:
        return [e for e in self.events if isinstance(e, QueryEvent)]

    def velocity_sample(self, limit: int = 10_000) -> List[Vector]:
        """Velocity points of (up to ``limit``) initial objects.

        This is the sample the velocity analyzer consumes; the paper uses
        10,000 sample velocity points.
        """
        velocities = [obj.velocity for obj in self.initial_objects[:limit]]
        return velocities

    def sorted_events(self) -> List[Event]:
        """Events in time order (stable for equal timestamps)."""
        return sorted(self.events, key=lambda e: e.time)

    def grouped_events(self, window: float = 0.0) -> List[List[Event]]:
        """Sorted events grouped into same-window, same-type batches.

        Each batch is a maximal run of consecutive events that share a type
        (all updates or all queries) and fall in the same time window, in
        the same relative order as :meth:`sorted_events` — replaying the
        batches in sequence is behaviorally identical to replaying the flat
        stream, because a batch never spans a type change (a query always
        sees exactly the updates that precede it).

        Args:
            window: width of the grouping window in timestamps.  ``0``
                (the default) groups only events with exactly equal
                timestamps; event times are continuous in the generated
                workloads, so those batches are almost always singletons.
                A positive window buckets events by ``floor(time /
                window)`` — the granularity at which a real tracker would
                group co-arriving reports — which is what gives the batch
                execution path actual batches to amortize.
        """
        batches: List[List[Event]] = []
        last_bucket: object = None
        for event in self.sorted_events():
            bucket = event.time if window <= 0.0 else math.floor(event.time / window)
            if (
                batches
                and bucket == last_bucket
                and type(batches[-1][0]) is type(event)
            ):
                batches[-1].append(event)
            else:
                batches.append([event])
                last_bucket = bucket
        return batches
