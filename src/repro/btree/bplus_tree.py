"""A paged B+-tree with duplicate-key support.

The Bx-tree (Jensen et al., VLDB 2004) indexes moving objects with a plain
B+-tree whose keys are one-dimensional Bx values.  This module provides that
substrate: integer keys, arbitrary Python values, duplicates allowed, and
every node stored on one simulated disk page so queries and updates incur
measurable I/O.

Leaves are chained for efficient range scans, which is how the Bx-tree
enumerates all objects inside a space-filling-curve interval.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, List, Optional, Tuple

from repro.bulk import chunk_count, even_chunks
from repro.storage.buffer_manager import BufferManager
from repro.storage.page import entries_per_page

#: A leaf entry stores the 8-byte key plus an object record
#: (id, position, velocity, reference time) -- about 48 bytes.
LEAF_ENTRY_BYTES = 56
#: An interior entry stores a separator key and a child pointer.
INTERIOR_ENTRY_BYTES = 16

DEFAULT_LEAF_CAPACITY = entries_per_page(LEAF_ENTRY_BYTES)
DEFAULT_INTERIOR_CAPACITY = entries_per_page(INTERIOR_ENTRY_BYTES)


@dataclass
class _LeafNode:
    page_id: int
    keys: List[int] = field(default_factory=list)
    values: List[Any] = field(default_factory=list)
    next_leaf: Optional[int] = None
    is_leaf: bool = True


@dataclass
class _InteriorNode:
    page_id: int
    keys: List[int] = field(default_factory=list)  # separator keys, len = len(children) - 1
    children: List[int] = field(default_factory=list)
    is_leaf: bool = False


class BPlusTree:
    """B+-tree over simulated paged storage.

    Args:
        buffer: buffer manager; a private one is created if omitted.
        leaf_capacity: maximum entries per leaf page.
        interior_capacity: maximum children per interior page.
    """

    def __init__(
        self,
        buffer: Optional[BufferManager] = None,
        leaf_capacity: Optional[int] = None,
        interior_capacity: Optional[int] = None,
        page_size: Optional[int] = None,
    ) -> None:
        if leaf_capacity is None:
            leaf_capacity = (
                entries_per_page(LEAF_ENTRY_BYTES, page_size_bytes=page_size)
                if page_size is not None
                else DEFAULT_LEAF_CAPACITY
            )
        if interior_capacity is None:
            interior_capacity = (
                entries_per_page(INTERIOR_ENTRY_BYTES, page_size_bytes=page_size)
                if page_size is not None
                else DEFAULT_INTERIOR_CAPACITY
            )
        if leaf_capacity < 2 or interior_capacity < 3:
            raise ValueError("capacities are too small for a valid B+-tree")
        self.buffer = buffer if buffer is not None else BufferManager()
        self.leaf_capacity = leaf_capacity
        self.interior_capacity = interior_capacity
        root = _LeafNode(page_id=-1)
        page = self.buffer.new_page(root)
        root.page_id = page.page_id
        self.root_page_id = page.page_id
        self.size = 0
        self._height = 1

    # ------------------------------------------------------------------
    # Node helpers
    # ------------------------------------------------------------------
    def _node(self, page_id: int):
        return self.buffer.fetch(page_id).payload

    def _mark_dirty(self, node) -> None:
        page = self.buffer.fetch(node.page_id)
        page.payload = node
        self.buffer.mark_dirty(page)

    def _new_leaf(self) -> _LeafNode:
        node = _LeafNode(page_id=-1)
        page = self.buffer.new_page(node)
        node.page_id = page.page_id
        return node

    def _new_interior(self) -> _InteriorNode:
        node = _InteriorNode(page_id=-1)
        page = self.buffer.new_page(node)
        node.page_id = page.page_id
        return node

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        return self._height

    def __len__(self) -> int:
        return self.size

    def bulk_load(self, items: Iterable[Tuple[int, Any]]) -> None:
        """Build the tree bottom-up from ``(key, value)`` pairs.

        The pairs are sorted by key (stably, so the relative order of
        duplicates is the insertion order), packed into chained leaves at
        even fill, and interior levels are built over the leaf run — one
        pass per level instead of one root-to-leaf descent per entry.
        Separator keys follow the same convention as incremental splits (the
        smallest key of the right subtree), so lookups, range scans and
        subsequent updates behave identically on a bulk-built tree.

        Raises:
            ValueError: if the tree is not empty.
        """
        items = sorted(items, key=lambda pair: pair[0])
        if self.size:
            raise ValueError("bulk_load requires an empty tree")
        if not items:
            return
        num_leaves = chunk_count(len(items), self.leaf_capacity)
        previous: Optional[_LeafNode] = None
        children: List[int] = []
        child_min_keys: List[int] = []
        for chunk in even_chunks(items, num_leaves):
            # The pre-allocated root page hosts the first leaf.
            leaf = self._node(self.root_page_id) if previous is None else self._new_leaf()
            leaf.keys = [key for key, _ in chunk]
            leaf.values = [value for _, value in chunk]
            leaf.next_leaf = None
            if previous is not None:
                previous.next_leaf = leaf.page_id
                self._mark_dirty(previous)
            self._mark_dirty(leaf)
            children.append(leaf.page_id)
            child_min_keys.append(leaf.keys[0])
            previous = leaf
        height = 1
        while len(children) > 1:
            parents: List[int] = []
            parent_min_keys: List[int] = []
            num_parents = chunk_count(len(children), self.interior_capacity)
            grouped = zip(
                even_chunks(children, num_parents),
                even_chunks(child_min_keys, num_parents),
            )
            for group, group_min_keys in grouped:
                node = self._new_interior()
                node.children = group
                node.keys = group_min_keys[1:]
                self._mark_dirty(node)
                parents.append(node.page_id)
                parent_min_keys.append(group_min_keys[0])
            children = parents
            child_min_keys = parent_min_keys
            height += 1
        self.root_page_id = children[0]
        self._height = height
        self.size = len(items)

    def insert(self, key: int, value: Any) -> None:
        """Insert ``(key, value)``; duplicate keys are allowed."""
        split = self._insert_into(self.root_page_id, key, value)
        if split is not None:
            separator, new_child_id = split
            new_root = self._new_interior()
            new_root.keys = [separator]
            new_root.children = [self.root_page_id, new_child_id]
            self.root_page_id = new_root.page_id
            self._height += 1
            self._mark_dirty(new_root)
        self.size += 1

    def delete(self, key: int, value: Any) -> bool:
        """Delete one entry with ``key`` whose value equals ``value``.

        Underflow is handled lazily (nodes are allowed to become sparse but
        are removed when empty), which matches the behaviour of the original
        Bx-tree implementation where expiring time buckets shed entries in
        bulk.

        Returns:
            True when a matching entry was found and removed.
        """
        path = self._descend_path(key)
        leaf: _LeafNode = path[-1][0]
        index = bisect.bisect_left(leaf.keys, key)
        while index < len(leaf.keys) and leaf.keys[index] == key:
            if leaf.values[index] == value:
                del leaf.keys[index]
                del leaf.values[index]
                self._mark_dirty(leaf)
                self.size -= 1
                self._collapse_if_needed(path)
                return True
            index += 1
        # The entry may live in a subsequent leaf when duplicates span pages.
        # Empty leaves (left behind by lazy deletion) are skipped, not treated
        # as the end of the duplicate run.
        next_id = leaf.next_leaf
        while next_id is not None:
            leaf = self._node(next_id)
            if leaf.keys and leaf.keys[0] > key:
                break
            for i, (k, v) in enumerate(zip(leaf.keys, leaf.values)):
                if k == key and v == value:
                    del leaf.keys[i]
                    del leaf.values[i]
                    self._mark_dirty(leaf)
                    self.size -= 1
                    return True
            next_id = leaf.next_leaf
        return False

    def search(self, key: int) -> List[Any]:
        """All values stored under ``key``."""
        return [value for _, value in self.range_search(key, key)]

    def range_search(self, key_lo: int, key_hi: int) -> List[Tuple[int, Any]]:
        """All ``(key, value)`` pairs with ``key_lo <= key <= key_hi``."""
        if key_hi < key_lo:
            return []
        results: List[Tuple[int, Any]] = []
        leaf = self._descend_path(key_lo)[-1][0]
        while leaf is not None:
            start = bisect.bisect_left(leaf.keys, key_lo)
            for i in range(start, len(leaf.keys)):
                if leaf.keys[i] > key_hi:
                    return results
                results.append((leaf.keys[i], leaf.values[i]))
            if leaf.next_leaf is None:
                break
            leaf = self._node(leaf.next_leaf)
        return results

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Iterate over every entry in key order."""
        node = self._node(self.root_page_id)
        while not node.is_leaf:
            node = self._node(node.children[0])
        while node is not None:
            for key, value in zip(node.keys, node.values):
                yield key, value
            node = self._node(node.next_leaf) if node.next_leaf is not None else None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _descend_path(self, key: int) -> List[Tuple[Any, int]]:
        """Path of ``(node, child_index)`` pairs from the root to the leaf for ``key``."""
        path: List[Tuple[Any, int]] = []
        node = self._node(self.root_page_id)
        while not node.is_leaf:
            # bisect_left (not bisect_right) so that duplicate keys spanning a
            # leaf boundary are reached from their leftmost occurrence; the
            # forward leaf chain then covers the rest.
            index = bisect.bisect_left(node.keys, key)
            path.append((node, index))
            node = self._node(node.children[index])
        path.append((node, -1))
        return path

    def _insert_into(self, page_id: int, key: int, value: Any) -> Optional[Tuple[int, int]]:
        """Insert recursively; returns ``(separator, new_page_id)`` on split."""
        node = self._node(page_id)
        if node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            node.keys.insert(index, key)
            node.values.insert(index, value)
            self._mark_dirty(node)
            if len(node.keys) > self.leaf_capacity:
                return self._split_leaf(node)
            return None
        child_index = bisect.bisect_right(node.keys, key)
        split = self._insert_into(node.children[child_index], key, value)
        if split is None:
            return None
        separator, new_child_id = split
        node.keys.insert(child_index, separator)
        node.children.insert(child_index + 1, new_child_id)
        self._mark_dirty(node)
        if len(node.children) > self.interior_capacity:
            return self._split_interior(node)
        return None

    def _split_leaf(self, leaf: _LeafNode) -> Tuple[int, int]:
        sibling = self._new_leaf()
        mid = len(leaf.keys) // 2
        sibling.keys = leaf.keys[mid:]
        sibling.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        sibling.next_leaf = leaf.next_leaf
        leaf.next_leaf = sibling.page_id
        self._mark_dirty(leaf)
        self._mark_dirty(sibling)
        return sibling.keys[0], sibling.page_id

    def _split_interior(self, node: _InteriorNode) -> Tuple[int, int]:
        sibling = self._new_interior()
        mid = len(node.children) // 2
        separator = node.keys[mid - 1]
        sibling.keys = node.keys[mid:]
        sibling.children = node.children[mid:]
        node.keys = node.keys[: mid - 1]
        node.children = node.children[:mid]
        self._mark_dirty(node)
        self._mark_dirty(sibling)
        return separator, sibling.page_id

    def _collapse_if_needed(self, path: List[Tuple[Any, int]]) -> None:
        """Shrink the tree when the root has a single child and no keys."""
        root = self._node(self.root_page_id)
        while not root.is_leaf and len(root.children) == 1:
            child_id = root.children[0]
            self.buffer.free_page(root.page_id)
            self.root_page_id = child_id
            self._height -= 1
            root = self._node(child_id)
