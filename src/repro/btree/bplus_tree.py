"""A paged B+-tree with duplicate-key support.

The Bx-tree (Jensen et al., VLDB 2004) indexes moving objects with a plain
B+-tree whose keys are one-dimensional Bx values.  This module provides that
substrate: integer keys, arbitrary Python values, duplicates allowed, and
every node stored on one simulated disk page so queries and updates incur
measurable I/O.

Leaves are chained for efficient range scans, which is how the Bx-tree
enumerates all objects inside a space-filling-curve interval.

Node keys are stored in flat ``array('q')`` buffers (8-byte signed ints)
with a parallel Python value list on leaves, so searches and splits run
``bisect``/slice operations over contiguous memory instead of chasing a
list of boxed ints.

Two call surfaces are exposed, mirroring ``geometry/kernels.py``:

* the **per-operation API** (``insert`` / ``delete`` / ``replace`` /
  ``range_search``) descends from the root once per call — use it for
  isolated operations and validated public call sites;
* the **batch API** (``insert_batch`` / ``delete_batch`` /
  ``range_search_batch``) sorts its work by key and sweeps the tree left to
  right, reusing the descent path whenever the next key still belongs to
  the current leaf — use it whenever several operations arrive together
  (the Bx-tree's grouped update/query batches), because the shared descents
  are what turn N root-to-leaf walks into one sweep.

Both surfaces leave identical tree contents for identical inputs; only the
number of node visits differs.
"""

from __future__ import annotations

import bisect
from array import array
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.bulk import chunk_count, even_chunks
from repro.storage.buffer_manager import BufferManager
from repro.storage.page import entries_per_page

#: A leaf entry stores the 8-byte key plus an object record
#: (id, position, velocity, reference time) -- about 48 bytes.
LEAF_ENTRY_BYTES = 56
#: An interior entry stores a separator key and a child pointer.
INTERIOR_ENTRY_BYTES = 16

DEFAULT_LEAF_CAPACITY = entries_per_page(LEAF_ENTRY_BYTES)
DEFAULT_INTERIOR_CAPACITY = entries_per_page(INTERIOR_ENTRY_BYTES)


def _key_array(keys: Iterable[int] = ()) -> array:
    """Flat 8-byte-int key buffer (the node key representation)."""
    return array("q", keys)


def _cumulative_upper(path: Sequence[Tuple[Any, int]]) -> Optional[int]:
    """Smallest separator to the right of a descent prefix (None = unbounded).

    Every key strictly below this bound descends through the same child
    sequence as the recorded path prefix, which is what lets a batch sweep
    resume from a cached ancestor instead of the root.
    """
    upper: Optional[int] = None
    for node, index in path:
        if index < len(node.keys):
            separator = node.keys[index]
            if upper is None or separator < upper:
                upper = separator
    return upper


@dataclass
class _LeafNode:
    page_id: int
    keys: array = field(default_factory=_key_array)
    values: List[Any] = field(default_factory=list)
    next_leaf: Optional[int] = None
    is_leaf: bool = True


@dataclass
class _InteriorNode:
    page_id: int
    keys: array = field(default_factory=_key_array)  # separators, len = len(children) - 1
    children: List[int] = field(default_factory=list)
    is_leaf: bool = False


class BPlusTree:
    """B+-tree over simulated paged storage.

    Args:
        buffer: buffer manager; a private one is created if omitted.
        leaf_capacity: maximum entries per leaf page.
        interior_capacity: maximum children per interior page.
    """

    def __init__(
        self,
        buffer: Optional[BufferManager] = None,
        leaf_capacity: Optional[int] = None,
        interior_capacity: Optional[int] = None,
        page_size: Optional[int] = None,
    ) -> None:
        if leaf_capacity is None:
            leaf_capacity = (
                entries_per_page(LEAF_ENTRY_BYTES, page_size_bytes=page_size)
                if page_size is not None
                else DEFAULT_LEAF_CAPACITY
            )
        if interior_capacity is None:
            interior_capacity = (
                entries_per_page(INTERIOR_ENTRY_BYTES, page_size_bytes=page_size)
                if page_size is not None
                else DEFAULT_INTERIOR_CAPACITY
            )
        if leaf_capacity < 2 or interior_capacity < 3:
            raise ValueError("capacities are too small for a valid B+-tree")
        self.buffer = buffer if buffer is not None else BufferManager()
        self.leaf_capacity = leaf_capacity
        self.interior_capacity = interior_capacity
        root = _LeafNode(page_id=-1)
        page = self.buffer.new_page(root)
        root.page_id = page.page_id
        self.root_page_id = page.page_id
        self.size = 0
        self._height = 1

    # ------------------------------------------------------------------
    # Node helpers
    # ------------------------------------------------------------------
    def _node(self, page_id: int):
        return self.buffer.fetch(page_id).payload

    def _mark_dirty(self, node) -> None:
        # Marking a node dirty is not a node access: the caller provably
        # holds the node (it just descended to it or follows the leaf
        # chain), so a resident frame is dirtied in place and only a node
        # that has actually aged out of the buffer pays a real fetch.
        page = self.buffer.resident_page(node.page_id)
        if page is None:
            page = self.buffer.fetch(node.page_id)
        page.payload = node
        self.buffer.mark_dirty(page)

    def _new_leaf(self) -> _LeafNode:
        node = _LeafNode(page_id=-1)
        page = self.buffer.new_page(node)
        node.page_id = page.page_id
        return node

    def _new_interior(self) -> _InteriorNode:
        node = _InteriorNode(page_id=-1)
        page = self.buffer.new_page(node)
        node.page_id = page.page_id
        return node

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        return self._height

    def __len__(self) -> int:
        return self.size

    def bulk_load(self, items: Iterable[Tuple[int, Any]]) -> None:
        """Build the tree bottom-up from ``(key, value)`` pairs.

        The pairs are sorted by key (stably, so the relative order of
        duplicates is the insertion order), packed into chained leaves at
        even fill, and interior levels are built over the leaf run — one
        pass per level instead of one root-to-leaf descent per entry.
        Separator keys follow the same convention as incremental splits (the
        smallest key of the right subtree), so lookups, range scans and
        subsequent updates behave identically on a bulk-built tree.

        Raises:
            ValueError: if the tree is not empty.
        """
        items = sorted(items, key=lambda pair: pair[0])
        if self.size:
            raise ValueError("bulk_load requires an empty tree")
        if not items:
            return
        num_leaves = chunk_count(len(items), self.leaf_capacity)
        previous: Optional[_LeafNode] = None
        children: List[int] = []
        child_min_keys: List[int] = []
        for chunk in even_chunks(items, num_leaves):
            # The pre-allocated root page hosts the first leaf.
            leaf = self._node(self.root_page_id) if previous is None else self._new_leaf()
            leaf.keys = _key_array(key for key, _ in chunk)
            leaf.values = [value for _, value in chunk]
            leaf.next_leaf = None
            if previous is not None:
                previous.next_leaf = leaf.page_id
                self._mark_dirty(previous)
            self._mark_dirty(leaf)
            children.append(leaf.page_id)
            child_min_keys.append(leaf.keys[0])
            previous = leaf
        height = 1
        while len(children) > 1:
            parents: List[int] = []
            parent_min_keys: List[int] = []
            num_parents = chunk_count(len(children), self.interior_capacity)
            grouped = zip(
                even_chunks(children, num_parents),
                even_chunks(child_min_keys, num_parents),
            )
            for group, group_min_keys in grouped:
                node = self._new_interior()
                node.children = group
                node.keys = _key_array(group_min_keys[1:])
                self._mark_dirty(node)
                parents.append(node.page_id)
                parent_min_keys.append(group_min_keys[0])
            children = parents
            child_min_keys = parent_min_keys
            height += 1
        self.root_page_id = children[0]
        self._height = height
        self.size = len(items)

    def insert(self, key: int, value: Any) -> None:
        """Insert ``(key, value)``; duplicate keys are allowed."""
        path, leaf, _ = self._descend_insert(key)
        self._leaf_insert(path, leaf, key, value)

    def insert_batch(self, pairs: Iterable[Tuple[int, Any]]) -> None:
        """Insert many pairs in one key-ordered sweep with shared descents.

        The pairs are sorted by key (stably, so duplicates keep their
        arrival order and the final tree contents match inserting the batch
        pair by pair in key order); see :meth:`apply_batch` for the sweep.
        """
        self.apply_batch((), list(pairs))

    def delete(self, key: int, value: Any) -> bool:
        """Delete one entry with ``key`` whose value equals ``value``.

        Underflow is handled lazily (nodes are allowed to become sparse but
        are removed when empty), which matches the behaviour of the original
        Bx-tree implementation where expiring time buckets shed entries in
        bulk.

        Returns:
            True when a matching entry was found and removed.
        """
        removed = self._delete_from_leaf(self._descend_delete(key), key, value)
        if removed:
            self._collapse_if_needed()
        return removed

    def delete_batch(self, pairs: Sequence[Tuple[int, Any]]) -> List[bool]:
        """Delete many ``(key, value)`` pairs in one key-ordered sweep.

        Returns per-pair success flags aligned with the *input* order.  The
        descent path is shared between adjacent keys exactly as in
        :meth:`insert_batch`; root collapse (the only structural effect of
        lazy deletion) is checked once per batch instead of once per pair.
        """
        return self.apply_batch(list(pairs), ())[0]

    def apply_batch(
        self,
        deletes: Sequence[Tuple[int, Any]],
        inserts: Sequence[Tuple[int, Any]],
        upserts: Sequence[Tuple[int, Any, Any]] = (),
    ) -> Tuple[List[bool], List[bool]]:
        """Apply a mixed batch of operations in one key-ordered sweep.

        ``deletes`` holds ``(key, value)`` pairs, ``inserts`` ``(key,
        value)`` pairs, and ``upserts`` ``(key, old_value, new_value)``
        triples: an upsert replaces ``old_value`` in place when present and
        degrades to an insertion of ``new_value`` otherwise (the Bx-tree's
        same-key update).  All three work lists are sorted by key and
        merged, so the sweep advances monotonically through the leaf chain
        and every leaf neighbourhood is visited once per batch — operations
        that target the same region (the common case for a moving-object
        update whose old and new keys are close) hit the buffer while it is
        still hot, instead of paying separate passes.

        Descent sharing works at two levels.  While the next key still
        falls inside the cached leaf, no descent happens at all; when it
        falls off the leaf but stays under the cached *parent* (whose
        subtree spans hundreds of key positions at realistic fan-outs), the
        sweep resumes one level up with a single node visit instead of a
        full root-to-leaf walk.  Reuse is conservative: ascending keys
        guarantee the cached ancestors still cover the key, and any split
        invalidates both cursors so structural changes go through the
        ordinary machinery.

        The sweep drives the buffer's batch-awareness: the cursor pages
        (leaf plus parent, for both the scan and insert cursors) are kept
        pinned as the sweep's *frontier* — each cursor slot repins its page
        as it moves — so a small buffer stops evicting the frontier
        mid-batch under the sweep's own leaf traffic.  (The query sweep of
        :meth:`range_search_batch` uses the equivalent
        :meth:`~repro.storage.BufferManager.pin_frontier` hint plus
        sequential-eviction advice.)

        Returns ``(delete_flags, upsert_flags)``: per-deletion success and
        per-upsert replaced-in-place flags, aligned with their inputs.
        """
        delete_flags = [False] * len(deletes)
        upsert_flags = [False] * len(upserts)
        # One merged work list of (key, kind, index); kind ids keep the sort
        # stable and cheap.  Relative order among equal keys is irrelevant:
        # a batch never deletes a value it also inserts.
        work = sorted(
            [(key, 0, i) for i, (key, _) in enumerate(deletes)]
            + [(key, 1, i) for i, (key, _, _) in enumerate(upserts)]
            + [(key, 2, i) for i, (key, _) in enumerate(inserts)]
        )
        # Scan cursor (bisect_left convention) for deletes/upserts, and
        # insert cursor (bisect_right convention).  Each is (leaf, parent,
        # parent_upper, leaf_upper); None marks an empty cursor slot.
        scan_leaf: Optional[_LeafNode] = None
        scan_parent: Optional[_InteriorNode] = None
        scan_parent_upper: Optional[int] = None
        insert_leaf: Optional[_LeafNode] = None
        insert_upper: Optional[int] = None
        insert_parent: Optional[_InteriorNode] = None
        insert_parent_upper: Optional[int] = None
        any_removed = False
        leaf_capacity = self.leaf_capacity
        buffer = self.buffer
        # The root is the sweep's outermost cursor: fetched once per batch
        # (splits drop it along with the other cursors), so full-descent
        # fallbacks skip the per-operation root fetch.
        cached_root = None

        def get_root():
            nonlocal cached_root
            if cached_root is None:
                cached_root = self._node(self.root_page_id)
            return cached_root

        # Frontier pinning: the four cursor nodes' pages are kept pinned so
        # the sweep's own leaf traffic cannot evict its frontier mid-batch.
        # Each cursor slot repins individually when it moves (a whole-set
        # rebuild per move is measurably slower), holding at most four pins;
        # pools smaller than eight frames skip pinning so descents always
        # find evictable frames.  Pin counts nest, so two cursors sharing a
        # page (scan and insert leaf frequently coincide) stay balanced.
        pin_enabled = buffer.batch_hints_enabled and buffer.capacity >= 8
        cursor_pages: List[Optional[Any]] = [None, None, None, None]

        def repin(slot: int, node) -> None:
            if not pin_enabled:
                return
            new_page = buffer.resident_page(node.page_id) if node is not None else None
            page = cursor_pages[slot]
            if new_page is page:
                return
            if page is not None:
                page.unpin()
            if new_page is not None:
                new_page.pin()
            cursor_pages[slot] = new_page

        def unpin_cursors() -> None:
            for slot, page in enumerate(cursor_pages):
                if page is not None:
                    page.unpin()
                    cursor_pages[slot] = None

        def locate_scan_leaf(key: int) -> _LeafNode:
            nonlocal scan_leaf, scan_parent, scan_parent_upper
            # Reuse while the key lies inside the cached leaf: forward reuse
            # is always correct (ascending keys + the chain walk), but past
            # the leaf's last key a descent beats walking the cold chain.
            if scan_leaf is not None and scan_leaf.keys and key <= scan_leaf.keys[-1]:
                return scan_leaf
            if scan_parent is not None and (
                scan_parent_upper is None or key <= scan_parent_upper
            ):
                index = bisect.bisect_left(scan_parent.keys, key)
                scan_leaf = self._node(scan_parent.children[index])
                repin(0, scan_leaf)
                return scan_leaf
            path = self._descend_path(key, root=get_root())
            scan_leaf = path[-1][0]
            interior = path[:-1]
            scan_parent = interior[-1][0] if interior else None
            scan_parent_upper = _cumulative_upper(interior[:-1])
            repin(0, scan_leaf)
            repin(1, scan_parent)
            return scan_leaf

        def do_insert(key: int, value: Any) -> None:
            nonlocal scan_leaf, scan_parent, scan_parent_upper
            nonlocal insert_leaf, insert_upper, insert_parent, insert_parent_upper
            nonlocal cached_root
            leaf = None
            if insert_leaf is not None and (insert_upper is None or key < insert_upper):
                leaf = insert_leaf
            else:
                if insert_parent is None or not (
                    insert_parent_upper is None or key < insert_parent_upper
                ):
                    # Seed the insert cursor from the scan cursor's parent:
                    # sweep keys only ascend, so the scan parent's subtree
                    # provably contains every key below its upper separator
                    # (strictly below — at equality a bisect_right descent
                    # from the root would leave the subtree).
                    if scan_parent is not None and (
                        scan_parent_upper is None or key < scan_parent_upper
                    ):
                        insert_parent = scan_parent
                        insert_parent_upper = scan_parent_upper
                        repin(3, insert_parent)
                if insert_parent is not None and (
                    insert_parent_upper is None or key < insert_parent_upper
                ):
                    index = bisect.bisect_right(insert_parent.keys, key)
                    leaf = self._node(insert_parent.children[index])
                    insert_leaf = leaf
                    insert_upper = (
                        insert_parent.keys[index]
                        if index < len(insert_parent.keys)
                        else insert_parent_upper
                    )
                    repin(2, leaf)
            if leaf is not None and len(leaf.keys) < leaf_capacity:
                index = bisect.bisect_right(leaf.keys, key)
                leaf.keys.insert(index, key)
                leaf.values.insert(index, value)
                # The insert cursor's page is pinned in slot 2 — dirty it
                # through the held handle instead of a frame lookup.
                page = cursor_pages[2]
                if page is not None and page.page_id == leaf.page_id:
                    buffer.mark_dirty(page)
                else:
                    self._mark_dirty(leaf)
                self.size += 1
                return
            # Cursor miss, or the target leaf is full and the (possible)
            # split needs the complete root-to-leaf path: descend fully.
            path, leaf, upper = self._descend_insert(key, root=get_root())
            if self._leaf_insert(path, leaf, key, value):
                # The split restructured interior nodes; both cursors may
                # reference stale subtree boundaries, so drop them.
                cached_root = None
                scan_leaf = scan_parent = None
                scan_parent_upper = None
                insert_leaf = insert_parent = None
                insert_upper = insert_parent_upper = None
                unpin_cursors()
            else:
                insert_leaf, insert_upper = leaf, upper
                insert_parent = path[-1][0] if path else None
                insert_parent_upper = _cumulative_upper(path[:-1])
                repin(2, insert_leaf)
                repin(3, insert_parent)

        # The update sweep pins its frontier but does NOT use the
        # sequential-eviction hint: an update sweep dirties the leaves it
        # passes, and measurements show evicting the remaining clean pages
        # MRU-first (mostly interior nodes and chain-walk leaves the same
        # batch still needs) costs more physical reads than the hint saves.
        # The read-only query sweep of range_search_batch is where the hint
        # pays off.
        try:
            for key, kind, index in work:
                if kind == 2:
                    do_insert(key, inserts[index][1])
                elif kind == 0:
                    if self._delete_from_leaf(
                        locate_scan_leaf(key), key, deletes[index][1]
                    ):
                        delete_flags[index] = True
                        any_removed = True
                else:
                    _, old_value, new_value = upserts[index]
                    if self._replace_from_leaf(
                        locate_scan_leaf(key), key, old_value, new_value
                    ):
                        upsert_flags[index] = True
                    else:
                        do_insert(key, new_value)
        finally:
            unpin_cursors()
        if any_removed:
            self._collapse_if_needed()
        return delete_flags, upsert_flags

    def replace(self, key: int, old_value: Any, new_value: Any) -> bool:
        """Replace the value of one ``(key, old_value)`` entry in place.

        This is the Bx-tree same-key update fast path: when an object's new
        snapshot maps to the same Bx key, one descent suffices where
        ``delete`` + ``insert`` would pay two.  The entry keeps its position
        among duplicates of ``key``.

        Returns:
            True when a matching entry was found and replaced.
        """
        return self._replace_from_leaf(
            self._descend_delete(key), key, old_value, new_value
        )

    def _replace_from_leaf(
        self, leaf: _LeafNode, key: int, old_value: Any, new_value: Any
    ) -> bool:
        """Replace one ``(key, old_value)`` entry starting at ``leaf`` (chain-walks)."""
        index = bisect.bisect_left(leaf.keys, key)
        while leaf is not None:
            while index < len(leaf.keys) and leaf.keys[index] == key:
                if leaf.values[index] == old_value:
                    leaf.values[index] = new_value
                    self._mark_dirty(leaf)
                    return True
                index += 1
            # Duplicates may continue in later leaves; empty leaves (lazy
            # deletion) are skipped rather than treated as the end.
            if index < len(leaf.keys) or leaf.next_leaf is None:
                return False
            leaf = self._node(leaf.next_leaf)
            if leaf.keys and leaf.keys[0] > key:
                return False
            index = bisect.bisect_left(leaf.keys, key)
        return False

    def search(self, key: int) -> List[Any]:
        """All values stored under ``key``."""
        return [value for _, value in self.range_search(key, key)]

    def range_search(self, key_lo: int, key_hi: int) -> List[Tuple[int, Any]]:
        """All ``(key, value)`` pairs with ``key_lo <= key <= key_hi``."""
        if key_hi < key_lo:
            return []
        results: List[Tuple[int, Any]] = []
        leaf = self._descend_path(key_lo)[-1][0]
        while leaf is not None:
            start = bisect.bisect_left(leaf.keys, key_lo)
            for i in range(start, len(leaf.keys)):
                if leaf.keys[i] > key_hi:
                    return results
                results.append((leaf.keys[i], leaf.values[i]))
            if leaf.next_leaf is None:
                break
            leaf = self._node(leaf.next_leaf)
        return results

    def range_search_batch(
        self, ranges: Sequence[Tuple[int, int]], sequential_hint: bool = True
    ) -> List[List[Tuple[int, Any]]]:
        """Run many inclusive range scans in one left-to-right sweep.

        Results are aligned with the input order.  The ranges are visited
        sorted by lower bound; when the next range starts inside the leaf
        where the previous scan ended, the root-to-leaf descent is skipped
        and the scan continues from that leaf.  Each individual scan visits
        exactly the leaves :meth:`range_search` would, so candidate order
        per range is identical — only shared descents are saved.  The sweep
        pins its current leaf as the buffer frontier and, by default, runs
        under the sequential-eviction hint, exactly like
        :meth:`apply_batch`.

        Args:
            ranges: inclusive ``(lo, hi)`` key ranges to scan.
            sequential_hint: advise the buffer that scanned leaves will not
                be revisited.  Callers that re-scan overlapping ranges
                shortly after — the kNN filter rounds grow their windows
                around the same centers — pass False, because evicting the
                just-scanned leaves would evict exactly the pages the next
                round needs.
        """
        results: List[List[Tuple[int, Any]]] = [[] for _ in ranges]
        order = sorted(range(len(ranges)), key=lambda i: ranges[i][0])
        leaf: Optional[_LeafNode] = None
        buffer = self.buffer
        if sequential_hint:
            buffer.advise_sequential(True)
        try:
            for i in order:
                key_lo, key_hi = ranges[i]
                if key_hi < key_lo:
                    continue
                if leaf is None or not leaf.keys or not leaf.keys[0] < key_lo <= leaf.keys[-1]:
                    leaf = self._descend_path(key_lo)[-1][0]
                out = results[i]
                node: Optional[_LeafNode] = leaf
                while node is not None:
                    keys = node.keys
                    start = bisect.bisect_left(keys, key_lo)
                    stop = bisect.bisect_right(keys, key_hi)
                    for j in range(start, stop):
                        out.append((keys[j], node.values[j]))
                    if stop < len(keys) or node.next_leaf is None:
                        break
                    node = self._node(node.next_leaf)
                leaf = node if node is not None else leaf
                buffer.pin_frontier((leaf.page_id,))
        finally:
            if sequential_hint:
                buffer.advise_sequential(False)
            buffer.release_frontier()
        return results

    def items(self) -> Iterator[Tuple[int, Any]]:
        """Iterate over every entry in key order."""
        node = self._node(self.root_page_id)
        while not node.is_leaf:
            node = self._node(node.children[0])
        while node is not None:
            for key, value in zip(node.keys, node.values):
                yield key, value
            node = self._node(node.next_leaf) if node.next_leaf is not None else None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _descend_path(self, key: int, root=None) -> List[Tuple[Any, int]]:
        """Path of ``(node, child_index)`` pairs from the root to the leaf for ``key``.

        ``root`` lets a batch sweep that already holds the root node (its
        outermost cursor) start the walk without re-fetching it; the root's
        identity is stable for the sweep's lifetime because any split that
        replaces it also invalidates every sweep cursor.
        """
        path: List[Tuple[Any, int]] = []
        node = root if root is not None else self._node(self.root_page_id)
        while not node.is_leaf:
            # bisect_left (not bisect_right) so that duplicate keys spanning a
            # leaf boundary are reached from their leftmost occurrence; the
            # forward leaf chain then covers the rest.
            index = bisect.bisect_left(node.keys, key)
            path.append((node, index))
            node = self._node(node.children[index])
        path.append((node, -1))
        return path

    def _descend_insert(
        self, key: int, root=None
    ) -> Tuple[List[Tuple[_InteriorNode, int]], _LeafNode, Optional[int]]:
        """Descend for an insertion of ``key`` (``bisect_right`` convention).

        Returns ``(path, leaf, upper)`` where ``path`` holds the interior
        ``(node, child_index)`` pairs and ``upper`` is the smallest
        separator to the right of the descent — an insertion of any key
        strictly below ``upper`` provably lands in the same leaf, which is
        the invariant the batch sweep uses to reuse the path.  ``root``
        starts the walk from an already-held root node (see
        :meth:`_descend_path`).
        """
        path: List[Tuple[_InteriorNode, int]] = []
        node = root if root is not None else self._node(self.root_page_id)
        upper: Optional[int] = None
        while not node.is_leaf:
            index = bisect.bisect_right(node.keys, key)
            if index < len(node.keys):
                separator = node.keys[index]
                if upper is None or separator < upper:
                    upper = separator
            path.append((node, index))
            node = self._node(node.children[index])
        return path, node, upper

    def _descend_delete(self, key: int) -> _LeafNode:
        """Descend to the leftmost leaf for ``key`` (``bisect_left`` convention)."""
        node = self._node(self.root_page_id)
        while not node.is_leaf:
            node = self._node(node.children[bisect.bisect_left(node.keys, key)])
        return node

    def _leaf_insert(
        self,
        path: List[Tuple[_InteriorNode, int]],
        leaf: _LeafNode,
        key: int,
        value: Any,
    ) -> bool:
        """Insert into a located leaf; returns True when a split occurred."""
        index = bisect.bisect_right(leaf.keys, key)
        leaf.keys.insert(index, key)
        leaf.values.insert(index, value)
        self._mark_dirty(leaf)
        self.size += 1
        if len(leaf.keys) > self.leaf_capacity:
            self._split_up(path, leaf)
            return True
        return False

    def _split_up(self, path: List[Tuple[_InteriorNode, int]], leaf: _LeafNode) -> None:
        """Split an overfull leaf and propagate splits up the recorded path."""
        separator, new_child_id = self._split_leaf(leaf)
        for node, child_index in reversed(path):
            node.keys.insert(child_index, separator)
            node.children.insert(child_index + 1, new_child_id)
            self._mark_dirty(node)
            if len(node.children) <= self.interior_capacity:
                return
            separator, new_child_id = self._split_interior(node)
        new_root = self._new_interior()
        new_root.keys = _key_array((separator,))
        new_root.children = [self.root_page_id, new_child_id]
        self.root_page_id = new_root.page_id
        self._height += 1
        self._mark_dirty(new_root)

    def _delete_from_leaf(self, leaf: _LeafNode, key: int, value: Any) -> bool:
        """Remove one ``(key, value)`` entry starting at ``leaf`` (chain-walks)."""
        index = bisect.bisect_left(leaf.keys, key)
        while index < len(leaf.keys) and leaf.keys[index] == key:
            if leaf.values[index] == value:
                del leaf.keys[index]
                del leaf.values[index]
                self._mark_dirty(leaf)
                self.size -= 1
                return True
            index += 1
        # The entry may live in a subsequent leaf when duplicates span pages.
        # Empty leaves (left behind by lazy deletion) are skipped, not treated
        # as the end of the duplicate run.
        next_id = leaf.next_leaf
        while next_id is not None:
            leaf = self._node(next_id)
            if leaf.keys and leaf.keys[0] > key:
                break
            for i, (k, v) in enumerate(zip(leaf.keys, leaf.values)):
                if k == key and v == value:
                    del leaf.keys[i]
                    del leaf.values[i]
                    self._mark_dirty(leaf)
                    self.size -= 1
                    return True
            next_id = leaf.next_leaf
        return False

    def _split_leaf(self, leaf: _LeafNode) -> Tuple[int, int]:
        sibling = self._new_leaf()
        mid = len(leaf.keys) // 2
        sibling.keys = leaf.keys[mid:]
        sibling.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        sibling.next_leaf = leaf.next_leaf
        leaf.next_leaf = sibling.page_id
        self._mark_dirty(leaf)
        self._mark_dirty(sibling)
        return sibling.keys[0], sibling.page_id

    def _split_interior(self, node: _InteriorNode) -> Tuple[int, int]:
        sibling = self._new_interior()
        mid = len(node.children) // 2
        separator = node.keys[mid - 1]
        sibling.keys = node.keys[mid:]
        sibling.children = node.children[mid:]
        node.keys = node.keys[: mid - 1]
        node.children = node.children[:mid]
        self._mark_dirty(node)
        self._mark_dirty(sibling)
        return separator, sibling.page_id

    def _collapse_if_needed(self) -> None:
        """Shrink the tree when the root has a single child and no keys."""
        root = self._node(self.root_page_id)
        while not root.is_leaf and len(root.children) == 1:
            child_id = root.children[0]
            self.buffer.free_page(root.page_id)
            self.root_page_id = child_id
            self._height -= 1
            root = self._node(child_id)
