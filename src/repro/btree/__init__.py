"""Disk-based B+-tree used as the base structure of the Bx-tree."""

from repro.btree.bplus_tree import BPlusTree

__all__ = ["BPlusTree"]
