"""The B+-tree key-store backend (the paper's I/O-model reference).

:class:`BTreeKeyStore` wraps :class:`~repro.btree.bplus_tree.BPlusTree`
behind the :class:`~repro.bxtree.key_store.KeyStore` surface the Bx-tree
programs against.  It is a thin adapter: every method forwards to the
paged tree unchanged, so the backend preserves the paper's cost model —
buffer-managed pages, root-to-leaf descents, leaf-chain range scans —
and remains the default.  The flat vectorized backend
(:class:`~repro.bxtree.key_store.FlatKeyStore`) is pinned bit-identical
to this one; see ``docs/backends.md``.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.btree.bplus_tree import BPlusTree
from repro.storage.buffer_manager import BufferManager


class BTreeKeyStore:
    """Key-store backend over the paged B+-tree (default backend)."""

    name = "btree"

    def __init__(
        self,
        buffer: Optional[BufferManager] = None,
        page_size: Optional[int] = None,
        tree: Optional[BPlusTree] = None,
    ) -> None:
        if tree is not None:
            self.tree = tree
        else:
            self.tree = BPlusTree(buffer=buffer, page_size=page_size)
        self.buffer = self.tree.buffer

    # -- sizes ---------------------------------------------------------
    @property
    def size(self) -> int:
        return self.tree.size

    def __len__(self) -> int:
        return len(self.tree)

    # -- updates -------------------------------------------------------
    def bulk_load(self, items: Iterable[Tuple[int, Any]]) -> None:
        self.tree.bulk_load(items)

    def insert(self, key: int, value: Any) -> None:
        self.tree.insert(key, value)

    def delete(self, key: int, value: Any) -> bool:
        return self.tree.delete(key, value)

    def replace(self, key: int, old_value: Any, new_value: Any) -> bool:
        return self.tree.replace(key, old_value, new_value)

    def apply_batch(
        self,
        deletes: Sequence[Tuple[int, Any]] = (),
        inserts: Sequence[Tuple[int, Any]] = (),
        upserts: Sequence[Tuple[int, Any, Any]] = (),
    ) -> Tuple[List[bool], List[bool]]:
        return self.tree.apply_batch(deletes, inserts, upserts)

    # -- queries -------------------------------------------------------
    def range_search(self, low: int, high: int) -> List[Tuple[int, Any]]:
        return self.tree.range_search(low, high)

    def range_search_batch(
        self,
        ranges: Sequence[Tuple[int, int]],
        sequential_hint: bool = True,
    ) -> List[List[Tuple[int, Any]]]:
        return self.tree.range_search_batch(ranges, sequential_hint=sequential_hint)

    def knn_candidates_batch(
        self, ranges: Sequence[Tuple[int, int]]
    ) -> List[List[Tuple[int, float, float, float, float, float]]]:
        """Per-range candidate motion states ``(oid, px, py, vx, vy, rt)``.

        No sequential-eviction hint: the kNN filter rounds re-scan grown
        versions of these same ranges, so the just-scanned leaves are
        exactly the pages the next round wants resident.
        """
        scans = self.tree.range_search_batch(ranges, sequential_hint=False)
        return [
            [
                (
                    obj.oid,
                    obj.position.x,
                    obj.position.y,
                    obj.velocity.vx,
                    obj.velocity.vy,
                    obj.reference_time,
                )
                for _, obj in scanned
            ]
            for scanned in scans
        ]

    def items(self) -> Iterator[Tuple[int, Any]]:
        return self.tree.items()


__all__ = ["BTreeKeyStore"]
