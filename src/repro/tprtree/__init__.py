"""TPR-tree and TPR*-tree moving-object indexes.

The TPR-tree (Saltenis et al., SIGMOD 2000) augments the R*-tree with
velocity bounding rectangles so that node MBRs expand with time; the
TPR*-tree (Tao et al., VLDB 2003) replaces the R*-tree's insertion
heuristics with ones driven by the sweeping-region cost model.  Both are
implemented here over the simulated paged storage layer so that query and
update I/O can be measured the same way the paper does.
"""

from repro.tprtree.node import TPRNode, TPREntry
from repro.tprtree.tpr_tree import TPRTree
from repro.tprtree.tprstar_tree import TPRStarTree

__all__ = ["TPRNode", "TPREntry", "TPRTree", "TPRStarTree"]
