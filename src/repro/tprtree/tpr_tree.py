"""The TPR-tree: a time-parameterized R-tree for moving points.

The tree stores moving objects in a height-balanced R-tree whose node bounds
are :class:`~repro.geometry.MovingRect` values (an MBR anchored at a
reference time plus a velocity bounding rectangle).  All structural choices
(choose-subtree, node split) are driven by a *goodness metric* supplied by
overridable hooks; the base class uses classic R*-tree heuristics evaluated
on the bounds projected to the current time, and :class:`repro.tprtree.TPRStarTree`
overrides the hooks with the sweeping-region cost model of Tao et al.

Every node lives on one simulated disk page and every node visit goes
through the buffer manager, so the physical-I/O counters reflect exactly
what the paper measures.  Node entries are stored as parallel SoA float
columns (see ``repro/tprtree/node.py``), and the hot paths below — search,
choose-subtree, split scoring, forced reinsertion — read the columns
through the ``soa_*`` geometry kernels instead of materializing per-entry
``MovingRect`` objects.

**Per-object versus batch API.**  Mirroring ``geometry/kernels.py``, the
tree exposes the per-object protocol (``insert`` / ``delete`` / ``update``
/ ``range_query``) plus a batch surface (``insert_batch`` / ``delete_batch``
/ ``update_batch`` / ``range_query_batch`` / ``knn_query_batch``) for
co-arriving operations.  A batch advances the clock once, then replays its
operations in projected-position order, so consecutive operations descend
through the same subtrees while their pages are still buffered; a query
batch runs as one shared traversal that visits each node once for all
queries that need it, with the buffer manager advised to spare the
traversal's own frontier (see :meth:`_shared_search`).  Results are
identical to applying the operations one by one.  (A deferred once-per-node
bound-tightening variant was measured and rejected: under the paper's
small-buffer protocol the end-of-batch re-tightening pass re-reads cold
pages and *raises* physical update I/O by ~25-70%, while the spatial sort
alone keeps I/O at or below the per-object path.)
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.bulk import PACKING_STRATEGIES, chunk_count, even_chunks, velocity_bins
from repro.geometry import kernels
from repro.geometry.moving_rect import MovingRect
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.objects.knn import (
    AdaptiveRadius,
    CandidateState,
    KNNQuery,
    expanding_knn_batch,
)
from repro.objects.moving_object import MovingObject
from repro.objects.queries import RangeQuery
from repro.storage.buffer_manager import BufferManager
from repro.tprtree.node import DEFAULT_MAX_ENTRIES, TPREntry, TPRNode

#: Default time horizon (in timestamps) over which bounds are optimized.
#: The paper's workloads use a maximum update interval of 120 ts, and the
#: TPR literature recommends a horizon on the order of the update interval.
DEFAULT_HORIZON = 60.0

#: Target node fill of an STR bulk load, as a fraction of ``max_entries``.
#: Slightly below 1.0 leaves headroom so the first trickle of updates after
#: a bulk build does not immediately split every node.
DEFAULT_BULK_FILL = 0.9

#: Minimum ``active_queries * node_entries`` grid size at which the shared
#: traversal switches from the scalar per-entry intersect loop to the fused
#: numpy pass (:func:`repro.geometry.kernels.soa_intersect_many`), measured
#: against the kernel's ~80 us fixed dispatch cost per node; single-query
#: subtrees always stay scalar because the scalar loop's per-entry early
#: exits beat one fused pass there.  Both paths are bit-identical, so the
#: constant is purely a performance knob (tests pin the equivalence by
#: forcing it to 0 and to infinity).
VECTOR_MATCH_MIN_WORK = 100


class TPRTree:
    """A TPR-tree over simulated paged storage.

    Args:
        buffer: buffer manager to use; a private one is created if omitted.
        max_entries: maximum entries per node (fan-out); defaults to the
            fan-out implied by a 4 KB page.
        min_fill: minimum fill factor (fraction of ``max_entries``).
        horizon: time horizon over which structural decisions integrate
            the bound expansion.
    """

    name = "TPR"

    def __init__(
        self,
        buffer: Optional[BufferManager] = None,
        max_entries: Optional[int] = None,
        min_fill: float = 0.4,
        horizon: float = DEFAULT_HORIZON,
        page_size: Optional[int] = None,
    ) -> None:
        if max_entries is None:
            if page_size is not None:
                from repro.storage.page import entries_per_page
                from repro.tprtree.node import TPR_ENTRY_BYTES

                max_entries = entries_per_page(TPR_ENTRY_BYTES, page_size_bytes=page_size)
            else:
                max_entries = DEFAULT_MAX_ENTRIES
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError("min_fill must be in (0, 0.5]")
        self.buffer = buffer if buffer is not None else BufferManager()
        self.max_entries = max_entries
        self.min_entries = max(2, int(max_entries * min_fill))
        self.horizon = horizon
        self.current_time = 0.0
        self.size = 0
        root = TPRNode(page_id=-1, is_leaf=True)
        page = self.buffer.new_page(root)
        root.page_id = page.page_id
        self.root_page_id = page.page_id
        self._height = 1

    # ------------------------------------------------------------------
    # Node access helpers
    # ------------------------------------------------------------------
    def _node(self, page_id: int) -> TPRNode:
        """Fetch a node through the buffer (counts as a node access)."""
        return self.buffer.fetch(page_id).payload

    def _write_node(self, node: TPRNode) -> None:
        page = self.buffer.fetch(node.page_id)
        page.payload = node
        self.buffer.mark_dirty(page)

    def _new_node(self, is_leaf: bool) -> TPRNode:
        node = TPRNode(page_id=-1, is_leaf=is_leaf)
        page = self.buffer.new_page(node)
        node.page_id = page.page_id
        return node

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Height of the tree in levels (1 for a lone leaf root)."""
        return self._height

    def __len__(self) -> int:
        return self.size

    def insert(self, obj: MovingObject) -> None:
        """Insert a moving object."""
        self.current_time = max(self.current_time, obj.reference_time)
        entry = TPREntry(bound=obj.as_moving_rect(), oid=obj.oid)
        self._insert_entry(entry, level=0)
        self.size += 1

    def bulk_load(
        self,
        objects: Iterable[MovingObject],
        fill: float = DEFAULT_BULK_FILL,
        strategy: str = "midpoint_str",
        axes: Optional[Sequence] = None,
    ) -> None:
        """Build the tree bottom-up from ``objects`` with STR packing.

        Sort-Tile-Recursive packing (Leutenegger et al.): entries are sorted
        by the x coordinate of their projected center, cut into vertical
        slabs, each slab sorted by y and cut into nodes; the resulting node
        bounds feed the same procedure one level up until everything fits in
        the root.  Compared with N root-to-leaf insertions this performs no
        choose-subtree scans, no splits and no forced reinsertions, which is
        what makes build phases tractable at bench scale.

        Two strategies are offered:

        * ``"midpoint_str"`` (default) — plain STR over centers projected
          half a horizon ahead (the midpoint trick approximates velocity
          grouping without analyzing velocities);
        * ``"velocity_str"`` — the objects are first binned by dominant
          velocity axis (:func:`repro.bulk.velocity_bins`, the VP
          analyzer's clustering; ``axes`` supplies precomputed DVAs), the
          leaf level is packed per bin so no leaf mixes objects from
          different movement regimes, and the upper levels are packed
          jointly with midpoint STR.

        Every produced node respects the tree's ``min_fill``/fan-out
        invariants, so subsequent incremental updates behave exactly as on an
        incrementally built tree.

        Args:
            objects: the initial population (the tree must be empty).
            fill: target node fill as a fraction of ``max_entries``.
            strategy: one of :data:`repro.bulk.PACKING_STRATEGIES`.
            axes: optional dominant velocity axes for ``"velocity_str"``
                (analyzed from the objects when omitted).

        Raises:
            ValueError: if the tree already contains objects or the
                strategy is unknown.
        """
        objects = list(objects)
        if strategy not in PACKING_STRATEGIES:
            raise ValueError(
                f"unknown packing strategy {strategy!r}; expected one of "
                f"{PACKING_STRATEGIES}"
            )
        if self.size:
            raise ValueError("bulk_load requires an empty tree")
        if not objects:
            return
        if not 0.0 < fill <= 1.0:
            raise ValueError("fill must be in (0, 1]")
        self.current_time = max(
            self.current_time, max(o.reference_time for o in objects)
        )
        levels = 0
        if strategy == "velocity_str" and len(objects) > self.max_entries:
            # Pack the leaf level per velocity bin, then hand the combined
            # parent entries to the ordinary midpoint-STR level loop.
            bins = velocity_bins(objects, axes=axes, min_bin=self.min_entries)
            entries = []
            for group in bins:
                entries.extend(
                    self._pack_level(
                        [TPREntry(bound=o.as_moving_rect(), oid=o.oid) for o in group],
                        fill,
                    )
                )
            levels = 1
        else:
            entries = [TPREntry(bound=o.as_moving_rect(), oid=o.oid) for o in objects]
        while len(entries) > self.max_entries:
            entries = self._pack_level(entries, fill)
            levels += 1
        root = self._node(self.root_page_id)
        root.is_leaf = levels == 0
        root.entries = entries
        root.parent_page_id = None
        if not root.is_leaf:
            for child_page_id in root.refs:
                child = self._node(child_page_id)
                child.parent_page_id = root.page_id
                self._write_node(child)
        self._write_node(root)
        self._height = levels + 1
        self.size = len(objects)

    def _pack_level(self, entries: List[TPREntry], fill: float) -> List[TPREntry]:
        """Pack one level of entries into nodes; returns the parent entries."""
        t = self.current_time
        is_leaf = entries[0].is_leaf_entry
        cap = max(self.min_entries, min(self.max_entries, int(self.max_entries * fill)))
        num_nodes = self._chunk_count(len(entries), cap)
        num_slabs = int(math.ceil(math.sqrt(num_nodes)))
        # Sort on centers projected half a horizon ahead: two objects are
        # near in that ordering only if they are close in space AND move
        # compatibly, which approximates the velocity grouping the TPR*
        # insertion heuristics would have produced (plain time-t STR packs
        # diverging objects together and the bounds balloon immediately).
        keyed = list(
            zip(
                kernels.batch_centers(
                    [e.bound for e in entries], t + 0.5 * self.horizon
                ),
                entries,
            )
        )
        keyed.sort(key=lambda pair: pair[0][0])
        parents: List[TPREntry] = []
        for slab in even_chunks(keyed, num_slabs):
            slab.sort(key=lambda pair: pair[0][1])
            for pairs in even_chunks(slab, self._chunk_count(len(slab), cap)):
                node = self._new_node(is_leaf=is_leaf)
                node.entries = [entry for _, entry in pairs]
                if not is_leaf:
                    for child_page_id in node.refs:
                        child = self._node(child_page_id)
                        child.parent_page_id = node.page_id
                        self._write_node(child)
                self._write_node(node)
                parents.append(
                    TPREntry(bound=node.bound(t), child_page_id=node.page_id)
                )
        return parents

    def _chunk_count(self, n: int, cap: int) -> int:
        """Number of nodes to pack ``n`` entries into without violating fill.

        Starts from ``ceil(n / cap)`` and lowers the count until every node
        receives at least ``min_entries`` (always possible because
        ``min_fill <= 0.5`` guarantees two half-full nodes fit in one).
        """
        count = chunk_count(n, cap)
        while count > 1 and n // count < self.min_entries:
            count -= 1
        return count

    def delete(self, obj: MovingObject) -> bool:
        """Delete the object snapshot ``obj``.

        The snapshot must be the one previously inserted (same reference
        position, velocity and time); the search descends only into subtrees
        whose bound covers the object's current position, exactly as a
        disk-based TPR-tree deletion would.

        Returns:
            True when the object was found and removed.
        """
        self.current_time = max(self.current_time, obj.reference_time)
        return self._delete_one(obj)

    def _delete_one(self, obj: MovingObject) -> bool:
        """Delete at the already-advanced clock (shared by both surfaces)."""
        target = obj.position_at(self.current_time)
        path = self._find_leaf_path(self.root_page_id, obj.oid, target, [])
        if path is None:
            return False
        leaf = path[-1]
        slot = leaf.index_of_ref(obj.oid)
        if slot is None:
            return False
        leaf.remove_at(slot)
        self._write_node(leaf)
        self.size -= 1
        self._condense(path)
        return True

    def update(self, old: MovingObject, new: MovingObject) -> bool:
        """Update an object: a deletion of ``old`` followed by an insertion of ``new``."""
        removed = self.delete(old)
        self.insert(new)
        return removed

    # ------------------------------------------------------------------
    # Batch API (space-ordered replay)
    # ------------------------------------------------------------------
    def _spatial_order(self, objects: Sequence[MovingObject]) -> List[int]:
        """Input indexes sorted by position projected to the (advanced) clock.

        Consecutive operations on nearby objects descend through the same
        subtrees, which is what keeps their pages buffered across the batch
        under the paper's small-buffer protocol.
        """
        t = self.current_time

        def projected(index: int):
            obj = objects[index]
            return (
                obj.position.x + obj.velocity.vx * (t - obj.reference_time),
                obj.position.y + obj.velocity.vy * (t - obj.reference_time),
            )

        return sorted(range(len(objects)), key=projected)

    def delete_batch(self, objects: Sequence[MovingObject]) -> List[bool]:
        """Delete a batch of snapshots in one space-ordered sweep.

        Returns per-object success flags aligned with the input order.
        Every deletion goes through the ordinary machinery (containment
        search, underflow condense, orphan reinsertion); the batch advances
        the clock once and orders the work spatially.
        """
        objects = list(objects)
        if not objects:
            return []
        if len(objects) == 1:
            return [self.delete(objects[0])]
        self.current_time = max(
            self.current_time, max(o.reference_time for o in objects)
        )
        flags = [False] * len(objects)
        for index in self._spatial_order(objects):
            flags[index] = self._delete_one(objects[index])
        return flags

    def insert_batch(self, objects: Sequence[MovingObject]) -> None:
        """Insert a batch of snapshots in one space-ordered sweep.

        Splits and (for the TPR*-tree) forced reinsertions behave exactly
        as in per-object insertion — only the replay order and the single
        clock advance differ.
        """
        objects = list(objects)
        if not objects:
            return
        if len(objects) == 1:
            return self.insert(objects[0])
        self.current_time = max(
            self.current_time, max(o.reference_time for o in objects)
        )
        for index in self._spatial_order(objects):
            self.insert(objects[index])

    def update_batch(self, pairs: Sequence[Tuple[MovingObject, MovingObject]]) -> int:
        """Apply a batch of updates; returns how many old snapshots existed.

        Runs one batched deletion phase followed by one batched insertion
        phase.  With distinct object ids per batch the two phases commute
        with the pair-by-pair order, so the stored object set (and every
        query answer) matches sequential replay.
        """
        pairs = list(pairs)
        if not pairs:
            return 0
        if len(pairs) == 1:
            return 1 if self.update(pairs[0][0], pairs[0][1]) else 0
        oids = [old.oid for old, _ in pairs]
        if len(set(oids)) != len(oids):
            # Same object updated twice in one batch: order matters, fall
            # back to the sequential path.
            return sum(1 for old, new in pairs if self.update(old, new))
        self.current_time = max(
            self.current_time,
            max(max(o.reference_time, n.reference_time) for o, n in pairs),
        )
        flags = self.delete_batch([old for old, _ in pairs])
        self.insert_batch([new for _, new in pairs])
        return sum(flags)

    def apply_batch(
        self,
        deletes: Sequence[MovingObject] = (),
        inserts: Sequence[MovingObject] = (),
        updates: Sequence[Tuple[MovingObject, MovingObject]] = (),
    ) -> Tuple[List[bool], int]:
        """Apply a mixed batch: one deletion phase, then one insertion phase.

        Update pairs contribute their old snapshot to the deletion phase and
        their new snapshot to the insertion phase (they must not repeat an
        object id within one batch).  Returns ``(delete_flags,
        updates_removed)`` mirroring the Bx-tree's ``apply_batch``.
        """
        deletes = list(deletes)
        updates = list(updates)
        flags = self.delete_batch(deletes + [old for old, _ in updates])
        self.insert_batch(list(inserts) + [new for _, new in updates])
        return flags[: len(deletes)], sum(flags[len(deletes):])

    def _tighten_parent(self, parent: TPRNode, child: TPRNode) -> None:
        """Refresh ``parent``'s bound entry for ``child`` from its live entries."""
        slot = parent.index_of_ref(child.page_id)
        if slot is None:
            raise KeyError(f"node {parent.page_id} has no child {child.page_id}")
        t = self.current_time
        parent.set_bound_at(slot, child.bound_extent(t), t)
        self._write_node(parent)

    def range_query(self, query: RangeQuery, exact: bool = True) -> List[int]:
        """Object ids qualifying for ``query``.

        Args:
            query: the predictive range query.
            exact: when True (default) candidates from the tree traversal are
                refined with the exact containment predicate; when False the
                raw candidate set (every object whose bound intersects the
                query's bounding rectangle over the interval) is returned.
        """
        query_rect = query.as_moving_rect()
        start, end = query.start_time, query.end_time
        candidates = self._search(self.root_page_id, query_rect, start, end)
        if not exact:
            return [state[0] for state in candidates]
        results: List[int] = []
        for oid, x, y, vx, vy, tref in candidates:
            # Leaf bounds of moving points are degenerate: the stored state
            # is the reference position and velocity of the object.
            if query.matches_motion(x, y, vx, vy, tref):
                results.append(oid)
        return results

    def range_query_batch(
        self, queries: Sequence[RangeQuery], exact: bool = True
    ) -> List[List[int]]:
        """Answer a batch of queries in one shared traversal.

        The tree is walked once; at every node each entry is tested against
        all queries still active for that subtree, so a node needed by
        several queries of the batch is fetched a single time.  Per-query
        candidate order (and therefore the result list) is identical to
        running :meth:`range_query` per query.
        """
        queries = list(queries)
        if not queries:
            return []
        if len(queries) == 1:
            return [self.range_query(queries[0], exact=exact)]
        candidates = self._shared_search(queries)
        results: List[List[int]] = []
        for query, found in zip(queries, candidates):
            if not exact:
                results.append([state[0] for state in found])
                continue
            kept: List[int] = []
            for oid, x, y, vx, vy, tref in found:
                if query.matches_motion(x, y, vx, vy, tref):
                    kept.append(oid)
            results.append(kept)
        return results

    # ------------------------------------------------------------------
    # kNN queries (batched expanding-range filter over the shared traversal)
    # ------------------------------------------------------------------
    def knn_query(
        self,
        center: Point,
        k: int,
        query_time: float,
        issue_time: float = 0.0,
        space: Optional[Rect] = None,
        radius_state: Optional[AdaptiveRadius] = None,
    ) -> List[Tuple[int, float]]:
        """The ``k`` objects predicted to be nearest ``center`` at ``query_time``.

        Single-probe convenience over :meth:`knn_query_batch`.

        Args:
            center: query point.
            k: number of neighbours requested.
            query_time: the (future) timestamp the prediction refers to.
            issue_time: the current time the query is issued at.
            space: data space (seeds the initial filter radius and caps the
                expansion at the space diagonal).
            radius_state: optional cross-batch adaptive radius seed.

        Returns:
            Up to ``k`` ``(oid, distance)`` pairs sorted by ``(distance, oid)``.
        """
        probe = KNNQuery(center=center, k=k, query_time=query_time, issue_time=issue_time)
        return self.knn_query_batch([probe], space=space, radius_state=radius_state)[0]

    def knn_query_batch(
        self,
        queries: Sequence[KNNQuery],
        space: Optional[Rect] = None,
        radius_state: Optional[AdaptiveRadius] = None,
    ) -> List[List[Tuple[int, float]]]:
        """Answer a batch of kNN probes with shared expanding-range rounds.

        Each round issues the circular filter queries of every unfinished
        probe through one shared, buffer-hinted tree traversal
        (:meth:`_shared_search`); the candidate ranking runs vectorized in
        :func:`repro.objects.knn.expanding_knn_batch`.  Answers are
        identical to issuing the probes one at a time.

        Args:
            queries: the kNN probes.
            space: data space (initial radius seed and expansion cap).
            radius_state: optional cross-batch adaptive radius seed.

        Returns:
            Per probe, up to ``k`` ``(oid, distance)`` pairs sorted by
            ``(distance, oid)``.
        """
        return expanding_knn_batch(
            self.knn_candidates_batch,
            queries,
            space=space,
            population=len(self),
            radius_state=radius_state,
        )

    def knn_candidates_batch(
        self, queries: Sequence[RangeQuery]
    ) -> List[List[CandidateState]]:
        """Unrefined candidate motion states per query (one shared traversal).

        The kNN-filter twin of :meth:`range_query_batch`: same shared,
        buffer-hinted traversal, but candidates come back as flat motion
        states for the distance ranking instead of being refined with the
        exact range predicate.  The VP index manager also calls this to
        collect per-partition candidates without paying the exact filter in
        the rotated frame.
        """
        return self._shared_search(queries)

    def _shared_search(self, queries: Sequence[RangeQuery]) -> List[List[CandidateState]]:
        """Candidate motion states per query from ONE hinted shared traversal.

        The pre-order traversal visits each node at most once for the whole
        query group.  While it runs, the buffer manager is advised that a
        one-pass sweep is in progress (:meth:`~repro.storage.buffer_manager
        .BufferManager.advise_sequential` — completed subtree pages are the
        preferred eviction victims, since a shared traversal never revisits
        them) and the current root-to-node path is pinned as the sweep
        frontier, so the traversal's own leaf traffic cannot evict the
        interior pages it still needs.

        The hint stays on even for kNN filter rounds, which *do* revisit the
        tree: with the interior path pinned, the hint's MRU-clean victims
        are completed leaves, whereas plain LRU would evict the long-idle
        interior pages every next round's descent needs — measured 10-50%
        lower physical I/O across buffer sizes.  (The Bx kNN scan makes the
        opposite call — see ``BxTree.knn_candidates_batch`` — because a
        B+-tree range scan pins only its scan leaf and the re-scanned data
        leaves are themselves the hint's victims.)
        """
        infos = []
        for query in queries:
            query_rect = query.as_moving_rect()
            rect = query_rect.rect
            infos.append(
                (
                    rect.x_min,
                    rect.y_min,
                    rect.x_max,
                    rect.y_max,
                    query_rect.v_x_min,
                    query_rect.v_y_min,
                    query_rect.v_x_max,
                    query_rect.v_y_max,
                    query_rect.reference_time,
                    query.start_time,
                    query.end_time,
                )
            )
        out: List[List[CandidateState]] = [[] for _ in queries]
        # One (num_queries, 11) float matrix for the whole traversal: the
        # vectorized per-node intersect pass slices its active rows out of
        # it instead of re-packing tuples at every node.
        infos_arr = np.asarray(infos, dtype=np.float64).reshape(len(infos), 11)
        buffer = self.buffer
        buffer.advise_sequential(True)
        try:
            self._search_many(
                self.root_page_id, list(range(len(queries))), infos, infos_arr, out, []
            )
        finally:
            buffer.release_frontier()
            buffer.advise_sequential(False)
        return out

    def _search_many(
        self,
        page_id: int,
        active: List[int],
        infos: List[Tuple],
        infos_arr,
        out: List[List[CandidateState]],
        path: List[int],
    ) -> None:
        """Pre-order traversal testing each entry against all active queries.

        ``path`` carries the page ids of the *interior* nodes currently being
        descended; they are pinned as the sweep frontier so the traversal's
        own leaf traffic cannot evict them.  Leaves are deliberately left
        unpinned: a visited leaf is never needed again, which makes it the
        ideal eviction victim under :meth:`~repro.storage.buffer_manager
        .BufferManager.advise_sequential`.

        ``infos`` and ``infos_arr`` are the same query records twice — as
        tuples for the scalar per-entry loops and as one ``(Q, 11)`` float
        matrix for the vectorized per-node pass, which kicks in once the
        node's ``active x entries`` grid reaches
        :data:`VECTOR_MATCH_MIN_WORK`.
        """
        node = self._node(page_id)
        is_leaf = node.is_leaf
        if not is_leaf:
            path.append(page_id)
            self.buffer.pin_frontier(path)
        intersects = kernels.intersects_interval
        refs = node.refs
        if len(active) > 1 and len(active) * len(refs) >= VECTOR_MATCH_MIN_WORK:
            # Fused extent + intersect pass over the whole (queries x
            # entries) grid of the node; bit-identical to the scalar
            # loops below, which stay in place for small grids (and for
            # single-query subtrees) where the numpy dispatch overhead
            # would dominate.
            columns = node.columns
            x0s, y0s, vx0s, vy0s, trefs = (
                columns[0],
                columns[1],
                columns[4],
                columns[5],
                columns[8],
            )
            matrix = kernels.soa_intersect_many(*columns, infos_arr[active])
            hit_counts = matrix.sum(axis=0)
            for i in np.nonzero(hit_counts)[0].tolist():
                if hit_counts[i] == len(active):
                    matching = active
                else:
                    matching = [
                        active[j] for j in np.nonzero(matrix[:, i])[0].tolist()
                    ]
                if is_leaf:
                    state = (refs[i], x0s[i], y0s[i], vx0s[i], vy0s[i], trefs[i])
                    for qi in matching:
                        out[qi].append(state)
                else:
                    self._search_many(refs[i], matching, infos, infos_arr, out, path)
        elif len(active) == 1:
            # Once a subtree concerns a single query — the common case as
            # soon as the batch's probes separate spatially — skip the
            # per-entry matching-list bookkeeping.
            (qi,) = active
            info = infos[qi]
            bucket = out[qi]
            for i, (bx0, by0, bx1, by1, bvx0, bvy0, bvx1, bvy1, bref) in enumerate(
                zip(*node.columns)
            ):
                if not intersects(
                    bx0, by0, bx1, by1, bvx0, bvy0, bvx1, bvy1, bref, *info
                ):
                    continue
                if is_leaf:
                    bucket.append((refs[i], bx0, by0, bvx0, bvy0, bref))
                else:
                    self._search_many(refs[i], active, infos, infos_arr, out, path)
        else:
            for i, (bx0, by0, bx1, by1, bvx0, bvy0, bvx1, bvy1, bref) in enumerate(
                zip(*node.columns)
            ):
                matching = [
                    qi
                    for qi in active
                    if intersects(
                        bx0, by0, bx1, by1, bvx0, bvy0, bvx1, bvy1, bref, *infos[qi]
                    )
                ]
                if not matching:
                    continue
                if is_leaf:
                    state = (refs[i], bx0, by0, bvx0, bvy0, bref)
                    for qi in matching:
                        out[qi].append(state)
                else:
                    self._search_many(refs[i], matching, infos, infos_arr, out, path)
        if not is_leaf:
            path.pop()

    # ------------------------------------------------------------------
    # Introspection (used by the analysis module and by tests)
    # ------------------------------------------------------------------
    def iter_leaf_bounds(self) -> Iterator[MovingRect]:
        """Bounds of every leaf node (used for Figure 7's expansion plots)."""
        for node in self._iter_nodes():
            if node.is_leaf and node.num_entries:
                yield node.bound(self.current_time)

    def iter_all_bounds(self) -> Iterator[MovingRect]:
        """Bounds of every node in the tree (used by the cost model)."""
        for node in self._iter_nodes():
            if node.num_entries:
                yield node.bound(self.current_time)

    def iter_objects(self) -> Iterator[Tuple[int, MovingRect]]:
        """``(oid, bound)`` of every stored object.

        Reads the leaf columns through the columnar record iterator
        (:meth:`TPRNode.iter_records`) — no per-entry :class:`TPREntry`
        exchange records are materialized, which is what keeps a full-tree
        dump linear in the column storage instead of allocating two
        objects per stored entry.
        """
        for node in self._iter_nodes():
            if node.is_leaf:
                for ref, x0, y0, x1, y1, vx0, vy0, vx1, vy1, tref in node.iter_records():
                    yield ref, MovingRect(
                        rect=Rect(x0, y0, x1, y1),
                        v_x_min=vx0,
                        v_y_min=vy0,
                        v_x_max=vx1,
                        v_y_max=vy1,
                        reference_time=tref,
                    )

    def _iter_nodes(self) -> Iterator[TPRNode]:
        stack = [self.root_page_id]
        while stack:
            node = self._node(stack.pop())
            yield node
            if not node.is_leaf:
                stack.extend(node.refs)

    # ------------------------------------------------------------------
    # Structural metrics (overridden by the TPR*-tree)
    # ------------------------------------------------------------------
    # The hot-path hooks take flat kernel extents (8-tuples anchored at the
    # current time) so choose-subtree, split scoring and forced reinsertion
    # never build intermediate MovingRect/Rect objects; the MovingRect
    # wrappers below them remain the convenient entry points for external
    # callers and one-off evaluations.

    def _extent_cost(self, ext: kernels.Extent) -> float:
        """Goodness (lower is better) of a node bound given as a kernel extent.

        The base TPR-tree uses the area of the bound at the current time,
        i.e. the classic R*-tree objective evaluated on the projected MBR.
        """
        return kernels.extent_area(ext)

    def _split_cost_extents(self, ext_a: kernels.Extent, ext_b: kernels.Extent) -> float:
        """Goodness of a candidate split into two groups with those bounds."""
        return (
            self._extent_cost(ext_a)
            + self._extent_cost(ext_b)
            + kernels.intersection_area(ext_a, ext_b)
        )

    def _bound_cost(self, bound: MovingRect) -> float:
        """:meth:`_extent_cost` of a :class:`MovingRect` bound."""
        return self._extent_cost(kernels.extent_of(bound, self.current_time))

    def _enlargement_cost(self, bound: MovingRect, extra: MovingRect) -> float:
        """Increase of :meth:`_bound_cost` if ``extra`` joins ``bound``."""
        t = self.current_time
        ext = kernels.extent_of(bound, t)
        combined = kernels.union_extent(ext, kernels.extent_of(extra, t))
        return self._extent_cost(combined) - self._extent_cost(ext)

    # ------------------------------------------------------------------
    # Insertion machinery
    # ------------------------------------------------------------------
    def _insert_entry(self, entry: TPREntry, level: int) -> None:
        path = self._choose_path(entry, level)
        node = path[-1]
        node.append_entry(entry)
        if not node.is_leaf:
            child = self._node(entry.child_page_id)
            child.parent_page_id = node.page_id
            self._write_node(child)
        self._write_node(node)
        self._handle_overflow_and_adjust(path, base_level=level)

    def _choose_path(self, entry: TPREntry, level: int) -> List[TPRNode]:
        """Descend from the root to the node at ``level`` that should host ``entry``.

        ``level`` 0 is the leaf level; reinsertion of orphaned subtrees passes
        the height of the subtree so it is re-attached at the right depth.
        """
        path = [self._node(self.root_page_id)]
        depth_remaining = self._height - 1 - level
        ext_new = kernels.extent_of(entry.bound, self.current_time)
        while depth_remaining > 0:
            node = path[-1]
            best_slot = self._pick_child(node, ext_new)
            child = self._node(node.refs[best_slot])
            child.parent_page_id = node.page_id
            path.append(child)
            depth_remaining -= 1
        return path

    def _pick_child(self, node: TPRNode, ext_new: kernels.Extent) -> int:
        """Slot of the child whose bound degrades least by absorbing ``ext_new``.

        The scan runs entirely on the node's SoA columns: every candidate
        extent comes from one fused column pass, its cost and
        union-with-the-new-entry cost are evaluated with the float hooks,
        and ties are broken by the smaller existing cost.
        """
        best_slot = -1
        best_key = None
        for slot, ext in enumerate(
            kernels.soa_extents(*node.columns, time=self.current_time)
        ):
            cost = self._extent_cost(ext)
            enlargement = self._extent_cost(kernels.union_extent(ext, ext_new)) - cost
            key = (enlargement, cost)
            if best_key is None or key < best_key:
                best_key = key
                best_slot = slot
        assert best_slot >= 0
        return best_slot

    def _handle_overflow_and_adjust(self, path: List[TPRNode], base_level: int = 0) -> None:
        """Split overfull nodes bottom-up and re-tighten bounds along the path.

        ``base_level`` is the tree level of ``path[-1]`` (0 for ordinary object
        insertions; higher when an orphaned subtree is being re-attached).
        """
        index = len(path) - 1
        while index >= 0:
            node = path[index]
            if node.is_overfull(self.max_entries):
                self._split_and_propagate(node, path, index, base_level)
                # _split_and_propagate finishes the upward adjustment itself.
                return
            if index > 0:
                self._tighten_parent(path[index - 1], node)
            index -= 1

    def _path_level(self, path: List[TPRNode], index: int, base_level: int) -> int:
        """Tree level of ``path[index]`` given that ``path[-1]`` sits at ``base_level``."""
        return base_level + (len(path) - 1 - index)

    def _split_and_propagate(
        self, node: TPRNode, path: List[TPRNode], index: int, base_level: int = 0
    ) -> None:
        sibling = self._split(node)
        if index == 0:
            self._grow_root(node, sibling)
            return
        t = self.current_time
        parent = path[index - 1]
        slot = parent.index_of_ref(node.page_id)
        parent.set_bound_at(slot, node.bound_extent(t), t)
        parent.append_bound(sibling.bound_extent(t), t, sibling.page_id)
        sibling.parent_page_id = parent.page_id
        self._write_node(parent)
        self._write_node(sibling)
        self._handle_overflow_and_adjust(
            path[:index], base_level=self._path_level(path, index - 1, base_level)
        )

    def _grow_root(self, old_root: TPRNode, sibling: TPRNode) -> None:
        t = self.current_time
        new_root = self._new_node(is_leaf=False)
        new_root.append_bound(old_root.bound_extent(t), t, old_root.page_id)
        new_root.append_bound(sibling.bound_extent(t), t, sibling.page_id)
        old_root.parent_page_id = new_root.page_id
        sibling.parent_page_id = new_root.page_id
        self.root_page_id = new_root.page_id
        self._height += 1
        self._write_node(new_root)
        self._write_node(old_root)
        self._write_node(sibling)

    def _split(self, node: TPRNode) -> TPRNode:
        """Split an overfull node; returns the new sibling.

        Entries are sorted along each axis by the center of their projected
        rectangle and every legal distribution is scored with
        :meth:`_split_cost_extents`; the cheapest distribution wins.  Group
        bounds come from prefix/suffix unions of the sorted kernel extents
        (read straight off the node's SoA columns), so the whole scoring
        pass is O(n log n) with no intermediate ``MovingRect`` allocations.
        """
        t = self.current_time
        n = node.num_entries
        extents = kernels.soa_extents(*node.columns, time=t)
        centers = [((e[0] + e[2]) * 0.5, (e[1] + e[3]) * 0.5) for e in extents]
        best: Optional[Tuple[List[int], int]] = None
        best_cost = None
        for axis in (0, 1):
            order = sorted(range(n), key=lambda i: centers[i][axis])
            ordered_exts = [extents[i] for i in order]
            prefix = kernels.cumulative_extents(ordered_exts)
            suffix = kernels.cumulative_extents(ordered_exts[::-1])
            for split_at in range(self.min_entries, n - self.min_entries + 1):
                cost = self._split_cost_extents(
                    prefix[split_at - 1], suffix[n - split_at - 1]
                )
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best = (order, split_at)
        assert best is not None
        order, split_at = best
        records = node.snapshot()
        group_a = [records[i] for i in order[:split_at]]
        group_b = [records[i] for i in order[split_at:]]
        sibling = self._new_node(is_leaf=node.is_leaf)
        node.load(group_a)
        sibling.load(group_b)
        if not node.is_leaf:
            for child_page_id in sibling.refs:
                child = self._node(child_page_id)
                child.parent_page_id = sibling.page_id
                self._write_node(child)
        self._write_node(node)
        self._write_node(sibling)
        return sibling

    # ------------------------------------------------------------------
    # Deletion machinery
    # ------------------------------------------------------------------
    #: Slack (in space units) used when testing whether a subtree bound covers
    #: the deleted object's current position.  The object often *defines* the
    #: bound's edge, and projecting the edge and the object to the current
    #: time accumulates rounding error in different orders; without the slack
    #: a deletion can miss its leaf and leave a stale duplicate behind.
    DELETE_CONTAINMENT_SLACK = 1e-3

    def _find_leaf_path(
        self, page_id: int, oid: int, position: Point, prefix: List[TPRNode]
    ) -> Optional[List[TPRNode]]:
        """Root-to-leaf path of nodes leading to the leaf holding ``oid``."""
        node = self._node(page_id)
        path = prefix + [node]
        if node.is_leaf:
            if node.index_of_ref(oid) is not None:
                return path
            return None
        slack = self.DELETE_CONTAINMENT_SLACK
        t = self.current_time
        px, py = position.x, position.y
        refs = node.refs
        for i, (x0, y0, x1, y1, vx0, vy0, vx1, vy1, tref) in enumerate(
            zip(*node.columns)
        ):
            elapsed = t - tref
            if elapsed > 0.0:
                x0 += vx0 * elapsed
                y0 += vy0 * elapsed
                x1 += vx1 * elapsed
                y1 += vy1 * elapsed
            if x0 - slack <= px <= x1 + slack and y0 - slack <= py <= y1 + slack:
                found = self._find_leaf_path(refs[i], oid, position, path)
                if found is not None:
                    return found
        return None

    def _condense(self, path: List[TPRNode]) -> None:
        """Handle underflow after a deletion (R-tree condense with reinsertion).

        ``path`` is the root-to-leaf path of the deletion; underfull nodes are
        removed and their surviving entries re-inserted at their original
        level.
        """
        orphans: List[Tuple[TPREntry, int]] = []  # (entry, level)
        level = 0
        for index in range(len(path) - 1, 0, -1):
            current = path[index]
            parent = path[index - 1]
            if current.is_underfull(self.min_entries):
                parent.remove_entry_for_child(current.page_id)
                for slot in range(current.num_entries):
                    orphans.append((current.entry_at(slot), level))
                self._write_node(parent)
                self.buffer.free_page(current.page_id)
            elif current.num_entries:
                self._tighten_parent(parent, current)
            else:
                self._write_node(parent)
            level += 1
        root = path[0]
        if not root.is_leaf and root.num_entries == 1:
            child_id = root.refs[0]
            child = self._node(child_id)
            child.parent_page_id = None
            self.root_page_id = child_id
            self._height -= 1
            self._write_node(child)
            self.buffer.free_page(root.page_id)
        for entry, entry_level in orphans:
            self._insert_entry(entry, entry_level)

    # ------------------------------------------------------------------
    # Search machinery
    # ------------------------------------------------------------------
    def _search(
        self, page_id: int, query_rect: MovingRect, start: float, end: float
    ) -> List[CandidateState]:
        node = self._node(page_id)
        results: List[CandidateState] = []
        qr = query_rect.rect
        qx0, qy0, qx1, qy1 = qr.x_min, qr.y_min, qr.x_max, qr.y_max
        qvx0, qvy0 = query_rect.v_x_min, query_rect.v_y_min
        qvx1, qvy1 = query_rect.v_x_max, query_rect.v_y_max
        qref = query_rect.reference_time
        intersects = kernels.intersects_interval
        is_leaf = node.is_leaf
        refs = node.refs
        for i, (bx0, by0, bx1, by1, bvx0, bvy0, bvx1, bvy1, bref) in enumerate(
            zip(*node.columns)
        ):
            if not intersects(
                bx0,
                by0,
                bx1,
                by1,
                bvx0,
                bvy0,
                bvx1,
                bvy1,
                bref,
                qx0,
                qy0,
                qx1,
                qy1,
                qvx0,
                qvy0,
                qvx1,
                qvy1,
                qref,
                start,
                end,
            ):
                continue
            if is_leaf:
                results.append((refs[i], bx0, by0, bvx0, bvy0, bref))
            else:
                results.extend(self._search(refs[i], query_rect, start, end))
        return results
