"""The TPR-tree: a time-parameterized R-tree for moving points.

The tree stores moving objects in a height-balanced R-tree whose node bounds
are :class:`~repro.geometry.MovingRect` values (an MBR anchored at a
reference time plus a velocity bounding rectangle).  All structural choices
(choose-subtree, node split) are driven by a *goodness metric* supplied by
overridable hooks; the base class uses classic R*-tree heuristics evaluated
on the bounds projected to the current time, and :class:`repro.tprtree.TPRStarTree`
overrides the hooks with the sweeping-region cost model of Tao et al.

Every node lives on one simulated disk page and every node visit goes
through the buffer manager, so the physical-I/O counters reflect exactly
what the paper measures.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.geometry.moving_rect import MovingRect
from repro.geometry.point import Point
from repro.objects.moving_object import MovingObject
from repro.objects.queries import RangeQuery
from repro.storage.buffer_manager import BufferManager
from repro.tprtree.node import DEFAULT_MAX_ENTRIES, TPREntry, TPRNode

#: Default time horizon (in timestamps) over which bounds are optimized.
#: The paper's workloads use a maximum update interval of 120 ts, and the
#: TPR literature recommends a horizon on the order of the update interval.
DEFAULT_HORIZON = 60.0


class TPRTree:
    """A TPR-tree over simulated paged storage.

    Args:
        buffer: buffer manager to use; a private one is created if omitted.
        max_entries: maximum entries per node (fan-out); defaults to the
            fan-out implied by a 4 KB page.
        min_fill: minimum fill factor (fraction of ``max_entries``).
        horizon: time horizon over which structural decisions integrate
            the bound expansion.
    """

    name = "TPR"

    def __init__(
        self,
        buffer: Optional[BufferManager] = None,
        max_entries: Optional[int] = None,
        min_fill: float = 0.4,
        horizon: float = DEFAULT_HORIZON,
        page_size: Optional[int] = None,
    ) -> None:
        if max_entries is None:
            if page_size is not None:
                from repro.storage.page import entries_per_page
                from repro.tprtree.node import TPR_ENTRY_BYTES

                max_entries = entries_per_page(TPR_ENTRY_BYTES, page_size_bytes=page_size)
            else:
                max_entries = DEFAULT_MAX_ENTRIES
        if max_entries < 4:
            raise ValueError("max_entries must be at least 4")
        if not 0.0 < min_fill <= 0.5:
            raise ValueError("min_fill must be in (0, 0.5]")
        self.buffer = buffer if buffer is not None else BufferManager()
        self.max_entries = max_entries
        self.min_entries = max(2, int(max_entries * min_fill))
        self.horizon = horizon
        self.current_time = 0.0
        self.size = 0
        root = TPRNode(page_id=-1, is_leaf=True)
        page = self.buffer.new_page(root)
        root.page_id = page.page_id
        self.root_page_id = page.page_id
        self._height = 1

    # ------------------------------------------------------------------
    # Node access helpers
    # ------------------------------------------------------------------
    def _node(self, page_id: int) -> TPRNode:
        """Fetch a node through the buffer (counts as a node access)."""
        return self.buffer.fetch(page_id).payload

    def _write_node(self, node: TPRNode) -> None:
        page = self.buffer.fetch(node.page_id)
        page.payload = node
        self.buffer.mark_dirty(page)

    def _new_node(self, is_leaf: bool) -> TPRNode:
        node = TPRNode(page_id=-1, is_leaf=is_leaf)
        page = self.buffer.new_page(node)
        node.page_id = page.page_id
        return node

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        return self._height

    def __len__(self) -> int:
        return self.size

    def insert(self, obj: MovingObject) -> None:
        """Insert a moving object."""
        self.current_time = max(self.current_time, obj.reference_time)
        entry = TPREntry(bound=obj.as_moving_rect(), oid=obj.oid)
        self._insert_entry(entry, level=0)
        self.size += 1

    def delete(self, obj: MovingObject) -> bool:
        """Delete the object snapshot ``obj``.

        The snapshot must be the one previously inserted (same reference
        position, velocity and time); the search descends only into subtrees
        whose bound covers the object's current position, exactly as a
        disk-based TPR-tree deletion would.

        Returns:
            True when the object was found and removed.
        """
        self.current_time = max(self.current_time, obj.reference_time)
        target = obj.position_at(self.current_time)
        path = self._find_leaf_path(self.root_page_id, obj.oid, target, [])
        if path is None:
            return False
        leaf = path[-1]
        entry = leaf.find_leaf_entry(obj.oid)
        if entry is None:
            return False
        leaf.entries.remove(entry)
        self._write_node(leaf)
        self.size -= 1
        self._condense(path)
        return True

    def update(self, old: MovingObject, new: MovingObject) -> bool:
        """Update an object: a deletion of ``old`` followed by an insertion of ``new``."""
        removed = self.delete(old)
        self.insert(new)
        return removed

    def range_query(self, query: RangeQuery, exact: bool = True) -> List[int]:
        """Object ids qualifying for ``query``.

        Args:
            query: the predictive range query.
            exact: when True (default) candidates from the tree traversal are
                refined with the exact containment predicate; when False the
                raw candidate set (every object whose bound intersects the
                query's bounding rectangle over the interval) is returned.
        """
        query_rect = query.as_moving_rect()
        start, end = query.start_time, query.end_time
        results: List[int] = []
        candidates = self._search(self.root_page_id, query_rect, start, end)
        if not exact:
            return [oid for oid, _ in candidates]
        for oid, bound in candidates:
            obj = MovingObject(
                oid=oid,
                position=bound.rect.center,
                velocity=_entry_velocity(bound),
                reference_time=bound.reference_time,
            )
            if query.matches(obj):
                results.append(oid)
        return results

    # ------------------------------------------------------------------
    # Introspection (used by the analysis module and by tests)
    # ------------------------------------------------------------------
    def iter_leaf_bounds(self) -> Iterator[MovingRect]:
        """Bounds of every leaf node (used for Figure 7's expansion plots)."""
        for node in self._iter_nodes():
            if node.is_leaf and node.entries:
                yield node.bound(self.current_time)

    def iter_all_bounds(self) -> Iterator[MovingRect]:
        """Bounds of every node in the tree (used by the cost model)."""
        for node in self._iter_nodes():
            if node.entries:
                yield node.bound(self.current_time)

    def iter_objects(self) -> Iterator[Tuple[int, MovingRect]]:
        """(oid, bound) of every stored object."""
        for node in self._iter_nodes():
            if node.is_leaf:
                for entry in node.entries:
                    yield entry.oid, entry.bound

    def _iter_nodes(self) -> Iterator[TPRNode]:
        stack = [self.root_page_id]
        while stack:
            node = self._node(stack.pop())
            yield node
            if not node.is_leaf:
                stack.extend(e.child_page_id for e in node.entries)

    # ------------------------------------------------------------------
    # Structural metrics (overridden by the TPR*-tree)
    # ------------------------------------------------------------------
    def _bound_cost(self, bound: MovingRect) -> float:
        """Goodness (lower is better) of a node bound.

        The base TPR-tree uses the area of the bound at the current time,
        i.e. the classic R*-tree objective evaluated on the projected MBR.
        """
        return bound.rect_at(self.current_time).area

    def _enlargement_cost(self, bound: MovingRect, extra: MovingRect) -> float:
        """Increase of :meth:`_bound_cost` if ``extra`` joins ``bound``."""
        combined = MovingRect.bounding([bound, extra], self.current_time)
        return self._bound_cost(combined) - self._bound_cost(bound)

    # ------------------------------------------------------------------
    # Insertion machinery
    # ------------------------------------------------------------------
    def _insert_entry(self, entry: TPREntry, level: int) -> None:
        path = self._choose_path(entry, level)
        node = path[-1]
        node.entries.append(entry)
        if not node.is_leaf:
            child = self._node(entry.child_page_id)
            child.parent_page_id = node.page_id
            self._write_node(child)
        self._write_node(node)
        self._handle_overflow_and_adjust(path, base_level=level)

    def _choose_path(self, entry: TPREntry, level: int) -> List[TPRNode]:
        """Descend from the root to the node at ``level`` that should host ``entry``.

        ``level`` 0 is the leaf level; reinsertion of orphaned subtrees passes
        the height of the subtree so it is re-attached at the right depth.
        """
        path = [self._node(self.root_page_id)]
        depth_remaining = self._height - 1 - level
        while depth_remaining > 0:
            node = path[-1]
            best_entry = self._pick_child(node, entry.bound)
            child = self._node(best_entry.child_page_id)
            child.parent_page_id = node.page_id
            path.append(child)
            depth_remaining -= 1
        return path

    def _pick_child(self, node: TPRNode, bound: MovingRect) -> TPREntry:
        """Child of ``node`` whose bound degrades least by absorbing ``bound``."""
        best = None
        best_key = None
        for candidate in node.entries:
            enlargement = self._enlargement_cost(candidate.bound, bound)
            key = (enlargement, self._bound_cost(candidate.bound))
            if best_key is None or key < best_key:
                best_key = key
                best = candidate
        assert best is not None
        return best

    def _handle_overflow_and_adjust(self, path: List[TPRNode], base_level: int = 0) -> None:
        """Split overfull nodes bottom-up and re-tighten bounds along the path.

        ``base_level`` is the tree level of ``path[-1]`` (0 for ordinary object
        insertions; higher when an orphaned subtree is being re-attached).
        """
        index = len(path) - 1
        while index >= 0:
            node = path[index]
            if node.is_overfull(self.max_entries):
                self._split_and_propagate(node, path, index, base_level)
                # _split_and_propagate finishes the upward adjustment itself.
                return
            if index > 0:
                parent = path[index - 1]
                parent_entry = parent.find_entry_for_child(node.page_id)
                parent_entry.bound = node.bound(self.current_time)
                self._write_node(parent)
            index -= 1

    def _path_level(self, path: List[TPRNode], index: int, base_level: int) -> int:
        """Tree level of ``path[index]`` given that ``path[-1]`` sits at ``base_level``."""
        return base_level + (len(path) - 1 - index)

    def _split_and_propagate(
        self, node: TPRNode, path: List[TPRNode], index: int, base_level: int = 0
    ) -> None:
        sibling = self._split(node)
        if index == 0:
            self._grow_root(node, sibling)
            return
        parent = path[index - 1]
        parent_entry = parent.find_entry_for_child(node.page_id)
        parent_entry.bound = node.bound(self.current_time)
        parent.entries.append(
            TPREntry(bound=sibling.bound(self.current_time), child_page_id=sibling.page_id)
        )
        sibling.parent_page_id = parent.page_id
        self._write_node(parent)
        self._write_node(sibling)
        self._handle_overflow_and_adjust(
            path[:index], base_level=self._path_level(path, index - 1, base_level)
        )

    def _grow_root(self, old_root: TPRNode, sibling: TPRNode) -> None:
        new_root = self._new_node(is_leaf=False)
        new_root.entries = [
            TPREntry(bound=old_root.bound(self.current_time), child_page_id=old_root.page_id),
            TPREntry(bound=sibling.bound(self.current_time), child_page_id=sibling.page_id),
        ]
        old_root.parent_page_id = new_root.page_id
        sibling.parent_page_id = new_root.page_id
        self.root_page_id = new_root.page_id
        self._height += 1
        self._write_node(new_root)
        self._write_node(old_root)
        self._write_node(sibling)

    def _split(self, node: TPRNode) -> TPRNode:
        """Split an overfull node; returns the new sibling.

        Entries are sorted along each axis by the center of their projected
        rectangle, every legal distribution is scored with
        :meth:`_split_cost`, and the cheapest distribution wins.
        """
        entries = node.entries
        best: Optional[Tuple[List[TPREntry], List[TPREntry]]] = None
        best_cost = None
        for axis in (0, 1):
            ordered = sorted(
                entries, key=lambda e: _projected_center(e.bound, self.current_time)[axis]
            )
            for split_at in range(self.min_entries, len(ordered) - self.min_entries + 1):
                group_a = ordered[:split_at]
                group_b = ordered[split_at:]
                cost = self._split_cost(group_a, group_b)
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best = (list(group_a), list(group_b))
        assert best is not None
        group_a, group_b = best
        sibling = self._new_node(is_leaf=node.is_leaf)
        node.entries = group_a
        sibling.entries = group_b
        if not node.is_leaf:
            for entry in sibling.entries:
                child = self._node(entry.child_page_id)
                child.parent_page_id = sibling.page_id
                self._write_node(child)
        self._write_node(node)
        self._write_node(sibling)
        return sibling

    def _split_cost(self, group_a: Sequence[TPREntry], group_b: Sequence[TPREntry]) -> float:
        bound_a = MovingRect.bounding((e.bound for e in group_a), self.current_time)
        bound_b = MovingRect.bounding((e.bound for e in group_b), self.current_time)
        overlap = bound_a.rect_at(self.current_time).intersection_area(
            bound_b.rect_at(self.current_time)
        )
        return self._bound_cost(bound_a) + self._bound_cost(bound_b) + overlap

    # ------------------------------------------------------------------
    # Deletion machinery
    # ------------------------------------------------------------------
    #: Slack (in space units) used when testing whether a subtree bound covers
    #: the deleted object's current position.  The object often *defines* the
    #: bound's edge, and projecting the edge and the object to the current
    #: time accumulates rounding error in different orders; without the slack
    #: a deletion can miss its leaf and leave a stale duplicate behind.
    DELETE_CONTAINMENT_SLACK = 1e-3

    def _find_leaf_path(
        self, page_id: int, oid: int, position: Point, prefix: List[TPRNode]
    ) -> Optional[List[TPRNode]]:
        """Root-to-leaf path of nodes leading to the leaf holding ``oid``."""
        node = self._node(page_id)
        path = prefix + [node]
        if node.is_leaf:
            if node.find_leaf_entry(oid) is not None:
                return path
            return None
        slack = self.DELETE_CONTAINMENT_SLACK
        for entry in node.entries:
            rect = entry.bound.rect_at(self.current_time).enlarged(slack, slack)
            if rect.contains_point(position):
                found = self._find_leaf_path(entry.child_page_id, oid, position, path)
                if found is not None:
                    return found
        return None

    def _condense(self, path: List[TPRNode]) -> None:
        """Handle underflow after a deletion (R-tree condense with reinsertion).

        ``path`` is the root-to-leaf path of the deletion; underfull nodes are
        removed and their surviving entries re-inserted at their original
        level.
        """
        orphans: List[Tuple[TPREntry, int]] = []  # (entry, level)
        level = 0
        for index in range(len(path) - 1, 0, -1):
            current = path[index]
            parent = path[index - 1]
            if current.is_underfull(self.min_entries):
                parent.remove_entry_for_child(current.page_id)
                for entry in current.entries:
                    orphans.append((entry, level))
                self._write_node(parent)
                self.buffer.free_page(current.page_id)
            else:
                parent_entry = parent.find_entry_for_child(current.page_id)
                if current.entries:
                    parent_entry.bound = current.bound(self.current_time)
                self._write_node(parent)
            level += 1
        root = path[0]
        if not root.is_leaf and len(root.entries) == 1:
            child_id = root.entries[0].child_page_id
            child = self._node(child_id)
            child.parent_page_id = None
            self.root_page_id = child_id
            self._height -= 1
            self._write_node(child)
            self.buffer.free_page(root.page_id)
        for entry, entry_level in orphans:
            self._insert_entry(entry, entry_level)

    # ------------------------------------------------------------------
    # Search machinery
    # ------------------------------------------------------------------
    def _search(
        self, page_id: int, query_rect: MovingRect, start: float, end: float
    ) -> List[Tuple[int, MovingRect]]:
        node = self._node(page_id)
        results: List[Tuple[int, MovingRect]] = []
        for entry in node.entries:
            if not entry.bound.intersects_during(query_rect, start, end):
                continue
            if node.is_leaf:
                results.append((entry.oid, entry.bound))
            else:
                results.extend(self._search(entry.child_page_id, query_rect, start, end))
        return results


def _projected_center(bound: MovingRect, time: float) -> Tuple[float, float]:
    center = bound.rect_at(time).center
    return (center.x, center.y)


def _entry_velocity(bound: MovingRect):
    """Velocity of a degenerate (point) bound."""
    from repro.geometry.vector import Vector

    return Vector(bound.v_x_min, bound.v_y_min)
