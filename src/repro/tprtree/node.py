"""Nodes and entries of the TPR-tree family.

A node lives on one simulated disk page.  Leaf entries reference moving
objects (a degenerate :class:`~repro.geometry.MovingRect` plus the object
id); interior entries reference child pages and carry the time-parameterized
bound of the whole subtree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.geometry.moving_rect import MovingRect
from repro.storage.page import entries_per_page

#: Size of one TPR entry record: 4 MBR floats + 4 VBR floats + reference time
#: + child pointer / object id, at 8 bytes each.
TPR_ENTRY_BYTES = 80

#: Default maximum node fan-out derived from the 4 KB page size.
DEFAULT_MAX_ENTRIES = entries_per_page(TPR_ENTRY_BYTES)


@dataclass
class TPREntry:
    """One entry of a TPR-tree node.

    Attributes:
        bound: time-parameterized bound of the referenced object or subtree.
        child_page_id: page id of the child node (interior entries only).
        oid: object id (leaf entries only).
    """

    bound: MovingRect
    child_page_id: Optional[int] = None
    oid: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.child_page_id is None) == (self.oid is None):
            raise ValueError("an entry references either a child page or an object")

    @property
    def is_leaf_entry(self) -> bool:
        return self.oid is not None


@dataclass
class TPRNode:
    """A TPR-tree node stored in one page payload."""

    page_id: int
    is_leaf: bool
    entries: List[TPREntry] = field(default_factory=list)
    parent_page_id: Optional[int] = None

    def bound(self, reference_time: float) -> MovingRect:
        """Tight time-parameterized bound over the node's entries."""
        if not self.entries:
            raise ValueError("cannot bound an empty node")
        return MovingRect.bounding((e.bound for e in self.entries), reference_time)

    @property
    def num_entries(self) -> int:
        return len(self.entries)

    def is_overfull(self, max_entries: int) -> bool:
        return len(self.entries) > max_entries

    def is_underfull(self, min_entries: int) -> bool:
        return len(self.entries) < min_entries

    def find_entry_for_child(self, child_page_id: int) -> TPREntry:
        """Entry pointing at ``child_page_id``.

        Raises:
            KeyError: if no entry references that child.
        """
        for entry in self.entries:
            if entry.child_page_id == child_page_id:
                return entry
        raise KeyError(f"node {self.page_id} has no child {child_page_id}")

    def remove_entry_for_child(self, child_page_id: int) -> TPREntry:
        entry = self.find_entry_for_child(child_page_id)
        self.entries.remove(entry)
        return entry

    def find_leaf_entry(self, oid: int) -> Optional[TPREntry]:
        """Leaf entry for object ``oid`` or ``None``."""
        for entry in self.entries:
            if entry.oid == oid:
                return entry
        return None
