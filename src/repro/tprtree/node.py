"""Nodes and entries of the TPR-tree family (array-backed SoA layout).

A node lives on one simulated disk page.  Leaf entries reference moving
objects (a degenerate :class:`~repro.geometry.MovingRect` plus the object
id); interior entries reference child pages and carry the time-parameterized
bound of the whole subtree.

**Storage layout.**  Mirroring the B+-tree's ``array('q')`` keys, a node
does not store one Python object per entry.  The nine float components of
every entry bound (MBR, VBR, reference time) live in nine parallel
``array('d')`` columns and the referenced ids (object ids on leaves, child
page ids on interior nodes) in one ``array('q')`` column — 80 bytes per
entry, exactly the :data:`TPR_ENTRY_BYTES` record the page-capacity model
assumes.  The geometry kernels read the columns directly
(:func:`repro.geometry.kernels.soa_extents` and friends), so the index hot
paths never rebuild per-entry ``MovingRect``/``Rect`` objects.

:class:`TPREntry` remains the *exchange record*: insertions hand entries to
a node, and cold paths (tests, introspection, orphan reinsertion) read them
back via :attr:`TPRNode.entries`, which materializes entry objects from the
columns on demand.  Whole-node dumps that need no exchange records (e.g.
``iter_objects``) use :meth:`TPRNode.iter_records`, which yields flat
per-entry tuples straight off the columns.  All structural mutation goes through the node methods
(``append_entry`` / ``remove_at`` / ``set_bound_at`` / ...), which keep the
columns consistent.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.geometry import kernels
from repro.geometry.moving_rect import MovingRect
from repro.geometry.rect import Rect
from repro.storage.page import entries_per_page

#: Size of one TPR entry record: 4 MBR floats + 4 VBR floats + reference time
#: + child pointer / object id, at 8 bytes each.
TPR_ENTRY_BYTES = 80

#: Default maximum node fan-out derived from the 4 KB page size.
DEFAULT_MAX_ENTRIES = entries_per_page(TPR_ENTRY_BYTES)


@dataclass
class TPREntry:
    """One entry of a TPR-tree node (the object-level exchange record).

    Attributes:
        bound: time-parameterized bound of the referenced object or subtree.
        child_page_id: page id of the child node (interior entries only).
        oid: object id (leaf entries only).
    """

    bound: MovingRect
    child_page_id: Optional[int] = None
    oid: Optional[int] = None

    def __post_init__(self) -> None:
        if (self.child_page_id is None) == (self.oid is None):
            raise ValueError("an entry references either a child page or an object")

    @property
    def is_leaf_entry(self) -> bool:
        """Whether the entry references an object (as opposed to a child page)."""
        return self.oid is not None


class _EntriesView(Sequence):
    """Live sequence view over a node's column-stored entries.

    Iteration and indexing materialize :class:`TPREntry` records on demand;
    ``append``/``remove`` write through to the owning node's columns, so the
    historical ``node.entries.append(entry)`` idiom keeps working.
    """

    __slots__ = ("_node",)

    def __init__(self, node: "TPRNode") -> None:
        self._node = node

    def __len__(self) -> int:
        return self._node.num_entries

    def __getitem__(self, index):
        node = self._node
        if isinstance(index, slice):
            return [node.entry_at(i) for i in range(node.num_entries)[index]]
        return node.entry_at(range(node.num_entries)[index])

    def __iter__(self) -> Iterator[TPREntry]:
        node = self._node
        for i in range(node.num_entries):
            yield node.entry_at(i)

    def append(self, entry: TPREntry) -> None:
        """Write-through append to the owning node's columns."""
        self._node.append_entry(entry)


class TPRNode:
    """A TPR-tree node stored in one page payload (SoA column storage)."""

    __slots__ = (
        "page_id",
        "is_leaf",
        "parent_page_id",
        "_x0",
        "_y0",
        "_x1",
        "_y1",
        "_vx0",
        "_vy0",
        "_vx1",
        "_vy1",
        "_tref",
        "_refs",
    )

    def __init__(
        self,
        page_id: int,
        is_leaf: bool,
        entries: Optional[Sequence[TPREntry]] = None,
        parent_page_id: Optional[int] = None,
    ) -> None:
        self.page_id = page_id
        self.is_leaf = is_leaf
        self.parent_page_id = parent_page_id
        self._x0 = array("d")
        self._y0 = array("d")
        self._x1 = array("d")
        self._y1 = array("d")
        self._vx0 = array("d")
        self._vy0 = array("d")
        self._vx1 = array("d")
        self._vy1 = array("d")
        self._tref = array("d")
        self._refs = array("q")
        if entries:
            for entry in entries:
                self.append_entry(entry)

    # ------------------------------------------------------------------
    # Column access (the kernel-facing hot surface)
    # ------------------------------------------------------------------
    @property
    def columns(self) -> Tuple[array, ...]:
        """The nine bound columns ``(x0, y0, x1, y1, vx0, vy0, vx1, vy1, tref)``.

        The arrays are the node's live storage: callers must treat them as
        read-only and must not hold them across mutations.
        """
        return (
            self._x0,
            self._y0,
            self._x1,
            self._y1,
            self._vx0,
            self._vy0,
            self._vx1,
            self._vy1,
            self._tref,
        )

    @property
    def refs(self) -> array:
        """Referenced ids per slot: object ids on leaves, child page ids above."""
        return self._refs

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        """Number of entries stored in the node."""
        return len(self._refs)

    def is_overfull(self, max_entries: int) -> bool:
        """Whether the node exceeds the fan-out (must be split/reinserted)."""
        return len(self._refs) > max_entries

    def is_underfull(self, min_entries: int) -> bool:
        """Whether the node violates the minimum fill (must be condensed)."""
        return len(self._refs) < min_entries

    # ------------------------------------------------------------------
    # Mutation (every structural change funnels through these)
    # ------------------------------------------------------------------
    def append_entry(self, entry: TPREntry) -> None:
        """Append an exchange-record entry, encoding its bound into the columns."""
        bound = entry.bound
        rect = bound.rect
        ref = entry.oid if entry.oid is not None else entry.child_page_id
        self._append_raw(
            rect.x_min,
            rect.y_min,
            rect.x_max,
            rect.y_max,
            bound.v_x_min,
            bound.v_y_min,
            bound.v_x_max,
            bound.v_y_max,
            bound.reference_time,
            ref,
        )

    def append_bound(self, ext: kernels.Extent, reference_time: float, ref: int) -> None:
        """Append an entry from a flat kernel extent anchored at ``reference_time``."""
        x0, y0, x1, y1, vx0, vy0, vx1, vy1 = ext
        self._append_raw(x0, y0, x1, y1, vx0, vy0, vx1, vy1, reference_time, ref)

    def _append_raw(self, x0, y0, x1, y1, vx0, vy0, vx1, vy1, tref, ref) -> None:
        self._x0.append(x0)
        self._y0.append(y0)
        self._x1.append(x1)
        self._y1.append(y1)
        self._vx0.append(vx0)
        self._vy0.append(vy0)
        self._vx1.append(vx1)
        self._vy1.append(vy1)
        self._tref.append(tref)
        self._refs.append(ref)

    def set_bound_at(self, index: int, ext: kernels.Extent, reference_time: float) -> None:
        """Overwrite the bound of slot ``index`` (parent-bound tightening)."""
        self._x0[index] = ext[0]
        self._y0[index] = ext[1]
        self._x1[index] = ext[2]
        self._y1[index] = ext[3]
        self._vx0[index] = ext[4]
        self._vy0[index] = ext[5]
        self._vx1[index] = ext[6]
        self._vy1[index] = ext[7]
        self._tref[index] = reference_time

    def remove_at(self, index: int) -> None:
        """Remove the entry at slot ``index`` from every column."""
        for column in (
            self._x0,
            self._y0,
            self._x1,
            self._y1,
            self._vx0,
            self._vy0,
            self._vx1,
            self._vy1,
            self._tref,
            self._refs,
        ):
            del column[index]

    def keep_only(self, indexes: Sequence[int]) -> None:
        """Keep exactly the slots in ``indexes`` (in the given order)."""
        for column in (
            self._x0,
            self._y0,
            self._x1,
            self._y1,
            self._vx0,
            self._vy0,
            self._vx1,
            self._vy1,
            self._tref,
        ):
            column[:] = array("d", (column[i] for i in indexes))
        self._refs[:] = array("q", (self._refs[i] for i in indexes))

    def snapshot(self) -> List[Tuple]:
        """Flat per-entry records ``(x0..vy1, tref, ref)`` (split redistribution)."""
        return list(
            zip(
                self._x0,
                self._y0,
                self._x1,
                self._y1,
                self._vx0,
                self._vy0,
                self._vx1,
                self._vy1,
                self._tref,
                self._refs,
            )
        )

    def load(self, records: Sequence[Tuple]) -> None:
        """Replace the node's contents with flat records from :meth:`snapshot`."""
        self.clear()
        for record in records:
            self._append_raw(*record)

    def clear(self) -> None:
        """Drop every entry."""
        for column in (
            self._x0,
            self._y0,
            self._x1,
            self._y1,
            self._vx0,
            self._vy0,
            self._vx1,
            self._vy1,
            self._tref,
        ):
            del column[:]
        del self._refs[:]

    def set_entries(self, entries: Sequence[TPREntry]) -> None:
        """Replace the node's contents with exchange-record entries."""
        self.clear()
        for entry in entries:
            self.append_entry(entry)

    # ------------------------------------------------------------------
    # Lookup / materialization
    # ------------------------------------------------------------------
    def index_of_ref(self, ref: int) -> Optional[int]:
        """Slot of the entry referencing ``ref`` (oid or child page id), or None."""
        try:
            return self._refs.index(ref)
        except ValueError:
            return None

    def entry_at(self, index: int) -> TPREntry:
        """Materialize the :class:`TPREntry` exchange record for slot ``index``."""
        bound = MovingRect(
            rect=Rect(self._x0[index], self._y0[index], self._x1[index], self._y1[index]),
            v_x_min=self._vx0[index],
            v_y_min=self._vy0[index],
            v_x_max=self._vx1[index],
            v_y_max=self._vy1[index],
            reference_time=self._tref[index],
        )
        ref = self._refs[index]
        if self.is_leaf:
            return TPREntry(bound=bound, oid=ref)
        return TPREntry(bound=bound, child_page_id=ref)

    def iter_records(self) -> Iterator[Tuple]:
        """Flat ``(ref, x0, y0, x1, y1, vx0, vy0, vx1, vy1, tref)`` per entry.

        The columnar iterator for cold full-node reads (``iter_objects``,
        debug dumps): one C-level zip over the live columns, no
        :class:`TPREntry`/``MovingRect`` objects.  Callers must not mutate
        the node while iterating.
        """
        return zip(
            self._refs,
            self._x0,
            self._y0,
            self._x1,
            self._y1,
            self._vx0,
            self._vy0,
            self._vx1,
            self._vy1,
            self._tref,
        )

    @property
    def entries(self) -> _EntriesView:
        """Sequence view materializing entries on demand (append writes through)."""
        return _EntriesView(self)

    @entries.setter
    def entries(self, new_entries: Sequence[TPREntry]) -> None:
        self.set_entries(list(new_entries))

    # ------------------------------------------------------------------
    # Bounds
    # ------------------------------------------------------------------
    def bound_extent(self, reference_time: float) -> kernels.Extent:
        """Tight bound over the node's entries as a flat kernel extent."""
        if not self._refs:
            raise ValueError("cannot bound an empty node")
        return kernels.soa_bound_extent(*self.columns, time=reference_time)

    def bound(self, reference_time: float) -> MovingRect:
        """Tight time-parameterized bound over the node's entries."""
        x0, y0, x1, y1, vx0, vy0, vx1, vy1 = self.bound_extent(reference_time)
        return MovingRect(
            rect=Rect(x0, y0, x1, y1),
            v_x_min=vx0,
            v_y_min=vy0,
            v_x_max=vx1,
            v_y_max=vy1,
            reference_time=reference_time,
        )

    # ------------------------------------------------------------------
    # Historical object-level helpers (tests and cold paths)
    # ------------------------------------------------------------------
    def find_entry_for_child(self, child_page_id: int) -> TPREntry:
        """Entry pointing at ``child_page_id``.

        Raises:
            KeyError: if no entry references that child.
        """
        index = self.index_of_ref(child_page_id)
        if index is None or self.is_leaf:
            raise KeyError(f"node {self.page_id} has no child {child_page_id}")
        return self.entry_at(index)

    def remove_entry_for_child(self, child_page_id: int) -> TPREntry:
        """Remove and return the entry pointing at ``child_page_id``."""
        entry = self.find_entry_for_child(child_page_id)
        self.remove_at(self.index_of_ref(child_page_id))
        return entry
