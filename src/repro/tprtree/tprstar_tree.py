"""The TPR*-tree: cost-model-driven variant of the TPR-tree.

Tao et al. (VLDB 2003) observed that the original TPR-tree applies the
R*-tree heuristics to the bounds at the insertion time only, ignoring how
the bounds degrade as they expand.  The TPR*-tree instead evaluates every
structural choice with the *sweeping-region* metric: the area swept by the
(transformed) node bound over a time horizon, which is exactly the node's
contribution to the expected number of node accesses of a future query
(Equation 1 of the paper).

This implementation keeps the TPR-tree's overall structure and overrides:

* the choose-subtree / split objective, replacing projected area with the
  sweeping volume over the optimization horizon, which penalizes nodes that
  group objects moving in different directions; and
* overflow handling, performing one *pick-worst* forced reinsertion per
  level per insertion (the entries whose removal shrinks the node's sweeping
  volume the most are reinserted) before resorting to a split.

The tree is additionally optimized for a nominal query extent (the paper
tunes the TPR*-tree for 1000 x 1000 m queries): the sweeping volume is
computed on the node bound enlarged by half the nominal query extent,
mirroring the transformed-node construction of the cost model.
"""

from __future__ import annotations

from typing import List, Optional

from repro.geometry import kernels
from repro.objects.moving_object import MovingObject
from repro.storage.buffer_manager import BufferManager
from repro.tprtree.node import TPRNode
from repro.tprtree.tpr_tree import DEFAULT_HORIZON, TPRTree

#: Nominal query side length the tree is optimized for (Section 6 of the
#: paper: "The TPR*-tree is optimized for query size of 1000x1000m^2").
DEFAULT_NOMINAL_QUERY_EXTENT = 1000.0

#: Fraction of a node's entries removed by a pick-worst forced reinsertion.
REINSERT_FRACTION = 0.3


class TPRStarTree(TPRTree):
    """TPR*-tree with sweeping-region-driven insertion heuristics."""

    name = "TPR*"

    def __init__(
        self,
        buffer: Optional[BufferManager] = None,
        max_entries: Optional[int] = None,
        min_fill: float = 0.4,
        horizon: float = DEFAULT_HORIZON,
        nominal_query_extent: float = DEFAULT_NOMINAL_QUERY_EXTENT,
        sweep_steps: int = 2,
        page_size: Optional[int] = None,
    ) -> None:
        super().__init__(
            buffer=buffer,
            max_entries=max_entries,
            min_fill=min_fill,
            horizon=horizon,
            page_size=page_size,
        )
        self.nominal_query_extent = nominal_query_extent
        self.sweep_steps = sweep_steps
        self._reinsert_done_levels: set = set()

    # ------------------------------------------------------------------
    # Cost metric: sweeping volume of the transformed bound over the horizon
    # ------------------------------------------------------------------
    def _extent_cost(self, ext: kernels.Extent) -> float:
        """Fused sweep integral of the bound grown by the nominal query extent."""
        return kernels.extent_sweep_volume(ext, self.nominal_query_extent, self.horizon)

    def _split_cost_extents(self, ext_a: kernels.Extent, ext_b: kernels.Extent) -> float:
        """Sweeping volumes of the halves plus their overlap now and at the horizon."""
        overlap = kernels.intersection_area(ext_a, ext_b)
        overlap_end = kernels.intersection_area(ext_a, ext_b, self.horizon)
        return (
            self._extent_cost(ext_a)
            + self._extent_cost(ext_b)
            + 0.5 * self.horizon * (overlap + overlap_end)
        )

    # ------------------------------------------------------------------
    # Insertion with pick-worst forced reinsertion
    # ------------------------------------------------------------------
    def insert(self, obj: MovingObject) -> None:
        self._reinsert_done_levels = set()
        super().insert(obj)

    def _handle_overflow_and_adjust(self, path: List[TPRNode], base_level: int = 0) -> None:
        index = len(path) - 1
        while index >= 0:
            node = path[index]
            if node.is_overfull(self.max_entries):
                level = self._path_level(path, index, base_level)
                if level not in self._reinsert_done_levels and index > 0:
                    self._reinsert_done_levels.add(level)
                    self._pick_worst_reinsert(node, path, index, level)
                    return
                self._split_and_propagate(node, path, index, base_level)
                return
            if index > 0:
                self._tighten_parent(path[index - 1], node)
            index -= 1

    def _pick_worst_reinsert(
        self, node: TPRNode, path: List[TPRNode], index: int, level: int
    ) -> None:
        """Remove the entries that degrade the node most and re-insert them.

        "Pick worst" ranks entries by how much the node's sweeping volume
        shrinks when the entry is removed — entries moving against the
        grain of the node contribute the most and are evicted first.  The
        leave-one-out bounds come from prefix/suffix unions of the kernel
        extents, so scoring the whole node is O(n) instead of O(n^2).
        """
        t = self.current_time
        n = node.num_entries
        count = max(1, int(n * REINSERT_FRACTION))
        extents = kernels.soa_extents(*node.columns, time=t)
        full_cost = self._extent_cost(kernels.soa_bound_extent(*node.columns, time=t))
        scored = [
            (full_cost - self._extent_cost(remaining), position)
            for position, remaining in enumerate(kernels.remove_one_extents(extents))
        ]
        scored.sort(key=lambda pair: pair[0], reverse=True)
        evicted_indexes = {position for _, position in scored[:count]}
        evicted = [node.entry_at(position) for _, position in scored[:count]]
        node.keep_only([i for i in range(n) if i not in evicted_indexes])
        self._write_node(node)
        # Tighten the path above the node before re-inserting.
        for upper in range(index, 0, -1):
            self._tighten_parent(path[upper - 1], path[upper])
        for entry in evicted:
            self._insert_entry(entry, level)
