"""The TPR*-tree: cost-model-driven variant of the TPR-tree.

Tao et al. (VLDB 2003) observed that the original TPR-tree applies the
R*-tree heuristics to the bounds at the insertion time only, ignoring how
the bounds degrade as they expand.  The TPR*-tree instead evaluates every
structural choice with the *sweeping-region* metric: the area swept by the
(transformed) node bound over a time horizon, which is exactly the node's
contribution to the expected number of node accesses of a future query
(Equation 1 of the paper).

This implementation keeps the TPR-tree's overall structure and overrides:

* the choose-subtree / split objective, replacing projected area with the
  sweeping volume over the optimization horizon, which penalizes nodes that
  group objects moving in different directions; and
* overflow handling, performing one *pick-worst* forced reinsertion per
  level per insertion (the entries whose removal shrinks the node's sweeping
  volume the most are reinserted) before resorting to a split.

The tree is additionally optimized for a nominal query extent (the paper
tunes the TPR*-tree for 1000 x 1000 m queries): the sweeping volume is
computed on the node bound enlarged by half the nominal query extent,
mirroring the transformed-node construction of the cost model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.geometry.moving_rect import MovingRect
from repro.geometry.sweep import sweeping_volume_closed_form
from repro.objects.moving_object import MovingObject
from repro.storage.buffer_manager import BufferManager
from repro.tprtree.node import TPREntry, TPRNode
from repro.tprtree.tpr_tree import DEFAULT_HORIZON, TPRTree

#: Nominal query side length the tree is optimized for (Section 6 of the
#: paper: "The TPR*-tree is optimized for query size of 1000x1000m^2").
DEFAULT_NOMINAL_QUERY_EXTENT = 1000.0

#: Fraction of a node's entries removed by a pick-worst forced reinsertion.
REINSERT_FRACTION = 0.3


class TPRStarTree(TPRTree):
    """TPR*-tree with sweeping-region-driven insertion heuristics."""

    name = "TPR*"

    def __init__(
        self,
        buffer: Optional[BufferManager] = None,
        max_entries: Optional[int] = None,
        min_fill: float = 0.4,
        horizon: float = DEFAULT_HORIZON,
        nominal_query_extent: float = DEFAULT_NOMINAL_QUERY_EXTENT,
        sweep_steps: int = 2,
        page_size: Optional[int] = None,
    ) -> None:
        super().__init__(
            buffer=buffer,
            max_entries=max_entries,
            min_fill=min_fill,
            horizon=horizon,
            page_size=page_size,
        )
        self.nominal_query_extent = nominal_query_extent
        self.sweep_steps = sweep_steps
        self._reinsert_done_levels: set = set()

    # ------------------------------------------------------------------
    # Cost metric: sweeping volume of the transformed bound over the horizon
    # ------------------------------------------------------------------
    def _bound_cost(self, bound: MovingRect) -> float:
        rect = bound.rect_at(self.current_time)
        return sweeping_volume_closed_form(
            rect.width + self.nominal_query_extent,
            rect.height + self.nominal_query_extent,
            bound.v_x_min,
            bound.v_y_min,
            bound.v_x_max,
            bound.v_y_max,
            self.horizon,
        )

    def _enlargement_cost(self, bound: MovingRect, extra: MovingRect) -> float:
        """Float-only union cost (the hot path of choose-subtree).

        Avoids constructing intermediate :class:`MovingRect` objects: both
        bounds are projected to the current time arithmetically, their union
        extents and velocity extremes are combined, and the closed-form
        sweeping volume gives the cost.
        """
        t = self.current_time
        a = bound.rect_at(t)
        b = extra.rect_at(t)
        x_min = a.x_min if a.x_min < b.x_min else b.x_min
        y_min = a.y_min if a.y_min < b.y_min else b.y_min
        x_max = a.x_max if a.x_max > b.x_max else b.x_max
        y_max = a.y_max if a.y_max > b.y_max else b.y_max
        union_cost = sweeping_volume_closed_form(
            (x_max - x_min) + self.nominal_query_extent,
            (y_max - y_min) + self.nominal_query_extent,
            min(bound.v_x_min, extra.v_x_min),
            min(bound.v_y_min, extra.v_y_min),
            max(bound.v_x_max, extra.v_x_max),
            max(bound.v_y_max, extra.v_y_max),
            self.horizon,
        )
        return union_cost - self._bound_cost(bound)

    # ------------------------------------------------------------------
    # Insertion with pick-worst forced reinsertion
    # ------------------------------------------------------------------
    def insert(self, obj: MovingObject) -> None:
        self._reinsert_done_levels = set()
        super().insert(obj)

    def _handle_overflow_and_adjust(self, path: List[TPRNode], base_level: int = 0) -> None:
        index = len(path) - 1
        while index >= 0:
            node = path[index]
            if node.is_overfull(self.max_entries):
                level = self._path_level(path, index, base_level)
                if level not in self._reinsert_done_levels and index > 0:
                    self._reinsert_done_levels.add(level)
                    self._pick_worst_reinsert(node, path, index, level)
                    return
                self._split_and_propagate(node, path, index, base_level)
                return
            if index > 0:
                parent = path[index - 1]
                parent_entry = parent.find_entry_for_child(node.page_id)
                parent_entry.bound = node.bound(self.current_time)
                self._write_node(parent)
            index -= 1

    def _pick_worst_reinsert(
        self, node: TPRNode, path: List[TPRNode], index: int, level: int
    ) -> None:
        """Remove the entries that degrade the node most and re-insert them.

        "Pick worst" ranks entries by how much the node's sweeping volume
        shrinks when the entry is removed — entries moving against the
        grain of the node contribute the most and are evicted first.
        """
        count = max(1, int(len(node.entries) * REINSERT_FRACTION))
        scored = []
        full_cost = self._bound_cost(node.bound(self.current_time))
        for entry in node.entries:
            remaining = [e for e in node.entries if e is not entry]
            remaining_bound = MovingRect.bounding(
                (e.bound for e in remaining), self.current_time
            )
            saving = full_cost - self._bound_cost(remaining_bound)
            scored.append((saving, entry))
        scored.sort(key=lambda pair: pair[0], reverse=True)
        evicted = [entry for _, entry in scored[:count]]
        node.entries = [e for e in node.entries if e not in evicted]
        self._write_node(node)
        # Tighten the path above the node before re-inserting.
        for upper in range(index, 0, -1):
            child = path[upper]
            parent = path[upper - 1]
            parent_entry = parent.find_entry_for_child(child.page_id)
            parent_entry.bound = child.bound(self.current_time)
            self._write_node(parent)
        for entry in evicted:
            self._insert_entry(entry, level)

    # ------------------------------------------------------------------
    # Split objective: sweeping volumes instead of projected areas
    # ------------------------------------------------------------------
    def _split_cost(self, group_a: Sequence[TPREntry], group_b: Sequence[TPREntry]) -> float:
        bound_a = MovingRect.bounding((e.bound for e in group_a), self.current_time)
        bound_b = MovingRect.bounding((e.bound for e in group_b), self.current_time)
        overlap = bound_a.rect_at(self.current_time).intersection_area(
            bound_b.rect_at(self.current_time)
        )
        overlap_end = bound_a.rect_at(self.current_time + self.horizon).intersection_area(
            bound_b.rect_at(self.current_time + self.horizon)
        )
        return (
            self._bound_cost(bound_a)
            + self._bound_cost(bound_b)
            + 0.5 * self.horizon * (overlap + overlap_end)
        )
