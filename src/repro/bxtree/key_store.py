"""Pluggable key-store backends for the Bx-tree.

The Bx-tree reduces every update and query to operations on 1-D
space-filling-curve keys, so the structure that stores those keys is an
interchangeable backend.  :class:`KeyStore` spells out the contract the
Bx-tree programs against — exactly the surface it historically consumed
from :class:`~repro.btree.bplus_tree.BPlusTree` — and two backends
implement it:

``"btree"``
    :class:`~repro.btree.store.BTreeKeyStore`, the paged B+-tree.  The
    default, and the paper's I/O-model reference: buffer-managed pages,
    root-to-leaf descents, leaf-chain scans, measurable I/O counts.

``"flat"``
    :class:`FlatKeyStore`, a fully vectorized sorted-array engine: one
    sorted ``int64`` key array, ``np.searchsorted`` lookups, merge-based
    batch application, and structure-of-arrays candidate columns for the
    kNN filter.  No pages, no per-node Python loop — and answers pinned
    **bit-identical** to the B+-tree backend (same ids, same float
    distances, same result order, duplicate keys kept in the same
    insertion order).

Backends are selected with :func:`make_key_store`, mirroring the
``make_executor`` idiom of the serving layer (``None`` | name | class |
instance); see ``docs/backends.md`` for the contract table and guidance.
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

import numpy as np

from repro.btree.store import BTreeKeyStore
from repro.storage.buffer_manager import BufferManager

#: Flat candidate motion state: ``(oid, px, py, vx, vy, reference_time)``.
CandidateState = Tuple[int, float, float, float, float, float]


def _object_array(values: Sequence[Any]) -> np.ndarray:
    """A 1-D object array of ``values``, never unpacking sequence payloads."""
    out = np.empty(len(values), dtype=object)
    out[:] = values
    return out


class KeyStore(Protocol):
    """The contract a Bx key-store backend must satisfy.

    Keys are Python ints (curve codes offset by the partition prefix);
    values are opaque payloads — the Bx-tree stores
    :class:`~repro.objects.moving_object.MovingObject` snapshots, the
    test suites also use plain ints.  Duplicate keys are allowed and
    must preserve **insertion order** among equal keys; ``delete`` and
    ``replace`` act on the *leftmost* value-equal entry of a duplicate
    run.  All query results are ``(key, value)`` pairs in key order with
    keys returned as Python ints.
    """

    #: Registry name of the backend ("btree", "flat", ...).
    name: str
    #: Buffer manager surface (I/O stats, batch hints).  Backends that do
    #: no paged I/O still carry the attribute so the stats plumbing is
    #: uniform; their counters simply stay at zero.
    buffer: BufferManager

    @property
    def size(self) -> int: ...

    def __len__(self) -> int: ...

    def bulk_load(self, items: Iterable[Tuple[int, Any]]) -> None:
        """Build from ``(key, value)`` pairs (stable-sorted); store must be empty."""
        ...

    def insert(self, key: int, value: Any) -> None: ...

    def delete(self, key: int, value: Any) -> bool: ...

    def replace(self, key: int, old_value: Any, new_value: Any) -> bool: ...

    def apply_batch(
        self,
        deletes: Sequence[Tuple[int, Any]] = (),
        inserts: Sequence[Tuple[int, Any]] = (),
        upserts: Sequence[Tuple[int, Any, Any]] = (),
    ) -> Tuple[List[bool], List[bool]]:
        """One key-ordered sweep; flags aligned with ``deletes``/``upserts``."""
        ...

    def range_search(self, low: int, high: int) -> List[Tuple[int, Any]]: ...

    def range_search_batch(
        self,
        ranges: Sequence[Tuple[int, int]],
        sequential_hint: bool = True,
    ) -> List[List[Tuple[int, Any]]]: ...

    def knn_candidates_batch(
        self, ranges: Sequence[Tuple[int, int]]
    ) -> List[List[CandidateState]]:
        """Per-range candidate motion states ``(oid, px, py, vx, vy, rt)``."""
        ...

    def items(self) -> Iterator[Tuple[int, Any]]: ...


class FlatKeyStore:
    """Vectorized sorted-array key-store backend.

    Layout: one sorted ``np.int64`` key array aligned with an object
    array of payloads (the authoritative store — an object array so
    compaction and merged insertion are C-speed pointer copies, not
    Python list rebuilds), plus lazily derived structure-of-arrays
    motion columns (oid/px/py/vx/vy/rt) that feed the kNN candidate
    extraction without touching the payload objects.

    Everything is driven by ``np.searchsorted``: point operations use one
    scalar bisection, batch operations use **one** vectorized bisection
    per batch.  ``apply_batch`` resolves the whole batch against a frozen
    snapshot of the array (deletes/replacements recorded positionally,
    insertions accumulated as a pending run) and then commits with one
    boolean-mask compaction and one merged ``np.insert`` — semantically
    identical to the B+-tree's sequential key-ordered sweep, including
    flag values, duplicate-run ordering and upsert-miss degradation.

    The store keeps a :class:`BufferManager` reference purely for the
    uniform stats surface; it performs no paged I/O, so its I/O counters
    stay at zero — that difference *is* the backend's value proposition.
    """

    name = "flat"

    def __init__(
        self,
        buffer: Optional[BufferManager] = None,
        page_size: Optional[int] = None,
    ) -> None:
        del page_size  # no pages; accepted for factory-signature parity
        self.buffer = buffer if buffer is not None else BufferManager()
        self._keys = np.empty(0, dtype=np.int64)
        self._values = np.empty(0, dtype=object)
        #: Lazy SoA motion columns: ``None`` = stale, ``()`` = payloads are
        #: not motion records (fall back to attribute access per call),
        #: else a 6-tuple of aligned arrays.
        self._soa: Optional[Tuple[np.ndarray, ...]] = None

    # -- sizes ---------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._values)

    def __len__(self) -> int:
        return len(self._values)

    # -- updates -------------------------------------------------------
    def bulk_load(self, items: Iterable[Tuple[int, Any]]) -> None:
        if len(self._values):
            raise ValueError("bulk_load requires an empty store")
        pairs = sorted(items, key=lambda pair: pair[0])  # stable: ties keep order
        if not pairs:
            return
        self._keys = np.fromiter((k for k, _ in pairs), np.int64, len(pairs))
        self._values = _object_array([v for _, v in pairs])
        self._soa = None

    def insert(self, key: int, value: Any) -> None:
        pos = int(np.searchsorted(self._keys, key, side="right"))
        self._keys = np.insert(self._keys, pos, key)
        values = np.empty(len(self._values) + 1, dtype=object)
        values[:pos] = self._values[:pos]
        values[pos] = value
        values[pos + 1 :] = self._values[pos:]
        self._values = values
        self._soa = None

    def delete(self, key: int, value: Any) -> bool:
        lo = int(np.searchsorted(self._keys, key, side="left"))
        hi = int(np.searchsorted(self._keys, key, side="right"))
        for pos in range(lo, hi):
            if self._values[pos] == value:
                self._keys = np.delete(self._keys, pos)
                self._values = np.delete(self._values, pos)
                self._soa = None
                return True
        return False

    def replace(self, key: int, old_value: Any, new_value: Any) -> bool:
        lo = int(np.searchsorted(self._keys, key, side="left"))
        hi = int(np.searchsorted(self._keys, key, side="right"))
        for pos in range(lo, hi):
            if self._values[pos] == old_value:
                self._values[pos] = new_value
                self._soa = None
                return True
        return False

    def apply_batch(
        self,
        deletes: Sequence[Tuple[int, Any]] = (),
        inserts: Sequence[Tuple[int, Any]] = (),
        upserts: Sequence[Tuple[int, Any, Any]] = (),
    ) -> Tuple[List[bool], List[bool]]:
        """Apply a mixed batch in one merged pass.

        Work items are ordered exactly as the B+-tree orders them —
        ``(key, kind, arrival)`` with deletes before upserts before
        inserts of the same key — and resolved against a frozen snapshot
        of the array: a delete marks the leftmost surviving value-equal
        position; an upsert rewrites a marked position (or an earlier
        upsert-miss's pending entry) in place, degrading to an insertion
        of its new value when no match survives; inserts accumulate as a
        pending key-ordered run.  The commit is three vectorized steps:
        in-place replacements, one boolean-mask compaction, and one
        merged ``np.insert`` whose ``side="right"`` positions land every
        pending entry after the surviving duplicates of its key, in
        arrival order — the ``bisect_right`` placement of the B+-tree.
        """
        n_del, n_ups, n_ins = len(deletes), len(upserts), len(inserts)
        delete_flags = [False] * n_del
        upsert_flags = [False] * n_ups
        if n_del + n_ups + n_ins == 0:
            return delete_flags, upsert_flags
        work = sorted(
            [(key, 0, i) for i, (key, _) in enumerate(deletes)]
            + [(key, 1, i) for i, (key, _, _) in enumerate(upserts)]
            + [(key, 2, i) for i, (key, _) in enumerate(inserts)]
        )
        keys = self._keys
        values = self._values
        # One vectorized bisection pair for every lookup in the batch.
        work_keys = np.fromiter((key for key, _, _ in work), np.int64, len(work))
        work_lo = np.searchsorted(keys, work_keys, side="left").tolist()
        work_hi = np.searchsorted(keys, work_keys, side="right").tolist()
        removed: set = set()
        replaced: Dict[int, Any] = {}
        pending_keys: List[int] = []  # non-decreasing: work is key-sorted
        pending_values: List[Any] = []
        pending_by_key: Dict[int, List[int]] = {}

        def find(key: int, target: Any, lo: int, hi: int):
            for pos in range(lo, hi):
                if pos in removed:
                    continue
                current = replaced[pos] if pos in replaced else values[pos]
                if current == target:
                    return pos, -1
            for j in pending_by_key.get(key, ()):
                if pending_values[j] == target:
                    return -1, j
            return -1, -1

        def push(key: int, value: Any) -> None:
            pending_by_key.setdefault(key, []).append(len(pending_keys))
            pending_keys.append(key)
            pending_values.append(value)

        for w, (key, kind, i) in enumerate(work):
            if kind == 0:  # delete: leftmost surviving value-equal entry
                pos, _ = find(key, deletes[i][1], work_lo[w], work_hi[w])
                if pos >= 0:
                    removed.add(pos)
                    delete_flags[i] = True
            elif kind == 1:  # upsert: replace in place, else degrade to insert
                _, old_value, new_value = upserts[i]
                pos, j = find(key, old_value, work_lo[w], work_hi[w])
                if pos >= 0:
                    replaced[pos] = new_value
                    upsert_flags[i] = True
                elif j >= 0:
                    pending_values[j] = new_value
                    upsert_flags[i] = True
                else:
                    push(key, new_value)
            else:  # insert: after surviving duplicates, in arrival order
                push(key, inserts[i][1])

        # Commit: replacements in place, one compaction, one merged insert.
        for pos, value in replaced.items():
            values[pos] = value
        if removed:
            keep = np.ones(len(keys), dtype=bool)
            keep[list(removed)] = False
            keys = keys[keep]
            values = values[keep]
        if pending_keys:
            run = np.asarray(pending_keys, dtype=np.int64)
            positions = np.searchsorted(keys, run, side="right")
            keys = np.insert(keys, positions, run)
            # Scatter-merge the pending run: pending entry j lands at slot
            # positions[j] + j (np.insert's final-index formula), survivors
            # fill the rest in order — all C-speed pointer copies.
            slots = positions + np.arange(len(run))
            merged = np.empty(len(values) + len(run), dtype=object)
            survivors = np.ones(len(merged), dtype=bool)
            survivors[slots] = False
            merged[survivors] = values
            merged[slots] = _object_array(pending_values)
            values = merged
        self._keys = keys
        self._values = values
        self._soa = None
        return delete_flags, upsert_flags

    # -- queries -------------------------------------------------------
    def range_search(self, low: int, high: int) -> List[Tuple[int, Any]]:
        lo = int(np.searchsorted(self._keys, low, side="left"))
        hi = int(np.searchsorted(self._keys, high, side="right"))
        if hi <= lo:
            return []
        return list(zip(self._keys[lo:hi].tolist(), self._values[lo:hi].tolist()))

    def range_search_batch(
        self,
        ranges: Sequence[Tuple[int, int]],
        sequential_hint: bool = True,
    ) -> List[List[Tuple[int, Any]]]:
        del sequential_hint  # no pages to evict either way
        if not ranges:
            return []
        lo_idx, hi_idx = self._bounds(ranges)
        keys = self._keys
        values = self._values
        return [
            list(zip(keys[lo:hi].tolist(), values[lo:hi].tolist())) if hi > lo else []
            for lo, hi in zip(lo_idx, hi_idx)
        ]

    def knn_candidates_batch(
        self, ranges: Sequence[Tuple[int, int]]
    ) -> List[List[CandidateState]]:
        if not ranges:
            return []
        lo_idx, hi_idx = self._bounds(ranges)
        cols = self._candidate_columns()
        if cols is None:
            values = self._values
            return [
                [
                    (
                        o.oid,
                        o.position.x,
                        o.position.y,
                        o.velocity.vx,
                        o.velocity.vy,
                        o.reference_time,
                    )
                    for o in values[lo:hi]
                ]
                for lo, hi in zip(lo_idx, hi_idx)
            ]
        oid, px, py, vx, vy, rt = cols
        out: List[List[CandidateState]] = []
        for lo, hi in zip(lo_idx, hi_idx):
            if hi <= lo:
                out.append([])
                continue
            out.append(
                list(
                    zip(
                        oid[lo:hi].tolist(),
                        px[lo:hi].tolist(),
                        py[lo:hi].tolist(),
                        vx[lo:hi].tolist(),
                        vy[lo:hi].tolist(),
                        rt[lo:hi].tolist(),
                    )
                )
            )
        return out

    def items(self) -> Iterator[Tuple[int, Any]]:
        return zip(self._keys.tolist(), self._values.tolist())

    # -- internals -----------------------------------------------------
    def _bounds(self, ranges: Sequence[Tuple[int, int]]) -> Tuple[List[int], List[int]]:
        """Slice bounds for every range from one vectorized bisection pair."""
        n = len(ranges)
        lows = np.fromiter((r[0] for r in ranges), np.int64, n)
        highs = np.fromiter((r[1] for r in ranges), np.int64, n)
        lo_idx = np.searchsorted(self._keys, lows, side="left").tolist()
        hi_idx = np.searchsorted(self._keys, highs, side="right").tolist()
        return lo_idx, hi_idx

    def _candidate_columns(self) -> Optional[Tuple[np.ndarray, ...]]:
        """Rebuild the SoA motion columns if stale; ``None`` for opaque payloads."""
        if self._soa is None:
            values = self._values
            n = len(values)
            try:
                self._soa = (
                    np.fromiter((v.oid for v in values), np.int64, n),
                    np.fromiter((v.position.x for v in values), np.float64, n),
                    np.fromiter((v.position.y for v in values), np.float64, n),
                    np.fromiter((v.velocity.vx for v in values), np.float64, n),
                    np.fromiter((v.velocity.vy for v in values), np.float64, n),
                    np.fromiter((v.reference_time for v in values), np.float64, n),
                )
            except AttributeError:
                self._soa = ()
        return self._soa if self._soa else None


#: Registered key-store backends, by name.
KEY_STORES = {
    "btree": BTreeKeyStore,
    "flat": FlatKeyStore,
}


def make_key_store(
    spec: Any = None,
    buffer: Optional[BufferManager] = None,
    page_size: Optional[int] = None,
) -> KeyStore:
    """Resolve a key-store spec: None, a backend name, a class, or an instance.

    ``None`` resolves to the historical default (the paged B+-tree);
    a string must be one of :data:`KEY_STORES`; a class is instantiated
    with ``(buffer=..., page_size=...)``; a ready instance passes through
    unchanged (it must be empty when handed to a fresh ``BxTree``, and it
    cannot be shared across trees — factories that build several trees
    accept only names and classes).
    """
    if spec is None:
        spec = "btree"
    if isinstance(spec, str):
        try:
            factory = KEY_STORES[spec]
        except KeyError:
            raise ValueError(
                f"unknown key store {spec!r} (choose from {sorted(KEY_STORES)})"
            ) from None
        return factory(buffer=buffer, page_size=page_size)
    if isinstance(spec, type):
        return spec(buffer=buffer, page_size=page_size)
    if callable(getattr(spec, "apply_batch", None)) and callable(
        getattr(spec, "range_search_batch", None)
    ):
        return spec
    raise TypeError(
        f"key_store must be None, a name, a class, or a KeyStore (got {type(spec).__name__})"
    )


__all__ = [
    "KEY_STORES",
    "BTreeKeyStore",
    "CandidateState",
    "FlatKeyStore",
    "KeyStore",
    "make_key_store",
]
