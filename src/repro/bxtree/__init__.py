"""The Bx-tree: B+-tree based indexing of moving objects.

The Bx-tree (Jensen et al., VLDB 2004) maps object positions to a
one-dimensional key with a space-filling curve, prefixes the key with a
time-bucket (partition) number, and stores the result in a B+-tree.  Range
queries are enlarged backwards to each partition's reference time using a
velocity histogram, refined iteratively (Jensen et al., MDM 2006), and the
enlarged window is decomposed into curve intervals scanned on the B+-tree.
"""

from repro.bxtree.spacefill import HilbertCurve, ZCurve, SpaceFillingCurve
from repro.bxtree.grid import Grid
from repro.bxtree.velocity_histogram import VelocityHistogram
from repro.bxtree.key_store import (
    KEY_STORES,
    BTreeKeyStore,
    FlatKeyStore,
    KeyStore,
    make_key_store,
)
from repro.bxtree.bx_tree import BxTree

__all__ = [
    "HilbertCurve",
    "ZCurve",
    "SpaceFillingCurve",
    "Grid",
    "VelocityHistogram",
    "KEY_STORES",
    "KeyStore",
    "BTreeKeyStore",
    "FlatKeyStore",
    "make_key_store",
    "BxTree",
]
