"""The Bx-tree moving-object index (Jensen et al., VLDB 2004).

Objects are stored in a B+-tree under a one-dimensional key::

    key = partition * curve_size + curve(cell(position at partition label time))

where ``partition`` is the time bucket of the object's last update and the
partition's *label time* is the end of that bucket.  All objects in one
partition therefore share a common reference time, which bounds the amount
of query-window enlargement (Section 3.2 of the paper).

Range queries are answered per partition:

1. the query window (over its whole time interval) is enlarged back to the
   partition label time using the min/max velocities of a grid-based
   velocity histogram, restricted to the region the window covers;
2. the enlargement is refined iteratively (Jensen et al., MDM 2006): the
   extrema are re-read from the histogram over the *enlarged* window until
   the window stops growing;
3. the enlarged window is decomposed into space-filling-curve ranges which
   become B+-tree range scans; and
4. candidates are filtered with the exact query predicate.

**Per-object versus batch API.**  Mirroring ``geometry/kernels.py`` and
``btree/bplus_tree.py``, the index exposes two update/query surfaces with
identical semantics.  ``insert``/``delete``/``update``/``range_query`` is
the per-object protocol shared with the TPR-tree family; use it for
isolated operations.  ``insert_batch``/``delete_batch``/``update_batch``/
``range_query_batch`` amortize co-arriving work: Bx keys, label positions
and histogram cells for a whole batch are computed in one pass over flat
numpy arrays, the underlying B+-tree is swept left-to-right with shared
descents, same-key updates collapse into in-place value replacement, and a
query batch reuses one partition list, one cached set of global velocity
extrema and one chained range sweep per partition.  The benchmark harness
routes grouped same-window events through the batch surface; anything that
replays more than a handful of operations at a time should do the same.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.btree.bplus_tree import BPlusTree
from repro.bxtree.grid import Grid
from repro.bxtree.key_store import make_key_store
from repro.bxtree.spacefill import HilbertCurve, SpaceFillingCurve, ZCurve
from repro.bxtree.velocity_histogram import VelocityHistogram
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.objects.knn import (
    AdaptiveRadius,
    CandidateState,
    KNNQuery,
    expanding_knn_batch,
)
from repro.objects.moving_object import MovingObject
from repro.objects.queries import RangeQuery
from repro.storage.buffer_manager import BufferManager

#: Default data space (Table 1 of the paper: 100,000 m x 100,000 m).
DEFAULT_SPACE = Rect(0.0, 0.0, 100_000.0, 100_000.0)

#: Number of time buckets (Section 6: "The Bx-tree has two time buckets").
DEFAULT_NUM_BUCKETS = 2

#: Maximum update interval in timestamps (Table 1).
DEFAULT_MAX_UPDATE_INTERVAL = 120.0

#: Space-filling-curve order: 2^order cells per dimension.
DEFAULT_CURVE_ORDER = 8

#: Velocity histogram resolution (cells per dimension).  The paper uses a
#: 1000 x 1000 histogram; 100 x 100 keeps memory modest at simulator scale
#: while preserving locality of the velocity extrema.
DEFAULT_HISTOGRAM_CELLS = 100

#: Maximum number of iterative-refinement rounds for query enlargement.
MAX_ENLARGEMENT_ITERATIONS = 5

#: Curve-position gap below which two query ranges are merged into a single
#: B+-tree scan (one extra short leaf scan is cheaper than another
#: root-to-leaf descent).
DEFAULT_RANGE_MERGE_GAP = 64

#: Batches smaller than this take the scalar per-object path: below a
#: handful of operations the fixed cost of the vectorized key pass (array
#: construction, numpy dispatch) exceeds what the batch saves.  The VP
#: index manager routinely produces such slivers when it splits a batch
#: across partitions.
MIN_VECTOR_BATCH = 8


class BxTree:
    """Bx-tree over a pluggable 1-D key store (paged B+-tree by default)."""

    name = "Bx"

    def __init__(
        self,
        buffer: Optional[BufferManager] = None,
        space: Rect = DEFAULT_SPACE,
        curve: str = "hilbert",
        curve_order: int = DEFAULT_CURVE_ORDER,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        max_update_interval: float = DEFAULT_MAX_UPDATE_INTERVAL,
        histogram_cells: int = DEFAULT_HISTOGRAM_CELLS,
        range_merge_gap: int = DEFAULT_RANGE_MERGE_GAP,
        page_size: Optional[int] = None,
        key_store: Any = None,
    ) -> None:
        if num_buckets < 1:
            raise ValueError("num_buckets must be at least 1")
        if max_update_interval <= 0:
            raise ValueError("max_update_interval must be positive")
        self.buffer = buffer if buffer is not None else BufferManager()
        self.space = space
        self.curve = _make_curve(curve, curve_order)
        self.grid = Grid(space, self.curve.cells_per_side, self.curve.cells_per_side)
        self.num_buckets = num_buckets
        self.bucket_duration = max_update_interval / num_buckets
        self.max_update_interval = max_update_interval
        self.histogram = VelocityHistogram(
            Grid(space, histogram_cells, histogram_cells)
        )
        self.range_merge_gap = range_merge_gap
        #: The key-store backend (see docs/backends.md): ``None`` selects the
        #: paged B+-tree reference; ``"flat"`` the vectorized sorted array.
        self.store = make_key_store(key_store, buffer=self.buffer, page_size=page_size)
        if len(self.store):
            raise ValueError("key_store instance must be empty (one store per tree)")
        self._partition_counts: Dict[int, int] = {}
        #: Sorted active-partition list, recomputed lazily only when the set
        #: of partitions changes (every query walks this list).
        self._sorted_partitions: Optional[List[int]] = None
        self.current_time = 0.0
        self.size = 0

    # ------------------------------------------------------------------
    # Key construction
    # ------------------------------------------------------------------
    @property
    def _curve_size(self) -> int:
        return self.curve.max_index + 1

    def partition_of(self, time: float) -> int:
        """Time bucket (partition) of an update issued at ``time``."""
        return int(time // self.bucket_duration)

    def label_time(self, partition: int) -> float:
        """Common reference time of a partition (the end of its bucket)."""
        return (partition + 1) * self.bucket_duration

    def key_for(self, obj: MovingObject) -> int:
        """Bx key of an object snapshot."""
        partition = self.partition_of(obj.reference_time)
        position = obj.position_at(self.label_time(partition))
        cell = self.grid.cell_of(position)
        return partition * self._curve_size + self.curve.encode(*cell)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def bulk_load(self, objects) -> None:
        """Build the index from ``objects`` with one sorted B+-tree packing.

        Bx keys are computed for every snapshot up front (one pass that also
        feeds the velocity histogram and the partition counters), then the
        underlying B+-tree is leaf-packed in key order instead of descending
        from the root once per object.

        Raises:
            ValueError: if the index is not empty.
        """
        objects = list(objects)
        if self.size:
            raise ValueError("bulk_load requires an empty index")
        if not objects:
            return
        curve_size = self._curve_size
        pairs = []
        for obj in objects:
            self.current_time = max(self.current_time, obj.reference_time)
            partition = self.partition_of(obj.reference_time)
            self._bump_partition(partition, 1)
            position = obj.position_at(self.label_time(partition))
            self.histogram.add(position, obj.velocity)
            cell = self.grid.cell_of(position)
            key = partition * curve_size + self.curve.encode(*cell)
            pairs.append((key, obj))
        self.store.bulk_load(pairs)
        self.size = len(objects)

    def insert(self, obj: MovingObject) -> None:
        """Insert an object snapshot."""
        self._insert_keyed(obj, self.key_for(obj), self.partition_of(obj.reference_time))

    def _insert_keyed(self, obj: MovingObject, key: int, partition: int) -> None:
        self.current_time = max(self.current_time, obj.reference_time)
        self.store.insert(key, obj)
        self._bump_partition(partition, 1)
        # The histogram is keyed by the *indexed* (label-time) position so the
        # query-window refinement reasons about the same positions the keys
        # encode; see enlarged_window() for why this keeps refinement safe.
        self.histogram.add(self._label_position(obj), obj.velocity)
        self.size += 1

    def delete(self, obj: MovingObject) -> bool:
        """Delete the snapshot previously inserted for this object."""
        return self._delete_keyed(obj, self.key_for(obj), self.partition_of(obj.reference_time))

    def _delete_keyed(self, obj: MovingObject, key: int, partition: int) -> bool:
        self.current_time = max(self.current_time, obj.reference_time)
        removed = self.store.delete(key, obj)
        if removed:
            self._bump_partition(partition, -1)
            self.histogram.remove(self._label_position(obj))
            self.size -= 1
        return removed

    def _bump_partition(self, partition: int, delta: int) -> None:
        """Adjust a partition's live-object count, keeping the cache fresh."""
        count = self._partition_counts.get(partition, 0) + delta
        if count <= 0:
            if self._partition_counts.pop(partition, None) is not None:
                self._sorted_partitions = None
        else:
            if count == delta:  # partition newly active
                self._sorted_partitions = None
            self._partition_counts[partition] = count

    def _label_position(self, obj: MovingObject) -> Point:
        """Position of ``obj`` at its partition's label time (the indexed position)."""
        partition = self.partition_of(obj.reference_time)
        return obj.position_at(self.label_time(partition))

    def update(self, old: MovingObject, new: MovingObject) -> bool:
        """Delete ``old`` and insert ``new`` (the paper's update model).

        When both snapshots map to the same Bx key (same partition and same
        curve cell), the B+-tree entry is replaced in place — one descent
        instead of the delete-descent plus insert-descent pair — and only
        the histogram is re-pointed at the new label position and velocity.
        """
        old_key = self.key_for(old)
        new_key = self.key_for(new)
        old_partition = self.partition_of(old.reference_time)
        new_partition = self.partition_of(new.reference_time)
        if old_key == new_key:
            self.current_time = max(
                self.current_time, old.reference_time, new.reference_time
            )
            if self.store.replace(old_key, old, new):
                # Same key means same partition: counts and size are
                # untouched, but the histogram still moves (the histogram
                # grid is finer than the curve grid).
                self.histogram.remove(self._label_position(old))
                self.histogram.add(self._label_position(new), new.velocity)
                return True
            self._insert_keyed(new, new_key, new_partition)
            return False
        removed = self._delete_keyed(old, old_key, old_partition)
        self._insert_keyed(new, new_key, new_partition)
        return removed

    # ------------------------------------------------------------------
    # Batch updates
    # ------------------------------------------------------------------
    def _batch_key_data(self, objs: Sequence[MovingObject]):
        """Keys, partitions, label positions and velocities for a batch.

        One pass over flat numpy arrays replaces the per-object
        ``key_for``/``_label_position`` chain: partition and label time
        arithmetic, label-position projection, grid cells and curve codes
        are all evaluated vectorized, bit-identically to the scalar path.
        """
        n = len(objs)
        rt = np.fromiter((o.reference_time for o in objs), np.float64, n)
        px = np.fromiter((o.position.x for o in objs), np.float64, n)
        py = np.fromiter((o.position.y for o in objs), np.float64, n)
        vx = np.fromiter((o.velocity.vx for o in objs), np.float64, n)
        vy = np.fromiter((o.velocity.vy for o in objs), np.float64, n)
        partitions = np.floor_divide(rt, self.bucket_duration).astype(np.int64)
        label = (partitions + 1) * self.bucket_duration
        dt = label - rt
        lx = px + vx * dt
        ly = py + vy * dt
        cx, cy = self.grid.cells_of_arrays(lx, ly)
        keys = partitions * self._curve_size + self.curve.encode_many(cx, cy)
        return keys.tolist(), partitions.tolist(), lx, ly, vx, vy

    def insert_batch(self, objs: Sequence[MovingObject]) -> None:
        """Insert a batch of snapshots (one key pass + one B+-tree sweep)."""
        self.apply_batch(inserts=objs)

    def delete_batch(self, objs: Sequence[MovingObject]) -> List[bool]:
        """Delete a batch of snapshots; per-object success flags."""
        return self.apply_batch(deletes=objs)[0]

    def update_batch(self, pairs: Iterable[Tuple[MovingObject, MovingObject]]) -> int:
        """Apply a batch of updates; returns how many old snapshots existed.

        Equivalent to calling :meth:`update` pair by pair (same final tree
        contents, counts and sizes); see :meth:`apply_batch`.
        """
        pairs = list(pairs)
        oids = [old.oid for old, _ in pairs]
        if len(set(oids)) != len(oids):
            # Same object updated twice in one batch: order matters, so fall
            # back to the sequential path.
            return sum(1 for old, new in pairs if self.update(old, new))
        return self.apply_batch(updates=pairs)[1]

    def apply_batch(
        self,
        deletes: Sequence[MovingObject] = (),
        inserts: Sequence[MovingObject] = (),
        updates: Sequence[Tuple[MovingObject, MovingObject]] = (),
    ) -> Tuple[List[bool], int]:
        """Apply a mixed batch of operations in one pass over the index.

        The per-operation overhead is amortized across the whole batch:
        keys, partitions and label positions for every snapshot (deletes,
        inserts, and both sides of every update) come from ONE vectorized
        pass over flat arrays; same-key updates become in-place B+-tree
        replacements; and all remaining deletions and insertions run as a
        single key-ordered B+-tree sweep with shared descents.  The
        histogram is maintained with batched array updates.  Final tree
        contents, partition counts and size match applying the operations
        one by one (updates must not repeat an object id within one batch —
        callers with repeats use the sequential path); the histogram may
        end slightly *tighter* than under interleaved scalar replay when a
        batch turns over a cell's whole population (see
        :meth:`~repro.bxtree.velocity_histogram.VelocityHistogram.add_batch`),
        which never changes query answers, only candidate counts.

        Returns ``(delete_flags, updates_removed)``: per-deletion success
        flags aligned with ``deletes`` and the number of update pairs whose
        old snapshot existed.
        """
        deletes = list(deletes)
        inserts = list(inserts)
        updates = list(updates)
        total = len(deletes) + len(inserts) + 2 * len(updates)
        if total == 0:
            return [], 0
        if total < MIN_VECTOR_BATCH:
            flags = [self.delete(obj) for obj in deletes]
            for obj in inserts:
                self.insert(obj)
            removed_updates = sum(1 for old, new in updates if self.update(old, new))
            return flags, removed_updates
        olds = [old for old, _ in updates]
        news = [new for _, new in updates]
        everything = deletes + inserts + olds + news
        keys, parts, lx, ly, vx, vy = self._batch_key_data(everything)
        self.current_time = max(
            self.current_time, max(o.reference_time for o in everything)
        )
        nd, ni, nu = len(deletes), len(inserts), len(updates)
        del_keys = keys[:nd]
        ins_keys = keys[nd : nd + ni]
        old_keys = keys[nd + ni : nd + ni + nu]
        new_keys = keys[nd + ni + nu :]
        old_at = nd + ni
        new_at = nd + ni + nu
        # Same-key update pairs become in-place upserts; the rest join the
        # plain deletions/insertions in ONE key-ordered B+-tree sweep.
        same = [i for i in range(nu) if old_keys[i] == new_keys[i]]
        moves = [i for i in range(nu) if old_keys[i] != new_keys[i]]
        delete_flags, upsert_flags = self.store.apply_batch(
            list(zip(del_keys, deletes)) + [(old_keys[i], olds[i]) for i in moves],
            list(zip(ins_keys, inserts)) + [(new_keys[i], news[i]) for i in moves],
            [(old_keys[i], olds[i], news[i]) for i in same],
        )
        plain_flags = delete_flags[:nd]
        move_flags = delete_flags[nd:]
        # Bookkeeping: counts, histogram and size move exactly as under the
        # per-object path.  A successful in-place replacement keeps its
        # partition count and the tree size (same key, same partition) but
        # still moves the histogram entry.
        removed_positions = []  # indexes into `everything` of removed olds
        for i, flag in enumerate(plain_flags):
            if flag:
                self._bump_partition(parts[i], -1)
                removed_positions.append(i)
        for i in range(ni):
            self._bump_partition(parts[nd + i], 1)
        for i, flag in zip(moves, move_flags):
            if flag:
                self._bump_partition(parts[old_at + i], -1)
                removed_positions.append(old_at + i)
        for i in moves:
            self._bump_partition(parts[new_at + i], 1)
        for i, flag in zip(same, upsert_flags):
            if flag:
                removed_positions.append(old_at + i)
            else:
                self._bump_partition(parts[new_at + i], 1)
        if removed_positions:
            self.histogram.remove_batch(lx[removed_positions], ly[removed_positions])
        added = list(range(nd, nd + ni)) + list(range(new_at, new_at + nu))
        if added:
            self.histogram.add_batch(lx[added], ly[added], vx[added], vy[added])
        inserted = ni + len(moves) + (len(same) - sum(upsert_flags))
        self.size += inserted - sum(plain_flags) - sum(move_flags)
        removed_updates = sum(move_flags) + sum(upsert_flags)
        return plain_flags, removed_updates

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, query: RangeQuery, exact: bool = True) -> List[int]:
        """Object ids qualifying for ``query``."""
        results: List[int] = []
        seen = set()
        for partition in self.active_partitions:
            window = self.enlarged_window(query, partition)
            candidates = self._scan_window(partition, window)
            for obj in candidates:
                if obj.oid in seen:
                    continue
                if not exact or query.matches(obj):
                    seen.add(obj.oid)
                    results.append(obj.oid)
        return results

    def range_query_batch(
        self, queries: Sequence[RangeQuery], exact: bool = True
    ) -> List[List[int]]:
        """Answer a batch of queries; results are aligned with the input.

        Produces exactly the per-query answers (and answer order) of
        :meth:`range_query`, but amortizes the per-query machinery: the
        active-partition list and the histogram's global extrema are read
        once per batch, and all curve-range scans of one partition — across
        every query in the batch — run as a single left-to-right B+-tree
        sweep with shared descents.
        """
        queries = list(queries)
        if not queries:
            return []
        if len(queries) == 1:
            return [self.range_query(queries[0], exact=exact)]
        results: List[List[int]] = [[] for _ in queries]
        seen: List[set] = [set() for _ in queries]
        curve_size = self._curve_size
        for partition in self.active_partitions:
            base_key = partition * curve_size
            ranges: List[Tuple[int, int]] = []
            owners: List[int] = []
            for qi, query in enumerate(queries):
                window = self.enlarged_window(query, partition)
                for lo, hi in self._ranges_for_window(window):
                    ranges.append((base_key + lo, base_key + hi))
                    owners.append(qi)
            scans = self.store.range_search_batch(ranges)
            for qi, scanned in zip(owners, scans):
                query = queries[qi]
                out = results[qi]
                dedup = seen[qi]
                for _, obj in scanned:
                    if obj.oid in dedup:
                        continue
                    if not exact or query.matches(obj):
                        dedup.add(obj.oid)
                        out.append(obj.oid)
        return results

    # ------------------------------------------------------------------
    # kNN queries (batched expanding-range filter over the shared sweep)
    # ------------------------------------------------------------------
    def knn_query(
        self,
        center: Point,
        k: int,
        query_time: float,
        issue_time: float = 0.0,
        space: Optional[Rect] = None,
        radius_state: Optional[AdaptiveRadius] = None,
    ) -> List[Tuple[int, float]]:
        """The ``k`` objects predicted to be nearest ``center`` at ``query_time``.

        Single-probe convenience over :meth:`knn_query_batch`.

        Args:
            center: query point.
            k: number of neighbours requested.
            query_time: the (future) timestamp the prediction refers to.
            issue_time: the current time the query is issued at.
            space: data space override; defaults to the index's own space.
            radius_state: optional cross-batch adaptive radius seed.

        Returns:
            Up to ``k`` ``(oid, distance)`` pairs sorted by ``(distance, oid)``.
        """
        probe = KNNQuery(center=center, k=k, query_time=query_time, issue_time=issue_time)
        return self.knn_query_batch([probe], space=space, radius_state=radius_state)[0]

    def knn_query_batch(
        self,
        queries: Sequence[KNNQuery],
        space: Optional[Rect] = None,
        radius_state: Optional[AdaptiveRadius] = None,
    ) -> List[List[Tuple[int, float]]]:
        """Answer a batch of kNN probes with shared expanding-range rounds.

        Each round's circular filter queries run through the batched
        curve-range machinery: one active-partition list, one set of
        histogram extrema and one chained left-to-right B+-tree sweep per
        partition serve every unfinished probe of the round, and the
        candidate ranking runs vectorized in
        :func:`repro.objects.knn.expanding_knn_batch`.  Answers are
        identical to issuing the probes one at a time.

        Args:
            queries: the kNN probes.
            space: data space override; defaults to the index's own space.
            radius_state: optional cross-batch adaptive radius seed.

        Returns:
            Per probe, up to ``k`` ``(oid, distance)`` pairs sorted by
            ``(distance, oid)``.
        """
        return expanding_knn_batch(
            self.knn_candidates_batch,
            queries,
            space=space if space is not None else self.space,
            population=len(self),
            radius_state=radius_state,
        )

    def knn_candidates_batch(
        self, queries: Sequence[RangeQuery]
    ) -> List[List[CandidateState]]:
        """Candidate motion states per filter query (one shared sweep per partition).

        The unrefined twin of :meth:`range_query_batch`: the same enlarged
        windows and merged curve ranges, but the scanned B+-tree records are
        returned as flat motion states (for the kNN distance ranking)
        instead of being filtered with the exact query predicate.
        """
        out: List[dict] = [{} for _ in queries]
        curve_size = self._curve_size
        for partition in self.active_partitions:
            base_key = partition * curve_size
            ranges: List[Tuple[int, int]] = []
            owners: List[int] = []
            for qi, query in enumerate(queries):
                window = self.enlarged_window(query, partition)
                for lo, hi in self._ranges_for_window(window):
                    ranges.append((base_key + lo, base_key + hi))
                    owners.append(qi)
            # Candidate extraction is the store's job (the flat backend
            # serves it from SoA motion columns without touching the
            # payload objects); only the cross-partition oid dedup stays
            # here.  The store skips the sequential-eviction hint: the
            # kNN filter rounds re-scan grown versions of these same
            # ranges, so the just-scanned leaves are exactly the pages
            # the next round wants resident.
            scans = self.store.knn_candidates_batch(ranges)
            for qi, scanned in zip(owners, scans):
                pool = out[qi]
                for candidate in scanned:
                    if candidate[0] not in pool:
                        pool[candidate[0]] = candidate
        return [list(pool.values()) for pool in out]

    def enlarged_window(self, query: RangeQuery, partition: int) -> Rect:
        """Query window enlarged back to the partition's label time.

        The first enlargement uses the *global* velocity extrema (the original
        Bx-tree rule, always conservative).  Following Jensen et al.'s
        iterative improvement, the window is then refined: the extrema are
        re-read from the velocity histogram restricted to the current window
        and the enlargement recomputed, which can only shrink the window and
        never drops a qualifying object (every object that can reach the
        query window has its reference position — and therefore its histogram
        cell — inside the current window).  Iteration stops at a fixpoint.

        Exposed separately because the search-space-expansion analysis of
        Figure 7 measures exactly this enlargement.
        """
        base = query.bounding_rect_over_interval()
        label = self.label_time(partition)
        extrema = self.histogram.global_extrema()
        window = _enlarge(base, label, query.start_time, query.end_time, *extrema)
        for _ in range(MAX_ENLARGEMENT_ITERATIONS):
            clipped = window.intersection(self.space) if window.intersects(self.space) else window
            extrema = self.histogram.extrema_in(clipped)
            refined = _enlarge(base, label, query.start_time, query.end_time, *extrema)
            if refined.area >= window.area - 1e-9:
                window = refined
                break
            window = refined
        return window.intersection(self.space) if window.intersects(self.space) else window

    def _ranges_for_window(self, window: Rect) -> List[Tuple[int, int]]:
        """Merged curve ranges covering ``window`` (vectorized decomposition).

        The cell block is enumerated as two flat index arrays and encoded
        with the curve's batch kernel — the same cells and the same merged
        ranges :meth:`~repro.bxtree.spacefill.SpaceFillingCurve.ranges_for_cells`
        would produce, without a Python loop per cell.
        """
        lo_x, lo_y, hi_x, hi_y = self.grid.cell_span(window)
        span_y = hi_y - lo_y + 1
        cx = np.repeat(np.arange(lo_x, hi_x + 1, dtype=np.int64), span_y)
        cy = np.tile(np.arange(lo_y, hi_y + 1, dtype=np.int64), hi_x - lo_x + 1)
        indexes = np.sort(self.curve.encode_many(cx, cy))
        return self.curve.ranges_from_sorted_indexes(
            indexes, merge_gap=self.range_merge_gap
        )

    def _scan_window(self, partition: int, window: Rect) -> List[MovingObject]:
        ranges = self._ranges_for_window(window)
        base_key = partition * self._curve_size
        found: List[MovingObject] = []
        for lo, hi in ranges:
            for _, obj in self.store.range_search(base_key + lo, base_key + hi):
                found.append(obj)
        return found

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def btree(self) -> BPlusTree:
        """Deprecated alias for the key-store internals.

        Reaching into ``BxTree.btree`` bypasses the :class:`KeyStore`
        surface and only works for the B+-tree backend; use
        ``BxTree.store`` (see ``docs/backends.md``).  Kept for one
        release as a warning shim.
        """
        warnings.warn(
            "BxTree.btree is deprecated; use BxTree.store (the KeyStore surface)",
            DeprecationWarning,
            stacklevel=2,
        )
        tree = getattr(self.store, "tree", None)
        if tree is not None:
            return tree
        return self.store  # backend has no inner B+-tree; duck-compatible

    @property
    def active_partitions(self) -> List[int]:
        if self._sorted_partitions is None:
            self._sorted_partitions = sorted(self._partition_counts)
        return self._sorted_partitions

    def rebuild_histogram(self) -> None:
        """Recompute the velocity histogram from the live objects."""
        self.histogram.rebuild(
            (self._label_position(obj), obj.velocity) for _, obj in self.store.items()
        )


def _make_curve(kind: str, order: int) -> SpaceFillingCurve:
    if kind == "hilbert":
        return HilbertCurve(order)
    if kind in ("z", "morton"):
        return ZCurve(order)
    raise ValueError(f"unknown space-filling curve: {kind!r}")


def _enlarge(
    base: Rect,
    label_time: float,
    start_time: float,
    end_time: float,
    min_vx: float,
    min_vy: float,
    max_vx: float,
    max_vy: float,
) -> Rect:
    """Enlarge ``base`` so it covers, at ``label_time``, every object that could
    be inside ``base`` at some time in ``[start_time, end_time]``.

    An object indexed at position ``p`` (at the label time) with velocity
    ``v`` is at ``p + v (t - label_time)`` at time ``t``; it can fall in the
    window iff ``p`` lies in the window shifted by ``-v (t - label_time)``.
    Taking the extreme velocities and the extreme ``t`` of the interval
    yields the enlarged boundaries below (valid for query times before or
    after the label time — the signs work out in both cases).
    """
    dt_start = start_time - label_time
    dt_end = end_time - label_time

    def displacement_extremes(v_min: float, v_max: float) -> Tuple[float, float]:
        products = (
            v_min * dt_start,
            v_min * dt_end,
            v_max * dt_start,
            v_max * dt_end,
        )
        return min(products), max(products)

    x_disp_min, x_disp_max = displacement_extremes(min_vx, max_vx)
    y_disp_min, y_disp_max = displacement_extremes(min_vy, max_vy)
    return Rect(
        base.x_min - x_disp_max,
        base.y_min - y_disp_max,
        base.x_max - x_disp_min,
        base.y_max - y_disp_min,
    )
