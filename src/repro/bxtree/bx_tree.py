"""The Bx-tree moving-object index (Jensen et al., VLDB 2004).

Objects are stored in a B+-tree under a one-dimensional key::

    key = partition * curve_size + curve(cell(position at partition label time))

where ``partition`` is the time bucket of the object's last update and the
partition's *label time* is the end of that bucket.  All objects in one
partition therefore share a common reference time, which bounds the amount
of query-window enlargement (Section 3.2 of the paper).

Range queries are answered per partition:

1. the query window (over its whole time interval) is enlarged back to the
   partition label time using the min/max velocities of a grid-based
   velocity histogram, restricted to the region the window covers;
2. the enlargement is refined iteratively (Jensen et al., MDM 2006): the
   extrema are re-read from the histogram over the *enlarged* window until
   the window stops growing;
3. the enlarged window is decomposed into space-filling-curve ranges which
   become B+-tree range scans; and
4. candidates are filtered with the exact query predicate.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.btree.bplus_tree import BPlusTree
from repro.bxtree.grid import Grid
from repro.bxtree.spacefill import HilbertCurve, SpaceFillingCurve, ZCurve
from repro.bxtree.velocity_histogram import VelocityHistogram
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.objects.moving_object import MovingObject
from repro.objects.queries import RangeQuery
from repro.storage.buffer_manager import BufferManager

#: Default data space (Table 1 of the paper: 100,000 m x 100,000 m).
DEFAULT_SPACE = Rect(0.0, 0.0, 100_000.0, 100_000.0)

#: Number of time buckets (Section 6: "The Bx-tree has two time buckets").
DEFAULT_NUM_BUCKETS = 2

#: Maximum update interval in timestamps (Table 1).
DEFAULT_MAX_UPDATE_INTERVAL = 120.0

#: Space-filling-curve order: 2^order cells per dimension.
DEFAULT_CURVE_ORDER = 8

#: Velocity histogram resolution (cells per dimension).  The paper uses a
#: 1000 x 1000 histogram; 100 x 100 keeps memory modest at simulator scale
#: while preserving locality of the velocity extrema.
DEFAULT_HISTOGRAM_CELLS = 100

#: Maximum number of iterative-refinement rounds for query enlargement.
MAX_ENLARGEMENT_ITERATIONS = 5

#: Curve-position gap below which two query ranges are merged into a single
#: B+-tree scan (one extra short leaf scan is cheaper than another
#: root-to-leaf descent).
DEFAULT_RANGE_MERGE_GAP = 64


class BxTree:
    """Bx-tree over a paged B+-tree."""

    name = "Bx"

    def __init__(
        self,
        buffer: Optional[BufferManager] = None,
        space: Rect = DEFAULT_SPACE,
        curve: str = "hilbert",
        curve_order: int = DEFAULT_CURVE_ORDER,
        num_buckets: int = DEFAULT_NUM_BUCKETS,
        max_update_interval: float = DEFAULT_MAX_UPDATE_INTERVAL,
        histogram_cells: int = DEFAULT_HISTOGRAM_CELLS,
        range_merge_gap: int = DEFAULT_RANGE_MERGE_GAP,
        page_size: Optional[int] = None,
    ) -> None:
        if num_buckets < 1:
            raise ValueError("num_buckets must be at least 1")
        if max_update_interval <= 0:
            raise ValueError("max_update_interval must be positive")
        self.buffer = buffer if buffer is not None else BufferManager()
        self.space = space
        self.curve = _make_curve(curve, curve_order)
        self.grid = Grid(space, self.curve.cells_per_side, self.curve.cells_per_side)
        self.num_buckets = num_buckets
        self.bucket_duration = max_update_interval / num_buckets
        self.max_update_interval = max_update_interval
        self.histogram = VelocityHistogram(
            Grid(space, histogram_cells, histogram_cells)
        )
        self.range_merge_gap = range_merge_gap
        self.btree = BPlusTree(buffer=self.buffer, page_size=page_size)
        self._partition_counts: Dict[int, int] = {}
        self.current_time = 0.0
        self.size = 0

    # ------------------------------------------------------------------
    # Key construction
    # ------------------------------------------------------------------
    @property
    def _curve_size(self) -> int:
        return self.curve.max_index + 1

    def partition_of(self, time: float) -> int:
        """Time bucket (partition) of an update issued at ``time``."""
        return int(time // self.bucket_duration)

    def label_time(self, partition: int) -> float:
        """Common reference time of a partition (the end of its bucket)."""
        return (partition + 1) * self.bucket_duration

    def key_for(self, obj: MovingObject) -> int:
        """Bx key of an object snapshot."""
        partition = self.partition_of(obj.reference_time)
        position = obj.position_at(self.label_time(partition))
        cell = self.grid.cell_of(position)
        return partition * self._curve_size + self.curve.encode(*cell)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def bulk_load(self, objects) -> None:
        """Build the index from ``objects`` with one sorted B+-tree packing.

        Bx keys are computed for every snapshot up front (one pass that also
        feeds the velocity histogram and the partition counters), then the
        underlying B+-tree is leaf-packed in key order instead of descending
        from the root once per object.

        Raises:
            ValueError: if the index is not empty.
        """
        objects = list(objects)
        if self.size:
            raise ValueError("bulk_load requires an empty index")
        if not objects:
            return
        curve_size = self._curve_size
        pairs = []
        for obj in objects:
            self.current_time = max(self.current_time, obj.reference_time)
            partition = self.partition_of(obj.reference_time)
            self._partition_counts[partition] = (
                self._partition_counts.get(partition, 0) + 1
            )
            position = obj.position_at(self.label_time(partition))
            self.histogram.add(position, obj.velocity)
            cell = self.grid.cell_of(position)
            key = partition * curve_size + self.curve.encode(*cell)
            pairs.append((key, obj))
        self.btree.bulk_load(pairs)
        self.size = len(objects)

    def insert(self, obj: MovingObject) -> None:
        """Insert an object snapshot."""
        self.current_time = max(self.current_time, obj.reference_time)
        partition = self.partition_of(obj.reference_time)
        self.btree.insert(self.key_for(obj), obj)
        self._partition_counts[partition] = self._partition_counts.get(partition, 0) + 1
        # The histogram is keyed by the *indexed* (label-time) position so the
        # query-window refinement reasons about the same positions the keys
        # encode; see enlarged_window() for why this keeps refinement safe.
        self.histogram.add(self._label_position(obj), obj.velocity)
        self.size += 1

    def delete(self, obj: MovingObject) -> bool:
        """Delete the snapshot previously inserted for this object."""
        self.current_time = max(self.current_time, obj.reference_time)
        removed = self.btree.delete(self.key_for(obj), obj)
        if removed:
            partition = self.partition_of(obj.reference_time)
            count = self._partition_counts.get(partition, 0) - 1
            if count <= 0:
                self._partition_counts.pop(partition, None)
            else:
                self._partition_counts[partition] = count
            self.histogram.remove(self._label_position(obj))
            self.size -= 1
        return removed

    def _label_position(self, obj: MovingObject) -> Point:
        """Position of ``obj`` at its partition's label time (the indexed position)."""
        partition = self.partition_of(obj.reference_time)
        return obj.position_at(self.label_time(partition))

    def update(self, old: MovingObject, new: MovingObject) -> bool:
        """Delete ``old`` and insert ``new`` (the paper's update model)."""
        removed = self.delete(old)
        self.insert(new)
        return removed

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def range_query(self, query: RangeQuery, exact: bool = True) -> List[int]:
        """Object ids qualifying for ``query``."""
        results: List[int] = []
        seen = set()
        for partition in sorted(self._partition_counts):
            window = self.enlarged_window(query, partition)
            candidates = self._scan_window(partition, window)
            for obj in candidates:
                if obj.oid in seen:
                    continue
                if not exact or query.matches(obj):
                    seen.add(obj.oid)
                    results.append(obj.oid)
        return results

    def enlarged_window(self, query: RangeQuery, partition: int) -> Rect:
        """Query window enlarged back to the partition's label time.

        The first enlargement uses the *global* velocity extrema (the original
        Bx-tree rule, always conservative).  Following Jensen et al.'s
        iterative improvement, the window is then refined: the extrema are
        re-read from the velocity histogram restricted to the current window
        and the enlargement recomputed, which can only shrink the window and
        never drops a qualifying object (every object that can reach the
        query window has its reference position — and therefore its histogram
        cell — inside the current window).  Iteration stops at a fixpoint.

        Exposed separately because the search-space-expansion analysis of
        Figure 7 measures exactly this enlargement.
        """
        base = query.bounding_rect_over_interval()
        label = self.label_time(partition)
        extrema = self.histogram.global_extrema()
        window = _enlarge(base, label, query.start_time, query.end_time, *extrema)
        for _ in range(MAX_ENLARGEMENT_ITERATIONS):
            clipped = window.intersection(self.space) if window.intersects(self.space) else window
            extrema = self.histogram.extrema_in(clipped)
            refined = _enlarge(base, label, query.start_time, query.end_time, *extrema)
            if refined.area >= window.area - 1e-9:
                window = refined
                break
            window = refined
        return window.intersection(self.space) if window.intersects(self.space) else window

    def _scan_window(self, partition: int, window: Rect) -> List[MovingObject]:
        cells = list(self.grid.cells_overlapping(window))
        ranges = self.curve.ranges_for_cells(cells, merge_gap=self.range_merge_gap)
        base_key = partition * self._curve_size
        found: List[MovingObject] = []
        for lo, hi in ranges:
            for _, obj in self.btree.range_search(base_key + lo, base_key + hi):
                found.append(obj)
        return found

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active_partitions(self) -> List[int]:
        return sorted(self._partition_counts)

    def rebuild_histogram(self) -> None:
        """Recompute the velocity histogram from the live objects."""
        self.histogram.rebuild(
            (self._label_position(obj), obj.velocity) for _, obj in self.btree.items()
        )


def _make_curve(kind: str, order: int) -> SpaceFillingCurve:
    if kind == "hilbert":
        return HilbertCurve(order)
    if kind in ("z", "morton"):
        return ZCurve(order)
    raise ValueError(f"unknown space-filling curve: {kind!r}")


def _enlarge(
    base: Rect,
    label_time: float,
    start_time: float,
    end_time: float,
    min_vx: float,
    min_vy: float,
    max_vx: float,
    max_vy: float,
) -> Rect:
    """Enlarge ``base`` so it covers, at ``label_time``, every object that could
    be inside ``base`` at some time in ``[start_time, end_time]``.

    An object indexed at position ``p`` (at the label time) with velocity
    ``v`` is at ``p + v (t - label_time)`` at time ``t``; it can fall in the
    window iff ``p`` lies in the window shifted by ``-v (t - label_time)``.
    Taking the extreme velocities and the extreme ``t`` of the interval
    yields the enlarged boundaries below (valid for query times before or
    after the label time — the signs work out in both cases).
    """
    dt_start = start_time - label_time
    dt_end = end_time - label_time

    def displacement_extremes(v_min: float, v_max: float) -> Tuple[float, float]:
        products = (
            v_min * dt_start,
            v_min * dt_end,
            v_max * dt_start,
            v_max * dt_end,
        )
        return min(products), max(products)

    x_disp_min, x_disp_max = displacement_extremes(min_vx, max_vx)
    y_disp_min, y_disp_max = displacement_extremes(min_vy, max_vy)
    return Rect(
        base.x_min - x_disp_max,
        base.y_min - y_disp_max,
        base.x_max - x_disp_min,
        base.y_max - y_disp_min,
    )
