"""Grid-based velocity histogram.

Section 3.2 of the paper: "histograms on a grid base are maintained for the
maximum/minimum velocity of different portions of the data space and the
query window is enlarged according to the maximum/minimum velocity in the
region it covers."  The histogram stores, per grid cell, the extreme
velocity components of the objects whose reference position falls in that
cell.

Exact maintenance of a maximum under deletions would require keeping every
value; like the original implementation, the histogram only grows on insert
and is periodically rebuilt from the live objects (``rebuild``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.bxtree.grid import Grid
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.vector import Vector


class VelocityHistogram:
    """Per-cell min/max velocity components over a uniform grid."""

    def __init__(self, grid: Grid) -> None:
        self.grid = grid
        shape = (grid.cells_x, grid.cells_y)
        self._max_vx = np.zeros(shape)
        self._min_vx = np.zeros(shape)
        self._max_vy = np.zeros(shape)
        self._min_vy = np.zeros(shape)
        self._count = np.zeros(shape, dtype=np.int64)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, position: Point, velocity: Vector) -> None:
        """Record an object's velocity in the cell of its position."""
        cx, cy = self.grid.cell_of(position)
        if self._count[cx, cy] == 0:
            self._max_vx[cx, cy] = velocity.vx
            self._min_vx[cx, cy] = velocity.vx
            self._max_vy[cx, cy] = velocity.vy
            self._min_vy[cx, cy] = velocity.vy
        else:
            self._max_vx[cx, cy] = max(self._max_vx[cx, cy], velocity.vx)
            self._min_vx[cx, cy] = min(self._min_vx[cx, cy], velocity.vx)
            self._max_vy[cx, cy] = max(self._max_vy[cx, cy], velocity.vy)
            self._min_vy[cx, cy] = min(self._min_vy[cx, cy], velocity.vy)
        self._count[cx, cy] += 1

    def remove(self, position: Point) -> None:
        """Note the departure of an object (extrema are kept conservatively)."""
        cx, cy = self.grid.cell_of(position)
        if self._count[cx, cy] > 0:
            self._count[cx, cy] -= 1

    def rebuild(self, entries: Iterable[Tuple[Point, Vector]]) -> None:
        """Recompute the histogram from scratch from the live objects."""
        self._max_vx.fill(0.0)
        self._min_vx.fill(0.0)
        self._max_vy.fill(0.0)
        self._min_vy.fill(0.0)
        self._count.fill(0)
        for position, velocity in entries:
            self.add(position, velocity)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def extrema_in(self, rect: Rect) -> Tuple[float, float, float, float]:
        """``(min_vx, min_vy, max_vx, max_vy)`` over the cells covered by ``rect``.

        Cells with no recorded objects contribute zero velocity (they cannot
        send objects into the window).  If no covered cell has any objects,
        all extrema are zero and the query window is not enlarged.
        """
        lo_x, lo_y = self.grid.cell_of(Point(rect.x_min, rect.y_min))
        hi_x, hi_y = self.grid.cell_of(Point(rect.x_max, rect.y_max))
        counts = self._count[lo_x : hi_x + 1, lo_y : hi_y + 1]
        mask = counts > 0
        if not mask.any():
            return (0.0, 0.0, 0.0, 0.0)
        min_vx = float(np.min(self._min_vx[lo_x : hi_x + 1, lo_y : hi_y + 1][mask]))
        min_vy = float(np.min(self._min_vy[lo_x : hi_x + 1, lo_y : hi_y + 1][mask]))
        max_vx = float(np.max(self._max_vx[lo_x : hi_x + 1, lo_y : hi_y + 1][mask]))
        max_vy = float(np.max(self._max_vy[lo_x : hi_x + 1, lo_y : hi_y + 1][mask]))
        return (min_vx, min_vy, max_vx, max_vy)

    def global_extrema(self) -> Tuple[float, float, float, float]:
        """Extrema over the whole data space."""
        return self.extrema_in(self.grid.space)

    @property
    def total_objects(self) -> int:
        return int(self._count.sum())
