"""Grid-based velocity histogram.

Section 3.2 of the paper: "histograms on a grid base are maintained for the
maximum/minimum velocity of different portions of the data space and the
query window is enlarged according to the maximum/minimum velocity in the
region it covers."  The histogram stores, per grid cell, the extreme
velocity components of the objects whose reference position falls in that
cell.

Exact maintenance of a maximum under deletions would require keeping every
value; like the original implementation, the histogram only grows on insert
and is periodically rebuilt from the live objects (``rebuild``).
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from repro.bxtree.grid import Grid
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.vector import Vector


class VelocityHistogram:
    """Per-cell min/max velocity components over a uniform grid."""

    def __init__(self, grid: Grid) -> None:
        self.grid = grid
        shape = (grid.cells_x, grid.cells_y)
        self._max_vx = np.zeros(shape)
        self._min_vx = np.zeros(shape)
        self._max_vy = np.zeros(shape)
        self._min_vy = np.zeros(shape)
        self._count = np.zeros(shape, dtype=np.int64)
        #: Monotone change counter; bumped by every mutation so derived
        #: values (the global extrema below) can be cached safely.
        self._version = 0
        self._global_extrema_cache: Optional[Tuple[int, Tuple[float, float, float, float]]] = None

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def add(self, position: Point, velocity: Vector) -> None:
        """Record an object's velocity in the cell of its position."""
        self._version += 1
        cx, cy = self.grid.cell_of(position)
        if self._count[cx, cy] == 0:
            self._max_vx[cx, cy] = velocity.vx
            self._min_vx[cx, cy] = velocity.vx
            self._max_vy[cx, cy] = velocity.vy
            self._min_vy[cx, cy] = velocity.vy
        else:
            self._max_vx[cx, cy] = max(self._max_vx[cx, cy], velocity.vx)
            self._min_vx[cx, cy] = min(self._min_vx[cx, cy], velocity.vx)
            self._max_vy[cx, cy] = max(self._max_vy[cx, cy], velocity.vy)
            self._min_vy[cx, cy] = min(self._min_vy[cx, cy], velocity.vy)
        self._count[cx, cy] += 1

    def remove(self, position: Point) -> None:
        """Note the departure of an object (extrema are kept conservatively)."""
        self._version += 1
        cx, cy = self.grid.cell_of(position)
        if self._count[cx, cy] > 0:
            self._count[cx, cy] -= 1

    def add_batch(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        vxs: np.ndarray,
        vys: np.ndarray,
    ) -> None:
        """Vectorized :meth:`add` over parallel position/velocity arrays.

        A cell that is empty when the batch arrives takes its extrema from
        the batch alone (the reset branch of :meth:`add`), while occupied
        cells union the new velocities in.  Note one deliberate divergence
        from interleaved scalar replay: when a batch both empties a cell
        and repopulates it, the batched remove-then-add order always takes
        the reset branch, whereas some scalar interleavings would have
        unioned into the stale (wider) extrema first.  The batched state is
        the *tighter* of the two and still covers every live occupant, so
        query enlargement stays conservative and exact answers are
        unaffected — only candidate counts can shrink.
        """
        if xs.size == 0:
            return
        self._version += 1
        cx, cy = self.grid.cells_of_arrays(xs, ys)
        empty = self._count[cx, cy] == 0
        if empty.any():
            ecx, ecy = cx[empty], cy[empty]
            # Sentinels: every reset cell receives at least one add below.
            self._max_vx[ecx, ecy] = -np.inf
            self._min_vx[ecx, ecy] = np.inf
            self._max_vy[ecx, ecy] = -np.inf
            self._min_vy[ecx, ecy] = np.inf
        cells = (cx, cy)
        np.maximum.at(self._max_vx, cells, vxs)
        np.minimum.at(self._min_vx, cells, vxs)
        np.maximum.at(self._max_vy, cells, vys)
        np.minimum.at(self._min_vy, cells, vys)
        np.add.at(self._count, cells, 1)

    def remove_batch(self, xs: np.ndarray, ys: np.ndarray) -> None:
        """Vectorized :meth:`remove` (counts never drop below zero)."""
        if xs.size == 0:
            return
        self._version += 1
        cx, cy = self.grid.cells_of_arrays(xs, ys)
        np.subtract.at(self._count, (cx, cy), 1)
        np.maximum(self._count, 0, out=self._count)

    def rebuild(self, entries: Iterable[Tuple[Point, Vector]]) -> None:
        """Recompute the histogram from scratch from the live objects."""
        self._version += 1
        self._max_vx.fill(0.0)
        self._min_vx.fill(0.0)
        self._max_vy.fill(0.0)
        self._min_vy.fill(0.0)
        self._count.fill(0)
        for position, velocity in entries:
            self.add(position, velocity)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def extrema_in(self, rect: Rect) -> Tuple[float, float, float, float]:
        """``(min_vx, min_vy, max_vx, max_vy)`` over the cells covered by ``rect``.

        Cells with no recorded objects contribute zero velocity (they cannot
        send objects into the window).  If no covered cell has any objects,
        all extrema are zero and the query window is not enlarged.
        """
        lo_x, lo_y = self.grid.cell_of(Point(rect.x_min, rect.y_min))
        hi_x, hi_y = self.grid.cell_of(Point(rect.x_max, rect.y_max))
        counts = self._count[lo_x : hi_x + 1, lo_y : hi_y + 1]
        mask = counts > 0
        if not mask.any():
            return (0.0, 0.0, 0.0, 0.0)
        min_vx = float(np.min(self._min_vx[lo_x : hi_x + 1, lo_y : hi_y + 1][mask]))
        min_vy = float(np.min(self._min_vy[lo_x : hi_x + 1, lo_y : hi_y + 1][mask]))
        max_vx = float(np.max(self._max_vx[lo_x : hi_x + 1, lo_y : hi_y + 1][mask]))
        max_vy = float(np.max(self._max_vy[lo_x : hi_x + 1, lo_y : hi_y + 1][mask]))
        return (min_vx, min_vy, max_vx, max_vy)

    def global_extrema(self) -> Tuple[float, float, float, float]:
        """Extrema over the whole data space.

        Cached per histogram version: query enlargement reads the global
        extrema once per partition per query, so between updates this turns
        a full-grid masked reduction into a tuple lookup.
        """
        cached = self._global_extrema_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        extrema = self.extrema_in(self.grid.space)
        self._global_extrema_cache = (self._version, extrema)
        return extrema

    @property
    def total_objects(self) -> int:
        return int(self._count.sum())
