"""Space-filling curves: Hilbert and Z-order (Morton).

The Bx-tree maps 2-D grid cells to 1-D keys with a space-filling curve so
that spatial proximity is approximately preserved.  The paper's experiments
use the Hilbert curve; the Z-curve is provided as the alternative the
original Bx-tree paper also supports (and is used in one ablation bench).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Tuple


class SpaceFillingCurve(ABC):
    """Bijection between grid cells ``(cx, cy)`` and curve indexes.

    Args:
        order: number of bits per dimension; the grid is ``2^order`` cells on
            a side and curve indexes span ``[0, 4^order)``.
    """

    def __init__(self, order: int) -> None:
        if order < 1 or order > 31:
            raise ValueError("order must be between 1 and 31")
        self.order = order
        self.cells_per_side = 1 << order

    @abstractmethod
    def encode(self, cx: int, cy: int) -> int:
        """Curve index of grid cell ``(cx, cy)``."""

    @abstractmethod
    def decode(self, index: int) -> Tuple[int, int]:
        """Grid cell of curve index ``index``."""

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _check_cell(self, cx: int, cy: int) -> None:
        if not (0 <= cx < self.cells_per_side and 0 <= cy < self.cells_per_side):
            raise ValueError(
                f"cell ({cx}, {cy}) outside the {self.cells_per_side}^2 grid"
            )

    @property
    def max_index(self) -> int:
        return self.cells_per_side * self.cells_per_side - 1

    def ranges_for_cells(
        self, cells: Iterable[Tuple[int, int]], merge_gap: int = 0
    ) -> List[Tuple[int, int]]:
        """Merge the curve indexes of ``cells`` into sorted inclusive ranges.

        This is how a rectangular (enlarged) query window becomes a set of
        B+-tree range scans.  Consecutive indexes always collapse into one
        range; ``merge_gap`` additionally merges ranges separated by at most
        that many curve positions, trading a short extra leaf scan for one
        fewer root-to-leaf descent (the standard "jump" optimization of
        Bx-tree query processing).
        """
        if merge_gap < 0:
            raise ValueError("merge_gap must be non-negative")
        indexes = sorted(self.encode(cx, cy) for cx, cy in cells)
        ranges: List[Tuple[int, int]] = []
        for index in indexes:
            if ranges and index <= ranges[-1][1] + 1 + merge_gap:
                ranges[-1] = (ranges[-1][0], max(ranges[-1][1], index))
            else:
                ranges.append((index, index))
        return ranges


class ZCurve(SpaceFillingCurve):
    """Morton (Z-order) curve: bit interleaving of the cell coordinates."""

    def encode(self, cx: int, cy: int) -> int:
        self._check_cell(cx, cy)
        return _interleave(cx) | (_interleave(cy) << 1)

    def decode(self, index: int) -> Tuple[int, int]:
        if not (0 <= index <= self.max_index):
            raise ValueError(f"index {index} outside the curve")
        return _deinterleave(index), _deinterleave(index >> 1)


class HilbertCurve(SpaceFillingCurve):
    """Hilbert curve via the classic rotate-and-reflect construction."""

    def encode(self, cx: int, cy: int) -> int:
        self._check_cell(cx, cy)
        rx = ry = 0
        d = 0
        x, y = cx, cy
        s = self.cells_per_side // 2
        while s > 0:
            rx = 1 if (x & s) > 0 else 0
            ry = 1 if (y & s) > 0 else 0
            d += s * s * ((3 * rx) ^ ry)
            x, y = _hilbert_rotate(s, x, y, rx, ry)
            s //= 2
        return d

    def decode(self, index: int) -> Tuple[int, int]:
        if not (0 <= index <= self.max_index):
            raise ValueError(f"index {index} outside the curve")
        t = index
        x = y = 0
        s = 1
        while s < self.cells_per_side:
            rx = 1 & (t // 2)
            ry = 1 & (t ^ rx)
            x, y = _hilbert_rotate(s, x, y, rx, ry)
            x += s * rx
            y += s * ry
            t //= 4
            s *= 2
        return x, y


def _hilbert_rotate(s: int, x: int, y: int, rx: int, ry: int) -> Tuple[int, int]:
    """Rotate/flip the quadrant as required by the Hilbert construction."""
    if ry == 0:
        if rx == 1:
            x = s - 1 - x
            y = s - 1 - y
        x, y = y, x
    return x, y


def _interleave(value: int) -> int:
    """Spread the bits of ``value`` so they occupy even bit positions.

    Constant-time magic-number bit spreading (Hacker's Delight / "Interleave
    bits by Binary Magic Numbers"): each step doubles the gap between
    populated bit groups, so a 32-bit coordinate spreads into its 64-bit
    Morton half in five mask-and-shift rounds instead of one loop iteration
    per set bit.  Supports the full ``order <= 31`` coordinate range.
    """
    value &= 0xFFFFFFFF
    value = (value | (value << 16)) & 0x0000FFFF0000FFFF
    value = (value | (value << 8)) & 0x00FF00FF00FF00FF
    value = (value | (value << 4)) & 0x0F0F0F0F0F0F0F0F
    value = (value | (value << 2)) & 0x3333333333333333
    value = (value | (value << 1)) & 0x5555555555555555
    return value


def _deinterleave(value: int) -> int:
    """Inverse of :func:`_interleave` (collect the even bit positions)."""
    value &= 0x5555555555555555
    value = (value | (value >> 1)) & 0x3333333333333333
    value = (value | (value >> 2)) & 0x0F0F0F0F0F0F0F0F
    value = (value | (value >> 4)) & 0x00FF00FF00FF00FF
    value = (value | (value >> 8)) & 0x0000FFFF0000FFFF
    value = (value | (value >> 16)) & 0x00000000FFFFFFFF
    return value
