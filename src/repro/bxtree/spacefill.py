"""Space-filling curves: Hilbert and Z-order (Morton).

The Bx-tree maps 2-D grid cells to 1-D keys with a space-filling curve so
that spatial proximity is approximately preserved.  The paper's experiments
use the Hilbert curve; the Z-curve is provided as the alternative the
original Bx-tree paper also supports (and is used in one ablation bench).

Two encoding surfaces are exposed.  ``encode``/``decode`` are the scalar
object API; ``encode_many`` is the batch kernel: it takes whole integer
arrays of cell coordinates and runs the same construction with vectorized
numpy arithmetic (branchless rotate/flip for the Hilbert case), which is
what makes decomposing a query window into curve ranges cheap — a window
covering thousands of cells costs a handful of array operations instead of
one Python loop iteration per cell.  Both surfaces produce bit-identical
indexes; use the scalar API for single cells and validated call sites, the
batch kernel inside hot loops.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, List, Tuple

import numpy as np


class SpaceFillingCurve(ABC):
    """Bijection between grid cells ``(cx, cy)`` and curve indexes.

    Args:
        order: number of bits per dimension; the grid is ``2^order`` cells on
            a side and curve indexes span ``[0, 4^order)``.
    """

    def __init__(self, order: int) -> None:
        if order < 1 or order > 31:
            raise ValueError("order must be between 1 and 31")
        self.order = order
        self.cells_per_side = 1 << order

    @abstractmethod
    def encode(self, cx: int, cy: int) -> int:
        """Curve index of grid cell ``(cx, cy)``."""

    @abstractmethod
    def decode(self, index: int) -> Tuple[int, int]:
        """Grid cell of curve index ``index``."""

    @abstractmethod
    def encode_many(self, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        """Curve indexes of whole arrays of grid cells (vectorized).

        Args:
            cx, cy: integer arrays of equal length.

        Returns:
            An ``int64`` array of curve indexes, bit-identical to calling
            :meth:`encode` element by element.

        Raises:
            ValueError: if any cell lies outside the grid.
        """

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _check_cell(self, cx: int, cy: int) -> None:
        if not (0 <= cx < self.cells_per_side and 0 <= cy < self.cells_per_side):
            raise ValueError(
                f"cell ({cx}, {cy}) outside the {self.cells_per_side}^2 grid"
            )

    def _check_cells(self, cx: np.ndarray, cy: np.ndarray) -> None:
        side = self.cells_per_side
        if cx.shape != cy.shape:
            raise ValueError("cx and cy must have the same shape")
        if cx.size and (
            int(cx.min()) < 0
            or int(cy.min()) < 0
            or int(cx.max()) >= side
            or int(cy.max()) >= side
        ):
            raise ValueError(f"cells outside the {side}^2 grid")

    @property
    def max_index(self) -> int:
        return self.cells_per_side * self.cells_per_side - 1

    def ranges_for_cells(
        self, cells: Iterable[Tuple[int, int]], merge_gap: int = 0
    ) -> List[Tuple[int, int]]:
        """Merge the curve indexes of ``cells`` into sorted inclusive ranges.

        This is how a rectangular (enlarged) query window becomes a set of
        B+-tree range scans.  Consecutive indexes always collapse into one
        range; ``merge_gap`` additionally merges ranges separated by at most
        that many curve positions, trading a short extra leaf scan for one
        fewer root-to-leaf descent (the standard "jump" optimization of
        Bx-tree query processing).
        """
        if merge_gap < 0:
            raise ValueError("merge_gap must be non-negative")
        cell_list = list(cells)
        if not cell_list:
            return []
        cx = np.fromiter((c[0] for c in cell_list), dtype=np.int64, count=len(cell_list))
        cy = np.fromiter((c[1] for c in cell_list), dtype=np.int64, count=len(cell_list))
        indexes = np.sort(self.encode_many(cx, cy))
        return self.ranges_from_sorted_indexes(indexes, merge_gap=merge_gap)

    @staticmethod
    def ranges_from_sorted_indexes(
        indexes: np.ndarray, merge_gap: int = 0
    ) -> List[Tuple[int, int]]:
        """Merge a sorted index array into inclusive ranges (see above).

        Split points are found with one vectorized gap comparison, so the
        cost is O(n) array work plus O(#ranges) Python, not O(n) Python.
        """
        if merge_gap < 0:
            raise ValueError("merge_gap must be non-negative")
        if indexes.size == 0:
            return []
        breaks = np.flatnonzero(np.diff(indexes) > merge_gap + 1)
        starts = indexes[np.concatenate(([0], breaks + 1))]
        ends = indexes[np.concatenate((breaks, [indexes.size - 1]))]
        return [(int(lo), int(hi)) for lo, hi in zip(starts, ends)]


class ZCurve(SpaceFillingCurve):
    """Morton (Z-order) curve: bit interleaving of the cell coordinates."""

    def encode(self, cx: int, cy: int) -> int:
        self._check_cell(cx, cy)
        return _interleave(cx) | (_interleave(cy) << 1)

    def decode(self, index: int) -> Tuple[int, int]:
        if not (0 <= index <= self.max_index):
            raise ValueError(f"index {index} outside the curve")
        return _deinterleave(index), _deinterleave(index >> 1)

    def encode_many(self, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        self._check_cells(cx, cy)
        return _interleave_many(cx.astype(np.int64)) | (
            _interleave_many(cy.astype(np.int64)) << 1
        )


#: Largest curve order for which ``encode_many`` memoizes the full cell →
#: index table (2^(2*order) int64 entries; order 9 costs 2 MB).  The table
#: turns a batch encode into one fancy-index gather, which matters because
#: the vectorized Hilbert construction still pays ~50 numpy dispatches.
MAX_ENCODE_TABLE_ORDER = 9


class HilbertCurve(SpaceFillingCurve):
    """Hilbert curve via the classic rotate-and-reflect construction."""

    #: Shared per-order encode tables: every curve of one order encodes
    #: identically, so instances (e.g. one Bx-tree per DVA partition)
    #: memoize the table once per process instead of once per tree.
    _TABLE_CACHE: dict = {}

    def encode(self, cx: int, cy: int) -> int:
        self._check_cell(cx, cy)
        rx = ry = 0
        d = 0
        x, y = cx, cy
        s = self.cells_per_side // 2
        while s > 0:
            rx = 1 if (x & s) > 0 else 0
            ry = 1 if (y & s) > 0 else 0
            d += s * s * ((3 * rx) ^ ry)
            x, y = _hilbert_rotate(s, x, y, rx, ry)
            s //= 2
        return d

    def decode(self, index: int) -> Tuple[int, int]:
        if not (0 <= index <= self.max_index):
            raise ValueError(f"index {index} outside the curve")
        t = index
        x = y = 0
        s = 1
        while s < self.cells_per_side:
            rx = 1 & (t // 2)
            ry = 1 & (t ^ rx)
            x, y = _hilbert_rotate(s, x, y, rx, ry)
            x += s * rx
            y += s * ry
            t //= 4
            s *= 2
        return x, y

    def encode_many(self, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        self._check_cells(cx, cy)
        if self.order <= MAX_ENCODE_TABLE_ORDER:
            table = HilbertCurve._TABLE_CACHE.get(self.order)
            if table is None:
                side = self.cells_per_side
                gx = np.repeat(np.arange(side, dtype=np.int64), side)
                gy = np.tile(np.arange(side, dtype=np.int64), side)
                table = self._encode_arrays(gx, gy).reshape(side, side)
                HilbertCurve._TABLE_CACHE[self.order] = table
            return table[cx, cy]
        return self._encode_arrays(cx, cy)

    def _encode_arrays(self, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        x = cx.astype(np.int64, copy=True)
        y = cy.astype(np.int64, copy=True)
        d = np.zeros(x.shape, dtype=np.int64)
        s = self.cells_per_side >> 1
        while s > 0:
            rx = ((x & s) > 0).astype(np.int64)
            ry = ((y & s) > 0).astype(np.int64)
            d += (s * s) * ((3 * rx) ^ ry)
            # Branchless _hilbert_rotate: flip both coordinates in the
            # (rx=1, ry=0) quadrant, then swap whenever ry == 0.
            flip = (ry == 0) & (rx == 1)
            np.subtract(s - 1, x, out=x, where=flip)
            np.subtract(s - 1, y, out=y, where=flip)
            swap = ry == 0
            swapped_x = np.where(swap, y, x)
            np.copyto(y, x, where=swap)
            x = swapped_x
            s >>= 1
        return d


def _hilbert_rotate(s: int, x: int, y: int, rx: int, ry: int) -> Tuple[int, int]:
    """Rotate/flip the quadrant as required by the Hilbert construction."""
    if ry == 0:
        if rx == 1:
            x = s - 1 - x
            y = s - 1 - y
        x, y = y, x
    return x, y


def _interleave(value: int) -> int:
    """Spread the bits of ``value`` so they occupy even bit positions.

    Constant-time magic-number bit spreading (Hacker's Delight / "Interleave
    bits by Binary Magic Numbers"): each step doubles the gap between
    populated bit groups, so a 32-bit coordinate spreads into its 64-bit
    Morton half in five mask-and-shift rounds instead of one loop iteration
    per set bit.  Supports the full ``order <= 31`` coordinate range.
    """
    value &= 0xFFFFFFFF
    value = (value | (value << 16)) & 0x0000FFFF0000FFFF
    value = (value | (value << 8)) & 0x00FF00FF00FF00FF
    value = (value | (value << 4)) & 0x0F0F0F0F0F0F0F0F
    value = (value | (value << 2)) & 0x3333333333333333
    value = (value | (value << 1)) & 0x5555555555555555
    return value


def _interleave_many(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`_interleave` over an ``int64`` array."""
    values = values & 0xFFFFFFFF
    values = (values | (values << 16)) & 0x0000FFFF0000FFFF
    values = (values | (values << 8)) & 0x00FF00FF00FF00FF
    values = (values | (values << 4)) & 0x0F0F0F0F0F0F0F0F
    values = (values | (values << 2)) & 0x3333333333333333
    values = (values | (values << 1)) & 0x5555555555555555
    return values


def _deinterleave(value: int) -> int:
    """Inverse of :func:`_interleave` (collect the even bit positions)."""
    value &= 0x5555555555555555
    value = (value | (value >> 1)) & 0x3333333333333333
    value = (value | (value >> 2)) & 0x0F0F0F0F0F0F0F0F
    value = (value | (value >> 4)) & 0x00FF00FF00FF00FF
    value = (value | (value >> 8)) & 0x0000FFFF0000FFFF
    value = (value | (value >> 16)) & 0x00000000FFFFFFFF
    return value
