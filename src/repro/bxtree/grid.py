"""Uniform grid over a rectangular data space.

The grid converts between continuous coordinates and discrete cell indexes.
It is used both by the Bx-tree (cells are mapped to space-filling-curve
keys) and by the velocity histogram (cells accumulate velocity extrema).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect


@dataclass(frozen=True)
class Grid:
    """A ``cells_x`` x ``cells_y`` uniform grid over ``space``."""

    space: Rect
    cells_x: int
    cells_y: int

    def __post_init__(self) -> None:
        if self.cells_x < 1 or self.cells_y < 1:
            raise ValueError("grid must have at least one cell per dimension")
        if self.space.width <= 0 or self.space.height <= 0:
            raise ValueError("grid space must have positive extent")

    # ------------------------------------------------------------------
    # Cell geometry
    # ------------------------------------------------------------------
    @property
    def cell_width(self) -> float:
        return self.space.width / self.cells_x

    @property
    def cell_height(self) -> float:
        return self.space.height / self.cells_y

    def cell_of(self, point: Point) -> Tuple[int, int]:
        """Cell containing ``point``; points outside the space are clamped."""
        cx = int((point.x - self.space.x_min) / self.cell_width)
        cy = int((point.y - self.space.y_min) / self.cell_height)
        cx = min(max(cx, 0), self.cells_x - 1)
        cy = min(max(cy, 0), self.cells_y - 1)
        return cx, cy

    def cells_of_arrays(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`cell_of` over coordinate arrays (clamped)."""
        cx = ((xs - self.space.x_min) / self.cell_width).astype(np.int64)
        cy = ((ys - self.space.y_min) / self.cell_height).astype(np.int64)
        # minimum/maximum instead of np.clip: same result, less per-call
        # overhead (np.clip re-validates its bounds on every invocation).
        np.minimum(cx, self.cells_x - 1, out=cx)
        np.maximum(cx, 0, out=cx)
        np.minimum(cy, self.cells_y - 1, out=cy)
        np.maximum(cy, 0, out=cy)
        return cx, cy

    def cell_span(self, rect: Rect) -> Tuple[int, int, int, int]:
        """Inclusive cell-index span ``(lo_x, lo_y, hi_x, hi_y)`` covering ``rect``."""
        lo_x, lo_y = self.cell_of(Point(rect.x_min, rect.y_min))
        hi_x, hi_y = self.cell_of(Point(rect.x_max, rect.y_max))
        return lo_x, lo_y, hi_x, hi_y

    def cell_rect(self, cx: int, cy: int) -> Rect:
        """The rectangle covered by cell ``(cx, cy)``."""
        if not (0 <= cx < self.cells_x and 0 <= cy < self.cells_y):
            raise ValueError(f"cell ({cx}, {cy}) outside the grid")
        return Rect(
            self.space.x_min + cx * self.cell_width,
            self.space.y_min + cy * self.cell_height,
            self.space.x_min + (cx + 1) * self.cell_width,
            self.space.y_min + (cy + 1) * self.cell_height,
        )

    def cells_overlapping(self, rect: Rect) -> Iterator[Tuple[int, int]]:
        """All cells that intersect ``rect`` (clipped to the grid)."""
        lo_x, lo_y = self.cell_of(Point(rect.x_min, rect.y_min))
        hi_x, hi_y = self.cell_of(Point(rect.x_max, rect.y_max))
        for cx in range(lo_x, hi_x + 1):
            for cy in range(lo_y, hi_y + 1):
                yield cx, cy

    def cell_count_overlapping(self, rect: Rect) -> int:
        """Number of cells intersecting ``rect`` (without materializing them)."""
        lo_x, lo_y = self.cell_of(Point(rect.x_min, rect.y_min))
        hi_x, hi_y = self.cell_of(Point(rect.x_max, rect.y_max))
        return (hi_x - lo_x + 1) * (hi_y - lo_y + 1)
