"""Axis-aligned rectangle type.

Rectangles are used as MBRs of index nodes, as rectangular range queries,
and as the bounding boxes of transformed (rotated) circular queries.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple

from repro.geometry.point import Point


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle ``[x_min, x_max] x [y_min, y_max]``.

    A rectangle may be degenerate (zero width and/or height), which is how a
    point is represented when inserted into an R-tree-family index.
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float

    def __post_init__(self) -> None:
        if self.x_min > self.x_max or self.y_min > self.y_max:
            raise ValueError(
                "invalid rectangle: "
                f"({self.x_min}, {self.y_min}, {self.x_max}, {self.y_max})"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_point(cls, point: Point) -> "Rect":
        """Degenerate rectangle covering a single point."""
        return cls(point.x, point.y, point.x, point.y)

    @classmethod
    def from_center(cls, center: Point, half_width: float, half_height: float) -> "Rect":
        """Rectangle centered on ``center`` with the given half extents."""
        return cls(
            center.x - half_width,
            center.y - half_height,
            center.x + half_width,
            center.y + half_height,
        )

    @classmethod
    def bounding(cls, rects: Iterable["Rect"]) -> "Rect":
        """Minimum bounding rectangle of a non-empty collection of rectangles."""
        rects = list(rects)
        if not rects:
            raise ValueError("cannot bound an empty collection of rectangles")
        return cls(
            min(r.x_min for r in rects),
            min(r.y_min for r in rects),
            max(r.x_max for r in rects),
            max(r.y_max for r in rects),
        )

    @classmethod
    def bounding_points(cls, points: Iterable[Point]) -> "Rect":
        """Minimum bounding rectangle of a non-empty collection of points."""
        points = list(points)
        if not points:
            raise ValueError("cannot bound an empty collection of points")
        return cls(
            min(p.x for p in points),
            min(p.y for p in points),
            max(p.x for p in points),
            max(p.y for p in points),
        )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def perimeter(self) -> float:
        return 2.0 * (self.width + self.height)

    @property
    def center(self) -> Point:
        return Point((self.x_min + self.x_max) / 2.0, (self.y_min + self.y_max) / 2.0)

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.x_min, self.y_min, self.x_max, self.y_max)

    def corners(self) -> Iterator[Point]:
        """Yield the four corner points."""
        yield Point(self.x_min, self.y_min)
        yield Point(self.x_max, self.y_min)
        yield Point(self.x_max, self.y_max)
        yield Point(self.x_min, self.y_max)

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def contains_point(self, point: Point) -> bool:
        return (
            self.x_min <= point.x <= self.x_max
            and self.y_min <= point.y <= self.y_max
        )

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.x_min <= other.x_min
            and self.y_min <= other.y_min
            and other.x_max <= self.x_max
            and other.y_max <= self.y_max
        )

    def intersects(self, other: "Rect") -> bool:
        return not (
            other.x_min > self.x_max
            or other.x_max < self.x_min
            or other.y_min > self.y_max
            or other.y_max < self.y_min
        )

    # ------------------------------------------------------------------
    # Combinators
    # ------------------------------------------------------------------
    def union(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.x_min, other.x_min),
            min(self.y_min, other.y_min),
            max(self.x_max, other.x_max),
            max(self.y_max, other.y_max),
        )

    def intersection(self, other: "Rect") -> "Rect":
        """Intersection rectangle.

        Raises:
            ValueError: if the rectangles do not intersect.
        """
        if not self.intersects(other):
            raise ValueError("rectangles do not intersect")
        return Rect(
            max(self.x_min, other.x_min),
            max(self.y_min, other.y_min),
            min(self.x_max, other.x_max),
            min(self.y_max, other.y_max),
        )

    def intersection_area(self, other: "Rect") -> float:
        """Area of the overlap, 0.0 when disjoint."""
        dx = min(self.x_max, other.x_max) - max(self.x_min, other.x_min)
        dy = min(self.y_max, other.y_max) - max(self.y_min, other.y_min)
        if dx <= 0.0 or dy <= 0.0:
            return 0.0
        return dx * dy

    def enlarged(self, margin_x: float, margin_y: float) -> "Rect":
        """Rectangle grown by ``margin_x`` on each side in x and ``margin_y`` in y."""
        return Rect(
            self.x_min - margin_x,
            self.y_min - margin_y,
            self.x_max + margin_x,
            self.y_max + margin_y,
        )

    def expanded_by_interval(
        self, dx_min: float, dy_min: float, dx_max: float, dy_max: float
    ) -> "Rect":
        """Grow each boundary independently (used for query enlargement)."""
        return Rect(
            self.x_min + dx_min,
            self.y_min + dy_min,
            self.x_max + dx_max,
            self.y_max + dy_max,
        )

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x_min + dx, self.y_min + dy, self.x_max + dx, self.y_max + dy)

    def enlargement_area(self, other: "Rect") -> float:
        """Extra area needed for this rectangle to also cover ``other``."""
        return self.union(other).area - self.area

    def clipped_to(self, bounds: "Rect") -> "Rect":
        """Clip this rectangle to ``bounds`` (they must overlap)."""
        return self.intersection(bounds)

    def min_distance_to_point(self, point: Point) -> float:
        """Minimum Euclidean distance from the rectangle to ``point``."""
        dx = max(self.x_min - point.x, 0.0, point.x - self.x_max)
        dy = max(self.y_min - point.y, 0.0, point.y - self.y_max)
        return math.hypot(dx, dy)

    def intersects_circle(self, center: Point, radius: float) -> bool:
        """Whether the rectangle intersects a circle (used for circular queries)."""
        return self.min_distance_to_point(center) <= radius


def bounding_rect_of(rects: Sequence[Rect]) -> Rect:
    """Convenience wrapper around :meth:`Rect.bounding`."""
    return Rect.bounding(rects)
