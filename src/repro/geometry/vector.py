"""2-D vector type used for object velocities and DVA directions."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple


@dataclass(frozen=True)
class Vector:
    """A 2-D vector.

    Velocities in the paper live in "velocity space": a velocity is a 2-D
    point whose coordinates are the speed along the x- and y-axes.  The same
    type also represents dominant velocity axes (DVAs), which are unit
    vectors produced by PCA.
    """

    vx: float
    vy: float

    def __iter__(self) -> Iterator[float]:
        yield self.vx
        yield self.vy

    def as_tuple(self) -> Tuple[float, float]:
        """Return the vector as a ``(vx, vy)`` tuple."""
        return (self.vx, self.vy)

    @property
    def magnitude(self) -> float:
        """Euclidean length of the vector (the object's speed)."""
        return math.hypot(self.vx, self.vy)

    @property
    def angle(self) -> float:
        """Angle of the vector in radians, in ``(-pi, pi]``."""
        return math.atan2(self.vy, self.vx)

    def normalized(self) -> "Vector":
        """Return a unit vector in the same direction.

        Raises:
            ValueError: if the vector is the zero vector.
        """
        mag = self.magnitude
        if mag == 0.0:
            raise ValueError("cannot normalize the zero vector")
        return Vector(self.vx / mag, self.vy / mag)

    def dot(self, other: "Vector") -> float:
        """Dot product with ``other``."""
        return self.vx * other.vx + self.vy * other.vy

    def cross(self, other: "Vector") -> float:
        """2-D cross product (signed area) with ``other``."""
        return self.vx * other.vy - self.vy * other.vx

    def scaled(self, factor: float) -> "Vector":
        """Return the vector scaled by ``factor``."""
        return Vector(self.vx * factor, self.vy * factor)

    def rotated(self, angle: float) -> "Vector":
        """Return the vector rotated counter-clockwise by ``angle`` radians."""
        cos_a = math.cos(angle)
        sin_a = math.sin(angle)
        return Vector(
            self.vx * cos_a - self.vy * sin_a,
            self.vx * sin_a + self.vy * cos_a,
        )

    def perpendicular(self) -> "Vector":
        """Return the vector rotated by +90 degrees."""
        return Vector(-self.vy, self.vx)

    def perpendicular_distance_to_axis(self, axis: "Vector") -> float:
        """Perpendicular distance from this velocity point to the axis ``axis``.

        The axis is treated as an infinite line through the origin in the
        direction of ``axis``.  This is the distance measure used by the
        paper's DVA clustering (Algorithm 2) and by the outlier test
        (Section 5.2): the component of the velocity orthogonal to the DVA.
        """
        unit = axis.normalized()
        return abs(self.cross(unit))

    def component_along(self, axis: "Vector") -> float:
        """Signed component of this vector along the (normalized) ``axis``."""
        return self.dot(axis.normalized())

    def __add__(self, other: "Vector") -> "Vector":
        return Vector(self.vx + other.vx, self.vy + other.vy)

    def __sub__(self, other: "Vector") -> "Vector":
        return Vector(self.vx - other.vx, self.vy - other.vy)

    def __neg__(self) -> "Vector":
        return Vector(-self.vx, -self.vy)
