"""Time-parameterized rectangles: an MBR paired with a VBR.

A :class:`MovingRect` is the fundamental bounding structure of the TPR-tree
family (Section 3.1 of the paper).  It captures a minimum bounding rectangle
(MBR) valid at a *reference time* and a velocity bounding rectangle (VBR)
whose four components give the expansion speed of each MBR edge:

* ``v_x_min`` — speed of the lower x boundary (negative means it moves left),
* ``v_x_max`` — speed of the upper x boundary,
* ``v_y_min`` / ``v_y_max`` — same for the y boundaries.

The MBR at a later time ``t`` is obtained by moving every edge at its own
speed for ``t - reference_time`` time units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.geometry import kernels
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.vector import Vector


@dataclass(frozen=True)
class MovingRect:
    """A rectangle whose edges move linearly with time."""

    rect: Rect
    v_x_min: float
    v_y_min: float
    v_x_max: float
    v_y_max: float
    reference_time: float = 0.0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_moving_point(
        cls, position: Point, velocity: Vector, reference_time: float = 0.0
    ) -> "MovingRect":
        """Degenerate moving rectangle for a moving point object."""
        return cls(
            rect=Rect.from_point(position),
            v_x_min=velocity.vx,
            v_y_min=velocity.vy,
            v_x_max=velocity.vx,
            v_y_max=velocity.vy,
            reference_time=reference_time,
        )

    @classmethod
    def bounding(cls, children: Iterable["MovingRect"], reference_time: float) -> "MovingRect":
        """Tight bound over ``children``, all expressed at ``reference_time``.

        Children whose reference time differs are first projected to
        ``reference_time``; the resulting MBR is the union of the projected
        MBRs and each VBR component is the extreme of the children's
        components (the rate of expansion of an edge is the fastest child
        edge in that direction — exactly the TPR-tree's bounding rule).

        The projection/union loop runs in the float kernels, so children
        already anchored at ``reference_time`` (and everything in between)
        cost no intermediate allocations; a single already-anchored child is
        returned as-is.
        """
        if not isinstance(children, (list, tuple)):
            children = list(children)
        if not children:
            raise ValueError("cannot bound an empty collection of moving rectangles")
        if len(children) == 1 and children[0].reference_time == reference_time:
            return children[0]
        x0, y0, x1, y1, vx0, vy0, vx1, vy1 = kernels.bound_extent(children, reference_time)
        return cls(
            rect=Rect(x0, y0, x1, y1),
            v_x_min=vx0,
            v_y_min=vy0,
            v_x_max=vx1,
            v_y_max=vy1,
            reference_time=reference_time,
        )

    # ------------------------------------------------------------------
    # Projection
    # ------------------------------------------------------------------
    def rect_at(self, time: float) -> Rect:
        """The (expanded) MBR at absolute time ``time``.

        The TPR-tree never shrinks bounds when projecting forward, and when
        asked about a time before the reference time it conservatively uses
        the reference-time rectangle.
        """
        elapsed = time - self.reference_time
        if elapsed <= 0.0:
            return self.rect
        return Rect(
            self.rect.x_min + self.v_x_min * elapsed,
            self.rect.y_min + self.v_y_min * elapsed,
            self.rect.x_max + self.v_x_max * elapsed,
            self.rect.y_max + self.v_y_max * elapsed,
        )

    def projected_to(self, time: float) -> "MovingRect":
        """Re-anchor the moving rectangle at a new reference time."""
        if time == self.reference_time:
            return self
        return MovingRect(
            rect=self.rect_at(time),
            v_x_min=self.v_x_min,
            v_y_min=self.v_y_min,
            v_x_max=self.v_x_max,
            v_y_max=self.v_y_max,
            reference_time=time,
        )

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def velocity_extents(self) -> Tuple[float, float, float, float]:
        """``(v_x_min, v_y_min, v_x_max, v_y_max)``."""
        return (self.v_x_min, self.v_y_min, self.v_x_max, self.v_y_max)

    @property
    def expansion_rate_x(self) -> float:
        """Rate at which the x extent grows per time unit (>= 0 for a valid bound)."""
        return self.v_x_max - self.v_x_min

    @property
    def expansion_rate_y(self) -> float:
        """Rate at which the y extent grows per time unit."""
        return self.v_y_max - self.v_y_min

    def area_at(self, time: float) -> float:
        return self.rect_at(time).area

    def contains(self, other: "MovingRect", start: float, end: float) -> bool:
        """Conservative containment test over the interval ``[start, end]``.

        True when ``other`` is inside this bound both at ``start`` and at
        ``end`` *and* every edge of this bound moves at least as fast
        outward; sufficient for the bounding invariant checks in tests.
        """
        return (
            self.rect_at(start).contains_rect(other.rect_at(start))
            and self.rect_at(end).contains_rect(other.rect_at(end))
            and self.v_x_min <= other.v_x_min
            and self.v_y_min <= other.v_y_min
            and self.v_x_max >= other.v_x_max
            and self.v_y_max >= other.v_y_max
        )

    def intersects_during(self, other: "MovingRect", start: float, end: float) -> bool:
        """Whether two moving rectangles intersect at any time in ``[start, end]``.

        The boundaries are piecewise linear in time (frozen before their
        reference time), so the window is split at any reference time falling
        strictly inside it and each purely linear piece is solved exactly:
        per axis the sub-interval during which the projections overlap, then
        the rectangles intersect iff the per-axis intervals share a point.
        In index workloads the reference times precede the window, making the
        whole window one linear piece — that common case is also what the
        float kernel in :func:`repro.geometry.kernels.intersects_interval`
        inlines.
        """
        if end < start:
            raise ValueError("end must not precede start")
        cuts = {start, end}
        for ref in (self.reference_time, other.reference_time):
            if start < ref < end:
                cuts.add(ref)
        points = sorted(cuts)
        pieces = list(zip(points, points[1:])) or [(start, end)]
        for lo, hi in pieces:
            if self._intersects_linear_piece(other, lo, hi):
                return True
        return False

    def _intersects_linear_piece(self, other: "MovingRect", lo: float, hi: float) -> bool:
        """Intersection test over ``[lo, hi]`` with no reference time inside.

        Each rectangle is either frozen for the whole piece (its reference
        time is at or past ``hi``) or moves linearly with its full VBR.
        """
        duration = hi - lo

        def axis_window(a_lo, a_hi, a_v_lo, a_v_hi, a_ref, b_lo, b_hi, b_v_lo, b_v_hi, b_ref):
            if a_ref <= lo:
                a_lo += a_v_lo * (lo - a_ref)
                a_hi += a_v_hi * (lo - a_ref)
            else:  # frozen for the whole piece
                a_v_lo = a_v_hi = 0.0
            if b_ref <= lo:
                b_lo += b_v_lo * (lo - b_ref)
                b_hi += b_v_hi * (lo - b_ref)
            else:
                b_v_lo = b_v_hi = 0.0
            return _linear_overlap_interval(
                a_lo, a_hi, a_v_lo, a_v_hi, b_lo, b_hi, b_v_lo, b_v_hi, 0.0, duration, lo
            )

        x_window = axis_window(
            self.rect.x_min,
            self.rect.x_max,
            self.v_x_min,
            self.v_x_max,
            self.reference_time,
            other.rect.x_min,
            other.rect.x_max,
            other.v_x_min,
            other.v_x_max,
            other.reference_time,
        )
        if x_window is None:
            return False
        y_window = axis_window(
            self.rect.y_min,
            self.rect.y_max,
            self.v_y_min,
            self.v_y_max,
            self.reference_time,
            other.rect.y_min,
            other.rect.y_max,
            other.v_y_min,
            other.v_y_max,
            other.reference_time,
        )
        if y_window is None:
            return False
        return max(x_window[0], y_window[0]) <= min(x_window[1], y_window[1])


def _linear_overlap_interval(
    a_lo: float,
    a_hi: float,
    a_v_lo: float,
    a_v_hi: float,
    b_lo: float,
    b_hi: float,
    b_v_lo: float,
    b_v_hi: float,
    t0: float,
    t1: float,
    offset: float,
):
    """Overlap interval of two linearly moving 1-D intervals over ``[t0, t1]``.

    All positions are given at local time ``t0``; ``offset`` converts local
    times back to absolute times in the returned pair.
    """
    # Overlap requires a_lo(t) <= b_hi(t) and b_lo(t) <= a_hi(t).
    lo, hi = t0, t1
    for (p, pv, q, qv) in (
        (a_lo, a_v_lo, b_hi, b_v_hi),  # a_lo <= b_hi
        (b_lo, b_v_lo, a_hi, a_v_hi),  # b_lo <= a_hi
    ):
        # Constraint: p + pv * (t - t0) <= q + qv * (t - t0)
        diff0 = p - q
        rate = pv - qv
        if rate == 0.0:
            if diff0 > 1e-12:
                return None
            continue
        crossing = t0 - diff0 / rate
        if rate > 0.0:
            # Constraint satisfied for t <= crossing.
            hi = min(hi, crossing)
        else:
            lo = max(lo, crossing)
        if lo > hi:
            return None
    if lo > hi:
        return None
    return (lo + (offset - t0), hi + (offset - t0))
