"""Allocation-free geometry kernels for the index hot paths.

The object API (:class:`~repro.geometry.Rect`, :class:`~repro.geometry.MovingRect`)
is the right interface for correctness-critical, low-frequency code: it
validates its inputs, reads naturally, and is what tests reason about.  But
the TPR-tree family evaluates its cost metrics thousands of times per
insertion (choose-subtree scans every child, a split scores every legal
distribution, pick-worst re-scores every entry), and every one of those
evaluations used to allocate fresh frozen dataclasses just to throw them
away.  At bench scale this Python-object churn dominates wall-clock time.

This module is the flat, structure-of-arrays alternative for those loops:

* a *projected rect* is a plain 4-tuple ``(x_min, y_min, x_max, y_max)``;
* an *extent* is a plain 8-tuple ``(x_min, y_min, x_max, y_max,
  v_x_min, v_y_min, v_x_max, v_y_max)`` anchored at a caller-tracked time;
* batch kernels take any sequence of objects shaped like ``MovingRect``
  (a ``rect`` with ``x_min``/... plus the four VBR components and a
  ``reference_time``) and return tuples/lists of floats.

When to use what:

* **Object API** — public methods, tests, anything called once per query or
  per node.  Clarity and validation beat speed there.
* **Kernels** — per-entry loops inside choose-subtree, split scoring,
  forced reinsertion, range scans and bulk loading, where the same handful
  of float operations runs for every candidate and intermediate ``Rect`` /
  ``MovingRect`` objects would be garbage the moment they are compared.

All kernels follow the TPR-tree projection convention: projecting to a time
at or before the anchor's reference time returns the reference rectangle
unchanged (bounds never shrink going backwards).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

ProjectedRect = Tuple[float, float, float, float]
Extent = Tuple[float, float, float, float, float, float, float, float]

_INF = float("inf")


# ----------------------------------------------------------------------
# Projection
# ----------------------------------------------------------------------
def project(bound, time: float) -> ProjectedRect:
    """MBR of ``bound`` (a MovingRect-shaped object) at absolute ``time``."""
    rect = bound.rect
    elapsed = time - bound.reference_time
    if elapsed <= 0.0:
        return (rect.x_min, rect.y_min, rect.x_max, rect.y_max)
    return (
        rect.x_min + bound.v_x_min * elapsed,
        rect.y_min + bound.v_y_min * elapsed,
        rect.x_max + bound.v_x_max * elapsed,
        rect.y_max + bound.v_y_max * elapsed,
    )


def extent_of(bound, time: float) -> Extent:
    """``bound`` re-anchored at ``time`` as a flat extent tuple."""
    rect = bound.rect
    vx0, vy0 = bound.v_x_min, bound.v_y_min
    vx1, vy1 = bound.v_x_max, bound.v_y_max
    elapsed = time - bound.reference_time
    if elapsed <= 0.0:
        return (rect.x_min, rect.y_min, rect.x_max, rect.y_max, vx0, vy0, vx1, vy1)
    return (
        rect.x_min + vx0 * elapsed,
        rect.y_min + vy0 * elapsed,
        rect.x_max + vx1 * elapsed,
        rect.y_max + vy1 * elapsed,
        vx0,
        vy0,
        vx1,
        vy1,
    )


def batch_project(bounds: Sequence, time: float) -> List[ProjectedRect]:
    """Project many bounds to ``time`` (one 4-tuple each, no Rect objects)."""
    return [project(b, time) for b in bounds]


def batch_extents(bounds: Sequence, time: float) -> List[Extent]:
    """Re-anchor many bounds at ``time`` as flat extent tuples."""
    return [extent_of(b, time) for b in bounds]


def batch_centers(bounds: Sequence, time: float) -> List[Tuple[float, float]]:
    """Centers of the projected MBRs (the STR / split sort keys)."""
    centers = []
    for b in bounds:
        x0, y0, x1, y1 = project(b, time)
        centers.append(((x0 + x1) * 0.5, (y0 + y1) * 0.5))
    return centers


# ----------------------------------------------------------------------
# Structure-of-arrays (column) kernels for array-backed nodes
# ----------------------------------------------------------------------
# The TPR node stores its entry bounds as nine parallel ``array('d')``
# columns (see repro/tprtree/node.py).  These kernels consume the columns
# directly, so a whole node's entries are processed in one C-level zip
# instead of one attribute-chasing pass per ``MovingRect``.


def soa_extents(x0s, y0s, x1s, y1s, vx0s, vy0s, vx1s, vy1s, trefs, time: float) -> List[Extent]:
    """Re-anchor a node's column-stored bounds at ``time`` as flat extents.

    Column twin of :func:`batch_extents`: one fused pass over the nine
    parallel bound columns of an array-backed node.
    """
    out: List[Extent] = []
    append = out.append
    for x0, y0, x1, y1, vx0, vy0, vx1, vy1, tref in zip(
        x0s, y0s, x1s, y1s, vx0s, vy0s, vx1s, vy1s, trefs
    ):
        elapsed = time - tref
        if elapsed <= 0.0:
            append((x0, y0, x1, y1, vx0, vy0, vx1, vy1))
        else:
            append(
                (
                    x0 + vx0 * elapsed,
                    y0 + vy0 * elapsed,
                    x1 + vx1 * elapsed,
                    y1 + vy1 * elapsed,
                    vx0,
                    vy0,
                    vx1,
                    vy1,
                )
            )
    return out


def soa_bound_extent(x0s, y0s, x1s, y1s, vx0s, vy0s, vx1s, vy1s, trefs, time: float) -> Extent:
    """Tight extent over a node's column-stored bounds, re-anchored at ``time``.

    Column twin of :func:`bound_extent` (the float core of
    :meth:`MovingRect.bounding`), reading the nine parallel bound columns of
    an array-backed node without materializing per-entry objects.
    """
    x0 = y0 = vx0 = vy0 = _INF
    x1 = y1 = vx1 = vy1 = -_INF
    for bx0, by0, bx1, by1, bvx0, bvy0, bvx1, bvy1, tref in zip(
        x0s, y0s, x1s, y1s, vx0s, vy0s, vx1s, vy1s, trefs
    ):
        elapsed = time - tref
        if elapsed > 0.0:
            bx0 += bvx0 * elapsed
            by0 += bvy0 * elapsed
            bx1 += bvx1 * elapsed
            by1 += bvy1 * elapsed
        if bx0 < x0:
            x0 = bx0
        if by0 < y0:
            y0 = by0
        if bx1 > x1:
            x1 = bx1
        if by1 > y1:
            y1 = by1
        if bvx0 < vx0:
            vx0 = bvx0
        if bvy0 < vy0:
            vy0 = bvy0
        if bvx1 > vx1:
            vx1 = bvx1
        if bvy1 > vy1:
            vy1 = bvy1
    if x0 == _INF:
        raise ValueError("cannot bound an empty collection of moving rectangles")
    return (x0, y0, x1, y1, vx0, vy0, vx1, vy1)


# ----------------------------------------------------------------------
# Unions and derived scalar quantities
# ----------------------------------------------------------------------
def union_extent(a: Extent, b: Extent) -> Extent:
    """Union of two extents anchored at the same time (TPR bounding rule)."""
    return (
        a[0] if a[0] < b[0] else b[0],
        a[1] if a[1] < b[1] else b[1],
        a[2] if a[2] > b[2] else b[2],
        a[3] if a[3] > b[3] else b[3],
        a[4] if a[4] < b[4] else b[4],
        a[5] if a[5] < b[5] else b[5],
        a[6] if a[6] > b[6] else b[6],
        a[7] if a[7] > b[7] else b[7],
    )


def bound_extent(bounds: Sequence, time: float) -> Extent:
    """Tight extent over ``bounds``, all re-anchored at ``time``.

    This is the float core of :meth:`MovingRect.bounding`: the MBR is the
    union of the projected MBRs and each VBR component is the extreme of the
    children's components.  No intermediate objects are allocated.
    """
    x0 = y0 = vx0 = vy0 = _INF
    x1 = y1 = vx1 = vy1 = -_INF
    for b in bounds:
        rect = b.rect
        bvx0, bvy0, bvx1, bvy1 = b.v_x_min, b.v_y_min, b.v_x_max, b.v_y_max
        elapsed = time - b.reference_time
        if elapsed <= 0.0:
            bx0, by0, bx1, by1 = rect.x_min, rect.y_min, rect.x_max, rect.y_max
        else:
            bx0 = rect.x_min + bvx0 * elapsed
            by0 = rect.y_min + bvy0 * elapsed
            bx1 = rect.x_max + bvx1 * elapsed
            by1 = rect.y_max + bvy1 * elapsed
        if bx0 < x0:
            x0 = bx0
        if by0 < y0:
            y0 = by0
        if bx1 > x1:
            x1 = bx1
        if by1 > y1:
            y1 = by1
        if bvx0 < vx0:
            vx0 = bvx0
        if bvy0 < vy0:
            vy0 = bvy0
        if bvx1 > vx1:
            vx1 = bvx1
        if bvy1 > vy1:
            vy1 = bvy1
    if x0 == _INF:
        raise ValueError("cannot bound an empty collection of moving rectangles")
    return (x0, y0, x1, y1, vx0, vy0, vx1, vy1)


def extent_area(ext: Extent) -> float:
    """Area of an extent's MBR (at its anchor time)."""
    return (ext[2] - ext[0]) * (ext[3] - ext[1])


def extent_margin(ext: Extent) -> float:
    """Perimeter of an extent's MBR (at its anchor time)."""
    return 2.0 * ((ext[2] - ext[0]) + (ext[3] - ext[1]))


def intersection_area(a: Extent, b: Extent, elapsed: float = 0.0) -> float:
    """Overlap area of two extents ``elapsed`` time units after their anchor.

    With ``elapsed == 0`` this is the plain MBR overlap; a positive value
    projects both extents forward first (used by the TPR* split objective,
    which penalizes distributions whose halves will overlap at the horizon).
    """
    if elapsed > 0.0:
        ax0 = a[0] + a[4] * elapsed
        ay0 = a[1] + a[5] * elapsed
        ax1 = a[2] + a[6] * elapsed
        ay1 = a[3] + a[7] * elapsed
        bx0 = b[0] + b[4] * elapsed
        by0 = b[1] + b[5] * elapsed
        bx1 = b[2] + b[6] * elapsed
        by1 = b[3] + b[7] * elapsed
    else:
        ax0, ay0, ax1, ay1 = a[0], a[1], a[2], a[3]
        bx0, by0, bx1, by1 = b[0], b[1], b[2], b[3]
    dx = (ax1 if ax1 < bx1 else bx1) - (ax0 if ax0 > bx0 else bx0)
    if dx <= 0.0:
        return 0.0
    dy = (ay1 if ay1 < by1 else by1) - (ay0 if ay0 > by0 else by0)
    if dy <= 0.0:
        return 0.0
    return dx * dy


# ----------------------------------------------------------------------
# Cumulative (prefix/suffix) unions for split and reinsert scoring
# ----------------------------------------------------------------------
def cumulative_extents(extents: Sequence[Extent]) -> List[Extent]:
    """``result[i]`` is the union of ``extents[0..i]`` (prefix bounds).

    With a prefix pass over the entries in sort order and a suffix pass over
    the reversed order, every candidate split distribution's two group
    bounds are available in O(1), turning the classic O(n^2)-with-allocations
    split scoring loop into a single fused O(n) sweep.
    """
    result: List[Extent] = []
    current = None
    for ext in extents:
        current = ext if current is None else union_extent(current, ext)
        result.append(current)
    return result


def remove_one_extents(extents: Sequence[Extent]) -> List[Extent]:
    """``result[i]`` is the union of all extents except ``extents[i]``.

    Built from prefix and suffix unions; the input must have at least two
    elements.  This powers the TPR*-tree's pick-worst forced reinsertion
    (score of an entry = cost saved by removing it) in O(n) instead of the
    naive O(n^2) re-bounding.
    """
    n = len(extents)
    if n < 2:
        raise ValueError("remove_one_extents needs at least two extents")
    prefix = cumulative_extents(extents)
    suffix = cumulative_extents(list(reversed(extents)))
    result: List[Extent] = [suffix[n - 2]]
    for i in range(1, n - 1):
        result.append(union_extent(prefix[i - 1], suffix[n - 2 - i]))
    result.append(prefix[n - 2])
    return result


# ----------------------------------------------------------------------
# Sweeping-region integral (the TPR* cost metric)
# ----------------------------------------------------------------------
def sweep_volume(
    width: float,
    height: float,
    v_x_min: float,
    v_y_min: float,
    v_x_max: float,
    v_y_max: float,
    horizon: float,
) -> float:
    """Closed-form time-integral of the swept area over ``[0, horizon]``.

    For ``t >= 0`` the bounding box of the start and projected rectangles has
    extents ``width + px t`` and ``height + py t`` with
    ``px = max(0, v_x_max) - min(0, v_x_min)`` (similarly ``py``), and the two
    uncovered corner triangles remove ``qx qy t^2`` where ``qx``/``qy`` are
    the common (translational) edge displacements per time unit.  The swept
    area is therefore an exact quadratic in ``t`` and its integral has the
    closed form used here.  This is the hot path of the TPR*-tree's
    insertion cost model, hence the float-only signature.
    """
    if horizon <= 0.0:
        return 0.0
    px = (v_x_max if v_x_max > 0.0 else 0.0) - (v_x_min if v_x_min < 0.0 else 0.0)
    py = (v_y_max if v_y_max > 0.0 else 0.0) - (v_y_min if v_y_min < 0.0 else 0.0)
    if v_x_min >= 0.0 and v_x_max >= 0.0:
        qx = v_x_min if v_x_min < v_x_max else v_x_max
    elif v_x_min <= 0.0 and v_x_max <= 0.0:
        qx = -v_x_min if -v_x_min < -v_x_max else -v_x_max
    else:
        qx = 0.0
    if v_y_min >= 0.0 and v_y_max >= 0.0:
        qy = v_y_min if v_y_min < v_y_max else v_y_max
    elif v_y_min <= 0.0 and v_y_max <= 0.0:
        qy = -v_y_min if -v_y_min < -v_y_max else -v_y_max
    else:
        qy = 0.0
    h2 = horizon * horizon
    h3 = h2 * horizon
    return (
        width * height * horizon
        + (width * py + height * px) * h2 / 2.0
        + (px * py - qx * qy) * h3 / 3.0
    )


def extent_sweep_volume(ext: Extent, query_extent: float, horizon: float) -> float:
    """Fused sweep integral of an extent grown by a nominal query size.

    Equivalent to enlarging the extent's MBR by ``query_extent`` on each axis
    (the transformed-node construction of the cost model) and integrating the
    swept area over the horizon, without building the intermediate rectangle.
    """
    return sweep_volume(
        (ext[2] - ext[0]) + query_extent,
        (ext[3] - ext[1]) + query_extent,
        ext[4],
        ext[5],
        ext[6],
        ext[7],
        horizon,
    )


# ----------------------------------------------------------------------
# Moving-window intersection over a time interval
# ----------------------------------------------------------------------
def intersects_interval(
    ax0: float,
    ay0: float,
    ax1: float,
    ay1: float,
    avx0: float,
    avy0: float,
    avx1: float,
    avy1: float,
    aref: float,
    bx0: float,
    by0: float,
    bx1: float,
    by1: float,
    bvx0: float,
    bvy0: float,
    bvx1: float,
    bvy1: float,
    bref: float,
    start: float,
    end: float,
) -> bool:
    """Whether two moving rectangles intersect at any time in ``[start, end]``.

    Float-only twin of :meth:`MovingRect.intersects_during` for the range
    scan loops: each argument group is an MBR, its VBR and its reference
    time.  The common case (both reference times at or before ``start``, so
    every boundary is linear over the window) is solved inline; the rare
    piecewise case falls back to the object API.
    """
    if aref > start or bref > start:  # pragma: no cover - rare in index scans
        from repro.geometry.moving_rect import MovingRect
        from repro.geometry.rect import Rect

        a = MovingRect(Rect(ax0, ay0, ax1, ay1), avx0, avy0, avx1, avy1, aref)
        b = MovingRect(Rect(bx0, by0, bx1, by1), bvx0, bvy0, bvx1, bvy1, bref)
        return a.intersects_during(b, start, end)

    duration = end - start
    if duration < 0.0:
        raise ValueError("end must not precede start")

    # Positions at the start of the window.
    ea = start - aref
    eb = start - bref
    lo = 0.0
    hi = duration
    # x axis: a_lo <= b_hi and b_lo <= a_hi as linear constraints in t.
    for p, pv, q, qv in (
        (ax0 + avx0 * ea, avx0, bx1 + bvx1 * eb, bvx1),
        (bx0 + bvx0 * eb, bvx0, ax1 + avx1 * ea, avx1),
        (ay0 + avy0 * ea, avy0, by1 + bvy1 * eb, bvy1),
        (by0 + bvy0 * eb, bvy0, ay1 + avy1 * ea, avy1),
    ):
        diff0 = p - q
        rate = pv - qv
        if rate == 0.0:
            if diff0 > 1e-12:
                return False
            continue
        crossing = -diff0 / rate
        if rate > 0.0:
            if crossing < hi:
                hi = crossing
        else:
            if crossing > lo:
                lo = crossing
        if lo > hi:
            return False
    return True


#: Float info record of one query for :func:`soa_intersect_many`: the
#: query's MBR, VBR, reference time and time window, i.e. ``(x_min, y_min,
#: x_max, y_max, v_x_min, v_y_min, v_x_max, v_y_max, reference_time,
#: start, end)``.
QueryInfo = Tuple[float, float, float, float, float, float, float, float, float, float, float]


def soa_intersect_many(
    x0s, y0s, x1s, y1s, vx0s, vy0s, vx1s, vy1s, trefs, infos: Sequence[QueryInfo]
) -> np.ndarray:
    """Moving-window intersection of a node's columns against many queries.

    The numpy twin of calling :func:`intersects_interval` for every
    ``(query, entry)`` pair of a node: the nine parallel ``array('d')``
    bound columns are wrapped zero-copy, the per-entry *extent pass*
    (positions projected to each query's window start) and the four
    linear slab constraints of the *intersect pass* run as fused array
    operations over the whole ``(num_queries, num_entries)`` grid, and a
    boolean matrix of the same shape comes back.

    The arithmetic is operation-for-operation the scalar kernel's, so the
    matrix is bit-identical to the scalar loop; the rare piecewise pairs
    (an entry or query whose reference time falls *inside* the window)
    are recomputed through the scalar fallback, exactly as the scalar
    kernel defers them to the object API.

    Args:
        x0s..trefs: the nine bound columns of an array-backed node
            (``TPRNode.columns``).
        infos: one :data:`QueryInfo` record per query — a sequence of
            tuples, or (the fast path for callers testing many nodes) a
            ready ``(num_queries, 11)`` float array built once per
            traversal.

    Returns:
        Boolean matrix ``result[q][e]`` — whether entry ``e`` intersects
        query ``q`` at any time in the query's window.
    """
    q = np.asarray(infos, dtype=np.float64).reshape(len(infos), 11)
    ex0 = np.frombuffer(x0s, dtype=np.float64)
    ey0 = np.frombuffer(y0s, dtype=np.float64)
    ex1 = np.frombuffer(x1s, dtype=np.float64)
    ey1 = np.frombuffer(y1s, dtype=np.float64)
    evx0 = np.frombuffer(vx0s, dtype=np.float64)
    evy0 = np.frombuffer(vy0s, dtype=np.float64)
    evx1 = np.frombuffer(vx1s, dtype=np.float64)
    evy1 = np.frombuffer(vy1s, dtype=np.float64)
    etref = np.frombuffer(trefs, dtype=np.float64)
    n = ex0.shape[0]

    qx0, qy0, qx1, qy1 = q[:, 0:1], q[:, 1:2], q[:, 2:3], q[:, 3:4]
    qvx0, qvy0, qvx1, qvy1 = q[:, 4:5], q[:, 5:6], q[:, 6:7], q[:, 7:8]
    qref, start, end = q[:, 8:9], q[:, 9:10], q[:, 10:11]
    duration = end - start
    if np.any(duration < 0.0):
        raise ValueError("end must not precede start")

    # Extent pass: positions at each query's window start (the scalar
    # kernel's `p + pv * elapsed` terms), broadcast queries x entries.
    ea = start - etref
    eb = start - qref
    lo = np.zeros((q.shape[0], n))
    hi = np.broadcast_to(duration, (q.shape[0], n)).copy()
    fail = np.zeros((q.shape[0], n), dtype=bool)
    constraints = (
        (ex0 + evx0 * ea, evx0, qx1 + qvx1 * eb, qvx1),
        (qx0 + qvx0 * eb, qvx0, ex1 + evx1 * ea, evx1),
        (ey0 + evy0 * ea, evy0, qy1 + qvy1 * eb, qvy1),
        (qy0 + qvy0 * eb, qvy0, ey1 + evy1 * ea, evy1),
    )
    for p, pv, other, ov in constraints:
        diff0 = p - other
        rate = pv - ov
        zero = rate == 0.0
        fail |= zero & (diff0 > 1e-12)
        with np.errstate(divide="ignore", invalid="ignore"):
            crossing = -diff0 / rate
        np.minimum(hi, crossing, out=hi, where=rate > 0.0)
        np.maximum(lo, crossing, out=lo, where=rate < 0.0)
    result = ~fail & (lo <= hi)

    # Piecewise pairs (reference time inside the window) take the scalar
    # kernel's object-API fallback, preserving exact equivalence.
    late = (etref[None, :] > start) | (qref > start)
    if late.any():
        for qi, ei in zip(*np.nonzero(late)):
            result[qi, ei] = intersects_interval(
                ex0[ei],
                ey0[ei],
                ex1[ei],
                ey1[ei],
                evx0[ei],
                evy0[ei],
                evx1[ei],
                evy1[ei],
                etref[ei],
                *infos[qi],
            )
    return result


# ----------------------------------------------------------------------
# Exact leaf-refinement predicates (segment versus query range)
# ----------------------------------------------------------------------
def segment_intersects_circle(
    px: float,
    py: float,
    vx: float,
    vy: float,
    duration: float,
    cx: float,
    cy: float,
    radius: float,
) -> bool:
    """Whether the segment ``(px, py) + (vx, vy) * [0, duration]`` meets the circle."""
    # Minimize |p(t) - center|^2 over t in [0, duration].
    dx = px - cx
    dy = py - cy
    a = vx * vx + vy * vy
    b = 2.0 * (dx * vx + dy * vy)
    c = dx * dx + dy * dy
    if a == 0.0:
        best = c
    else:
        t_star = -b / (2.0 * a)
        if t_star < 0.0:
            t_star = 0.0
        elif t_star > duration:
            t_star = duration
        best = a * t_star * t_star + b * t_star + c
        if c < best:
            best = c
        end_val = a * duration * duration + b * duration + c
        if end_val < best:
            best = end_val
    return best <= radius * radius + 1e-9


def segment_intersects_rect(
    px: float,
    py: float,
    vx: float,
    vy: float,
    duration: float,
    x_min: float,
    y_min: float,
    x_max: float,
    y_max: float,
) -> bool:
    """Liang-Barsky clip of the segment against the rectangle's slabs."""
    t0 = 0.0
    t1 = duration
    for p, v, lo, hi in ((px, vx, x_min, x_max), (py, vy, y_min, y_max)):
        if v == 0.0:
            if p < lo - 1e-9 or p > hi + 1e-9:
                return False
            continue
        t_enter = (lo - p) / v
        t_exit = (hi - p) / v
        if t_enter > t_exit:
            t_enter, t_exit = t_exit, t_enter
        if t_enter > t0:
            t0 = t_enter
        if t_exit < t1:
            t1 = t_exit
        if t0 > t1 + 1e-9:
            return False
    return True
