"""Geometric primitives used by all moving-object indexes.

The geometry layer is deliberately free of any storage or index concerns:
it provides points, vectors, axis-aligned rectangles, time-parameterized
rectangles (an MBR paired with a velocity bounding rectangle, VBR), and the
sweeping-region volume integral that underpins the TPR cost model
(Equation 1 of the paper) and the velocity-partitioning analysis
(Equations 2-7).
"""

from repro.geometry import kernels
from repro.geometry.point import Point
from repro.geometry.vector import Vector
from repro.geometry.rect import Rect
from repro.geometry.moving_rect import MovingRect
from repro.geometry.sweep import (
    sweeping_area,
    sweeping_volume,
    sweeping_volume_closed_form,
    transformed_node,
    expected_node_accesses,
)

__all__ = [
    "kernels",
    "Point",
    "Vector",
    "Rect",
    "MovingRect",
    "sweeping_area",
    "sweeping_volume",
    "sweeping_volume_closed_form",
    "transformed_node",
    "expected_node_accesses",
]
