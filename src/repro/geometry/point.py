"""2-D point type.

Points are immutable value objects.  They intentionally carry only the two
coordinates; anything that moves is modeled by :class:`repro.objects.MovingObject`,
which pairs a reference :class:`Point` with a :class:`repro.geometry.Vector`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Tuple

if TYPE_CHECKING:  # pragma: no cover - import used only for type hints
    from repro.geometry.vector import Vector


@dataclass(frozen=True)
class Point:
    """A point in the 2-D data space.

    Attributes:
        x: coordinate along the first dimension (meters in the paper's setup).
        y: coordinate along the second dimension.
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def as_tuple(self) -> Tuple[float, float]:
        """Return the point as an ``(x, y)`` tuple."""
        return (self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance between this point and ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt when only comparing)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def translate(self, dx: float, dy: float) -> "Point":
        """Return a new point shifted by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def at_time(self, velocity: "Vector", elapsed: float) -> "Point":
        """Project the point along ``velocity`` for ``elapsed`` time units."""
        return Point(self.x + velocity.vx * elapsed, self.y + velocity.vy * elapsed)
