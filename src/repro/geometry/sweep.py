"""Sweeping regions and the TPR cost model of Tao et al.

Section 3.1 of the paper describes the cost model used to estimate the
number of node accesses of a range query on a TPR-tree:

1. a moving node ``N`` and a moving query ``Q`` are combined into a
   *transformed node* ``N'`` whose MBR is grown by half the query extent and
   whose VBR is the relative velocity of the node with respect to the query;
2. ``N`` intersects ``Q`` during ``[0, qT]`` iff ``N'`` covers the (stationary)
   query center at some time in the interval;
3. assuming the query center is uniformly distributed in a unit data space,
   that probability equals the area swept by ``N'`` during the interval; and
4. summing the swept areas of every node gives the expected node accesses
   (Equation 1).

These functions are pure geometry; they are reused by the velocity analyzer
(Section 5.2) and by the analytic comparison of partitioned versus
unpartitioned indexes (Section 4).
"""

from __future__ import annotations

from typing import Iterable

from repro.geometry import kernels
from repro.geometry.moving_rect import MovingRect
from repro.geometry.rect import Rect


def transformed_node(node: MovingRect, query: MovingRect) -> MovingRect:
    """Transformed node ``N'`` of ``node`` with respect to ``query``.

    The MBR of ``N'`` in dimension *i* is ``<N_Ri- - |Q_Ri|/2, N_Ri+ + |Q_Ri|/2>``
    and its VBR is ``<N_Vi- - Q_Vi+, N_Vi+ - Q_Vi->`` (Section 3.1).  Both
    inputs must be expressed at the same reference time.
    """
    if node.reference_time != query.reference_time:
        query = query.projected_to(node.reference_time)
    half_qx = query.rect.width / 2.0
    half_qy = query.rect.height / 2.0
    rect = Rect(
        node.rect.x_min - half_qx,
        node.rect.y_min - half_qy,
        node.rect.x_max + half_qx,
        node.rect.y_max + half_qy,
    )
    return MovingRect(
        rect=rect,
        v_x_min=node.v_x_min - query.v_x_max,
        v_y_min=node.v_y_min - query.v_y_max,
        v_x_max=node.v_x_max - query.v_x_min,
        v_y_max=node.v_y_max - query.v_y_min,
        reference_time=node.reference_time,
    )


def sweeping_area(node: MovingRect, elapsed: float) -> float:
    """Area of the region swept by ``node`` from its reference time to ``+elapsed``.

    For an MBR with extents ``(w, h)`` whose low edges move at ``(v_x_min,
    v_y_min)`` and high edges at ``(v_x_max, v_y_max)``, the swept region
    after time ``t`` is bounded by the union of the start and end rectangles
    plus the parallelogram traced by the moving edges.  We compute it exactly
    as the area of the bounding box of the start and end rectangles minus the
    two empty corner triangles produced by the drift of the center.  For the
    purposes of the cost model (and matching the paper's usage) the swept
    area is measured at a single elapsed time; the *volume* below integrates
    it over the query interval.
    """
    if elapsed < 0.0:
        raise ValueError("elapsed must be non-negative")
    start = node.rect
    end = node.rect_at(node.reference_time + elapsed)
    bbox = start.union(end)
    # Drift of each pair of parallel edges over the interval.
    drift_x = _edge_drift(node.v_x_min, node.v_x_max, elapsed)
    drift_y = _edge_drift(node.v_y_min, node.v_y_max, elapsed)
    # The swept region is the bounding box minus two congruent right
    # triangles with legs equal to the translation components of the motion
    # (the expansion components never leave holes).
    return bbox.area - drift_x * drift_y


def _edge_drift(v_lo: float, v_hi: float, elapsed: float) -> float:
    """Common translation of the two parallel edges over ``elapsed``.

    When both edges move in the same direction, the slower one leaves an
    uncovered triangle at each of two opposite corners of the bounding box;
    the shared (translational) displacement is the smaller absolute
    displacement and only when both have the same sign.
    """
    lo_d = v_lo * elapsed
    hi_d = v_hi * elapsed
    if lo_d >= 0.0 and hi_d >= 0.0:
        return min(lo_d, hi_d)
    if lo_d <= 0.0 and hi_d <= 0.0:
        return min(-lo_d, -hi_d)
    return 0.0


def sweeping_volume(node: MovingRect, query_interval: float, steps: int = 64) -> float:
    """Time-integral of the swept area over ``[0, query_interval]``.

    This is the per-node term of Equation 1 (denoted ``V_{N'}(qT)``) and is
    also the quantity the Section 4 analysis integrates in Equations 4-5.
    The area is a piecewise quadratic function of time, so Simpson's rule
    over a modest number of panels is effectively exact; ``steps`` must be
    even.
    """
    if query_interval < 0.0:
        raise ValueError("query_interval must be non-negative")
    if query_interval == 0.0:
        return 0.0
    if steps % 2 != 0:
        steps += 1
    h = query_interval / steps
    total = sweeping_area(node, 0.0) + sweeping_area(node, query_interval)
    for i in range(1, steps):
        weight = 4.0 if i % 2 == 1 else 2.0
        total += weight * sweeping_area(node, i * h)
    return total * h / 3.0


def sweeping_volume_closed_form(
    width: float,
    height: float,
    v_x_min: float,
    v_y_min: float,
    v_x_max: float,
    v_y_max: float,
    horizon: float,
) -> float:
    """Closed-form time-integral of the swept area over ``[0, horizon]``.

    The swept area is an exact quadratic in ``t`` whose closed-form integral
    lives in :func:`repro.geometry.kernels.sweep_volume` (the hot path of the
    TPR*-tree's insertion cost model); this name is kept as the public,
    documented entry point of the cost model.
    """
    return kernels.sweep_volume(
        width, height, v_x_min, v_y_min, v_x_max, v_y_max, horizon
    )


def expected_node_accesses(
    nodes: Iterable[MovingRect],
    query: MovingRect,
    query_interval: float,
    space_area: float = 1.0,
) -> float:
    """Expected number of node accesses of ``query`` (Equation 1).

    Args:
        nodes: moving bounds of every node in the tree.
        query: the moving/expanding range query.
        query_interval: length of the query time interval ``qT``.
        space_area: area of the data space (the paper assumes a unit space;
            passing the actual space area rescales the probability).
    """
    total = 0.0
    for node in nodes:
        n_prime = transformed_node(node, query)
        total += sweeping_volume(n_prime, query_interval)
    if query_interval == 0.0:
        return 0.0
    return total / (space_area * query_interval) if space_area != 1.0 else total
