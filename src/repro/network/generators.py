"""Synthetic road networks standing in for the paper's map extracts.

The paper's four road networks are characterized (Section 6) by

* their velocity-distribution skew: Chicago (CH) is the most skewed,
  followed by San Francisco (SA), Melbourne (MEL) and New York (NY); and
* their density: NY and MEL have the most nodes/edges and the shortest
  edges, hence the highest update frequency.

Real OpenStreetMap extracts are not available offline, so the generators
below build grid-based networks over the 100 km x 100 km data space whose
parameters reproduce those properties:

* ``grid_spacing`` controls edge length (and therefore update frequency);
* ``rotation`` orients the two dominant axes (San Francisco's grid is
  rotated off the coordinate axes, which exercises the PCA-based DVA
  discovery rather than letting the standard axes win by accident);
* ``irregular_fraction`` adds random diagonal links, diluting the skew.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, Optional

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.network.road_network import RoadNetwork

#: The benchmark data space (Table 1): 100,000 m x 100,000 m.
DEFAULT_SPACE = Rect(0.0, 0.0, 100_000.0, 100_000.0)


def grid_network(
    name: str,
    rows: int,
    cols: int,
    space: Rect = DEFAULT_SPACE,
    rotation_degrees: float = 0.0,
    jitter: float = 0.0,
    irregular_fraction: float = 0.0,
    seed: Optional[int] = 0,
) -> RoadNetwork:
    """Build a (possibly rotated, possibly noisy) grid road network.

    Args:
        name: network name (shows up in experiment reports).
        rows / cols: number of grid nodes per dimension.
        space: data space the network is embedded in.
        rotation_degrees: rotation of the whole grid about the space center;
            the two dominant travel axes end up at this angle.
        jitter: per-node random displacement as a fraction of the grid
            spacing (makes streets not perfectly straight).
        irregular_fraction: number of extra random "diagonal" edges added,
            expressed as a fraction of the grid edge count; these create
            velocity outliers and reduce the skew.
        seed: RNG seed for jitter and irregular edges.
    """
    if rows < 2 or cols < 2:
        raise ValueError("a grid network needs at least 2x2 nodes")
    rng = random.Random(seed)
    network = RoadNetwork(name=name)
    spacing_x = space.width / (cols - 1)
    spacing_y = space.height / (rows - 1)
    center = space.center
    angle = math.radians(rotation_degrees)
    cos_a, sin_a = math.cos(angle), math.sin(angle)
    # Shrink the grid so the rotated grid still fits inside the space: a
    # rectangle rotated by angle needs 1 / (|cos| + |sin|) of the extent to
    # avoid sticking out.  This keeps edge directions exact (no clamping).
    shrink = 1.0 / (abs(cos_a) + abs(sin_a))

    def place(col: int, row: int) -> Point:
        x = space.x_min + col * spacing_x
        y = space.y_min + row * spacing_y
        if jitter > 0.0:
            x += rng.uniform(-jitter, jitter) * spacing_x
            y += rng.uniform(-jitter, jitter) * spacing_y
        dx = (x - center.x) * shrink
        dy = (y - center.y) * shrink
        rx = center.x + dx * cos_a - dy * sin_a
        ry = center.y + dx * sin_a + dy * cos_a
        rx = min(max(rx, space.x_min), space.x_max)
        ry = min(max(ry, space.y_min), space.y_max)
        return Point(rx, ry)

    def node_id(col: int, row: int) -> int:
        return row * cols + col

    for row in range(rows):
        for col in range(cols):
            network.add_node(node_id(col, row), place(col, row))

    for row in range(rows):
        for col in range(cols):
            if col + 1 < cols:
                network.add_edge(node_id(col, row), node_id(col + 1, row))
            if row + 1 < rows:
                network.add_edge(node_id(col, row), node_id(col, row + 1))

    grid_edges = network.num_edges
    extra_edges = int(grid_edges * irregular_fraction)
    attempts = 0
    added = 0
    while added < extra_edges and attempts < extra_edges * 20:
        attempts += 1
        source = rng.randrange(rows * cols)
        # Connect to a node one or two grid steps away diagonally.
        col, row = source % cols, source // cols
        dcol = rng.choice((-2, -1, 1, 2))
        drow = rng.choice((-2, -1, 1, 2))
        tcol, trow = col + dcol, row + drow
        if not (0 <= tcol < cols and 0 <= trow < rows):
            continue
        target = node_id(tcol, trow)
        if target in network.neighbors(source):
            continue
        network.add_edge(source, target)
        added += 1
    return network


def chicago_like(seed: Optional[int] = 0, space: Rect = DEFAULT_SPACE) -> RoadNetwork:
    """Chicago stand-in: sparse, nearly perfect axis-aligned grid (most skewed)."""
    return grid_network(
        "CH",
        rows=14,
        cols=14,
        space=space,
        rotation_degrees=0.0,
        jitter=0.01,
        irregular_fraction=0.02,
        seed=seed,
    )


def san_francisco_like(seed: Optional[int] = 1, space: Rect = DEFAULT_SPACE) -> RoadNetwork:
    """San Francisco stand-in: grid rotated off the axes with a little noise."""
    return grid_network(
        "SA",
        rows=16,
        cols=16,
        space=space,
        rotation_degrees=27.0,
        jitter=0.03,
        irregular_fraction=0.06,
        seed=seed,
    )


def melbourne_like(seed: Optional[int] = 2, space: Rect = DEFAULT_SPACE) -> RoadNetwork:
    """Melbourne CBD stand-in: dense grid with noticeable irregular links."""
    return grid_network(
        "MEL",
        rows=24,
        cols=24,
        space=space,
        rotation_degrees=8.0,
        jitter=0.06,
        irregular_fraction=0.15,
        seed=seed,
    )


def new_york_like(seed: Optional[int] = 3, space: Rect = DEFAULT_SPACE) -> RoadNetwork:
    """New York stand-in: densest grid, shortest edges, most irregular links."""
    return grid_network(
        "NY",
        rows=30,
        cols=30,
        space=space,
        rotation_degrees=29.0,
        jitter=0.08,
        irregular_fraction=0.25,
        seed=seed,
    )


#: Builders keyed by the dataset names used throughout the experiments.
NETWORK_BUILDERS: Dict[str, Callable[..., RoadNetwork]] = {
    "CH": chicago_like,
    "SA": san_francisco_like,
    "MEL": melbourne_like,
    "NY": new_york_like,
}


def network_for(dataset: str, seed: Optional[int] = None, space: Rect = DEFAULT_SPACE) -> RoadNetwork:
    """Build the stand-in network for one of the paper's dataset names."""
    try:
        builder = NETWORK_BUILDERS[dataset.upper()]
    except KeyError:
        raise ValueError(
            f"unknown road network {dataset!r}; expected one of {sorted(NETWORK_BUILDERS)}"
        ) from None
    if seed is None:
        return builder(space=space)
    return builder(seed=seed, space=space)
