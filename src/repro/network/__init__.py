"""Road networks and synthetic network generators.

The paper generates its moving-object workloads from real road networks
(Chicago, San Francisco, Melbourne, New York) fed into the Chen et al.
benchmark generator.  Real map extracts are not available offline, so
:mod:`repro.network.generators` synthesizes networks with the same
qualitative properties the paper relies on — most importantly the degree of
velocity-distribution skew (CH most skewed, then SA, MEL, NY) and the
relative edge lengths (NY/MEL have many short edges, hence frequent
updates).
"""

from repro.network.road_network import RoadNetwork, RoadEdge
from repro.network.generators import (
    grid_network,
    chicago_like,
    san_francisco_like,
    melbourne_like,
    new_york_like,
    network_for,
    NETWORK_BUILDERS,
)

__all__ = [
    "RoadNetwork",
    "RoadEdge",
    "grid_network",
    "chicago_like",
    "san_francisco_like",
    "melbourne_like",
    "new_york_like",
    "network_for",
    "NETWORK_BUILDERS",
]
