"""A simple undirected road-network graph.

Objects in the network workload travel along edges; the network therefore
only needs node coordinates, adjacency, edge lengths and a way to pick
routes.  Shortest paths use Dijkstra's algorithm; random walks are also
provided because the benchmark generator mostly needs "keep driving
somewhere plausible" rather than true shortest routes.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from repro.geometry.point import Point
from repro.geometry.vector import Vector


@dataclass(frozen=True)
class RoadEdge:
    """An undirected edge between two nodes."""

    source: int
    target: int
    length: float

    def other(self, node: int) -> int:
        if node == self.source:
            return self.target
        if node == self.target:
            return self.source
        raise ValueError(f"node {node} is not an endpoint of this edge")


class RoadNetwork:
    """An undirected graph embedded in the plane."""

    def __init__(self, name: str = "network") -> None:
        self.name = name
        self._nodes: Dict[int, Point] = {}
        self._adjacency: Dict[int, List[RoadEdge]] = {}
        self._edges: List[RoadEdge] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: int, position: Point) -> None:
        if node_id in self._nodes:
            raise ValueError(f"node {node_id} already exists")
        self._nodes[node_id] = position
        self._adjacency[node_id] = []

    def add_edge(self, source: int, target: int) -> RoadEdge:
        """Add an undirected edge; its length is the Euclidean node distance."""
        if source == target:
            raise ValueError("self loops are not allowed")
        if source not in self._nodes or target not in self._nodes:
            raise KeyError("both endpoints must exist before adding an edge")
        length = self._nodes[source].distance_to(self._nodes[target])
        edge = RoadEdge(source=source, target=target, length=length)
        self._adjacency[source].append(edge)
        self._adjacency[target].append(edge)
        self._edges.append(edge)
        return edge

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    @property
    def node_ids(self) -> List[int]:
        return list(self._nodes.keys())

    @property
    def edges(self) -> List[RoadEdge]:
        return list(self._edges)

    def position(self, node_id: int) -> Point:
        return self._nodes[node_id]

    def neighbors(self, node_id: int) -> List[int]:
        return [edge.other(node_id) for edge in self._adjacency[node_id]]

    def edges_of(self, node_id: int) -> List[RoadEdge]:
        return list(self._adjacency[node_id])

    def average_edge_length(self) -> float:
        if not self._edges:
            return 0.0
        return sum(e.length for e in self._edges) / len(self._edges)

    def edge_direction(self, source: int, target: int) -> Vector:
        """Unit vector pointing from ``source`` to ``target``."""
        src = self._nodes[source]
        dst = self._nodes[target]
        direction = Vector(dst.x - src.x, dst.y - src.y)
        return direction.normalized()

    def point_along(self, source: int, target: int, fraction: float) -> Point:
        """Point a fraction of the way along the edge from ``source`` to ``target``."""
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must lie in [0, 1]")
        src = self._nodes[source]
        dst = self._nodes[target]
        return Point(
            src.x + (dst.x - src.x) * fraction,
            src.y + (dst.y - src.y) * fraction,
        )

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def random_node(self, rng: random.Random) -> int:
        return rng.choice(self.node_ids)

    def random_edge(self, rng: random.Random) -> RoadEdge:
        return rng.choice(self._edges)

    def shortest_path(self, source: int, target: int) -> Optional[List[int]]:
        """Node sequence of the shortest path, or ``None`` when disconnected."""
        if source == target:
            return [source]
        distances: Dict[int, float] = {source: 0.0}
        previous: Dict[int, int] = {}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        visited = set()
        while heap:
            distance, node = heapq.heappop(heap)
            if node in visited:
                continue
            visited.add(node)
            if node == target:
                break
            for edge in self._adjacency[node]:
                neighbor = edge.other(node)
                candidate = distance + edge.length
                if candidate < distances.get(neighbor, math.inf):
                    distances[neighbor] = candidate
                    previous[neighbor] = node
                    heapq.heappush(heap, (candidate, neighbor))
        if target not in distances:
            return None
        path = [target]
        while path[-1] != source:
            path.append(previous[path[-1]])
        path.reverse()
        return path

    def next_node_random_walk(
        self, current: int, came_from: Optional[int], rng: random.Random
    ) -> int:
        """Next node of a drive-forward random walk (avoids U-turns when possible)."""
        options = self.neighbors(current)
        if not options:
            raise ValueError(f"node {current} has no neighbors")
        forward = [n for n in options if n != came_from]
        return rng.choice(forward if forward else options)

    def iter_edge_directions(self) -> Iterator[Vector]:
        """Unit direction of every edge (used to characterize network skew)."""
        for edge in self._edges:
            yield self.edge_direction(edge.source, edge.target)
