"""Dominant velocity axes (DVAs) and their coordinate frames.

A DVA is a unit axis in velocity space along which most objects travel
(Section 1 of the paper).  Each DVA induces a rotated coordinate frame whose
x-axis is the DVA direction; the objects of the DVA's partition are indexed
in that frame so that their movement is (nearly) one-dimensional.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.vector import Vector
from repro.objects.moving_object import MovingObject


@dataclass(frozen=True)
class CoordinateFrame:
    """A rotated (orthonormal, right-handed) coordinate frame about the origin.

    The frame maps original coordinates to the frame's coordinates by
    projecting onto ``axis`` (new x) and ``axis.perpendicular()`` (new y).
    Rotation preserves distances, so circles stay circles and velocities keep
    their magnitudes — which is why the VP query transformation only needs an
    axis-aligned MBR plus a final filter (Algorithm 3).
    """

    axis: Vector

    def __post_init__(self) -> None:
        magnitude = self.axis.magnitude
        if abs(magnitude - 1.0) > 1e-9:
            if magnitude == 0.0:
                raise ValueError("frame axis cannot be the zero vector")
            object.__setattr__(self, "axis", self.axis.normalized())

    @property
    def normal(self) -> Vector:
        """Unit vector orthogonal to the axis (the frame's y direction)."""
        return self.axis.perpendicular()

    # ------------------------------------------------------------------
    # Forward transform (original -> frame)
    # ------------------------------------------------------------------
    def to_frame_point(self, point: Point) -> Point:
        """Express an original-frame point in the frame's coordinates."""
        as_vector = Vector(point.x, point.y)
        return Point(as_vector.dot(self.axis), as_vector.dot(self.normal))

    def to_frame_vector(self, vector: Vector) -> Vector:
        """Express an original-frame vector in the frame's coordinates."""
        return Vector(vector.dot(self.axis), vector.dot(self.normal))

    def to_frame_object(self, obj: MovingObject) -> MovingObject:
        """Express a moving object in the frame's coordinates.

        Inlines the rotation arithmetic (bit-identical to the point/vector
        helpers) because this sits on the index manager's per-object update
        path, where the intermediate ``Vector`` allocations are measurable.
        """
        ax, ay = self.axis.vx, self.axis.vy
        position = obj.position
        velocity = obj.velocity
        return MovingObject(
            oid=obj.oid,
            position=Point(
                position.x * ax + position.y * ay,
                position.x * -ay + position.y * ax,
            ),
            velocity=Vector(
                velocity.vx * ax + velocity.vy * ay,
                velocity.vx * -ay + velocity.vy * ax,
            ),
            reference_time=obj.reference_time,
        )

    def to_frame_arrays(self, xs, ys):
        """Rotate parallel coordinate arrays into the frame (vectorized).

        ``xs``/``ys`` are numpy arrays of x/y components (positions or
        velocities — the same rigid rotation applies to both).  Returns the
        rotated component arrays.  The arithmetic is element-for-element the
        same as :meth:`to_frame_object`, so scalars and arrays produce
        bit-identical coordinates — which is what lets the index manager
        rotate a whole update batch in one pass without perturbing query
        answers.
        """
        ax, ay = self.axis.vx, self.axis.vy
        return xs * ax + ys * ay, xs * -ay + ys * ax

    def to_frame_rect(self, rect: Rect) -> Rect:
        """Axis-aligned MBR (in the frame) of the transformed rectangle."""
        corners = [self.to_frame_point(c) for c in rect.corners()]
        return Rect.bounding_points(corners)

    # ------------------------------------------------------------------
    # Inverse transform (frame -> original)
    # ------------------------------------------------------------------
    def from_frame_point(self, point: Point) -> Point:
        """Map a frame-coordinates point back to the original frame."""
        return Point(
            point.x * self.axis.vx + point.y * self.normal.vx,
            point.x * self.axis.vy + point.y * self.normal.vy,
        )

    def from_frame_vector(self, vector: Vector) -> Vector:
        """Map a frame-coordinates vector back to the original frame."""
        return Vector(
            vector.vx * self.axis.vx + vector.vy * self.normal.vx,
            vector.vx * self.axis.vy + vector.vy * self.normal.vy,
        )

    def from_frame_rect(self, rect: Rect) -> Rect:
        """Axis-aligned original-frame MBR of a frame-coordinates rectangle."""
        corners = [self.from_frame_point(c) for c in rect.corners()]
        return Rect.bounding_points(corners)


@dataclass(frozen=True)
class DominantVelocityAxis:
    """A DVA together with its outlier threshold.

    Attributes:
        axis: unit vector of the dominant direction (sign is irrelevant —
            objects travel both ways along a road).
        tau: maximum perpendicular speed (distance from the axis in velocity
            space) accepted by this DVA's partition; objects farther from
            every DVA go to the outlier partition.
        frame: the rotated coordinate frame induced by the axis.
    """

    axis: Vector
    tau: float = float("inf")
    frame: CoordinateFrame = field(init=False)

    def __post_init__(self) -> None:
        unit = self.axis.normalized()
        object.__setattr__(self, "axis", unit)
        object.__setattr__(self, "frame", CoordinateFrame(unit))
        if self.tau < 0:
            raise ValueError("tau must be non-negative")

    def perpendicular_speed(self, velocity: Vector) -> float:
        """Perpendicular distance from a velocity point to this axis."""
        return velocity.perpendicular_distance_to_axis(self.axis)

    def accepts(self, velocity: Vector) -> bool:
        """Whether an object with ``velocity`` may live in this DVA's partition."""
        return self.perpendicular_speed(velocity) <= self.tau

    def angle_degrees(self) -> float:
        """Orientation of the axis in degrees, folded into [0, 180)."""
        import math

        angle = math.degrees(self.axis.angle)
        return angle % 180.0

    def with_tau(self, tau: float) -> "DominantVelocityAxis":
        """Copy of the DVA with a refreshed outlier threshold."""
        return DominantVelocityAxis(axis=self.axis, tau=tau)
