"""Choosing the outlier threshold τ (Section 5.2, Equations 8-10).

For one DVA partition, objects are expressed in the DVA's rotated frame so
that the DVA is the x-axis.  An object whose perpendicular speed (the |v_y|
component in that frame) exceeds τ is exiled to the outlier partition.

The paper derives that minimizing the total rate of search-area expansion of
the DVA partition plus the outlier partition (Equation 9) reduces to
minimizing::

    n_d * ( v_yd(n_d) - v_ymax )                      (Equation 10)

where ``n_d`` is the number of objects kept in the DVA partition,
``v_yd(n_d)`` is the maximum perpendicular speed among those kept, and
``v_ymax`` is the maximum perpendicular speed over all objects.  Since
``v_yd`` depends on the data distribution, the paper evaluates Equation 10
over an equal-width cumulative histogram of perpendicular speeds and keeps
the candidate with the smallest objective.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

#: Histogram resolution used by the experiments (Section 6: "a velocity
#: histogram containing 100 buckets for determining the τ value").
DEFAULT_TAU_HISTOGRAM_BUCKETS = 100


@dataclass(frozen=True)
class TauSearchResult:
    """Outcome of the τ search for one DVA partition."""

    tau: float
    objective: float
    candidates: Tuple[Tuple[float, float], ...]
    """Every evaluated ``(tau_candidate, objective_value)`` pair."""

    @property
    def best_candidate(self) -> Tuple[float, float]:
        """The winning ``(tau, objective_value)`` pair."""
        return (self.tau, self.objective)


def expansion_rate_objective(
    n_d: int, v_yd: float, v_ymax: float, n_total: int = 0
) -> float:
    """Equation 10: the part of the expansion rate that depends on τ.

    ``n_total`` is accepted (and ignored) so callers can pass the full
    Equation 8/9 context; only ``n_d (v_yd - v_ymax)`` varies with τ.
    """
    del n_total
    return n_d * (v_yd - v_ymax)


def total_expansion_rate(
    t: float,
    n_d: int,
    n_total: int,
    n_per_leaf: float,
    d: float,
    v_xmax: float,
    v_ymax: float,
    v_yd: float,
) -> float:
    """Equation 9 in full: d TA(t, n_d) / dt.

    Provided for completeness (tests verify that minimizing Equation 10 also
    minimizes Equation 9 for any fixed ``t``).
    """
    term_dva = (2.0 * n_d / n_per_leaf) * ((v_yd - v_ymax) * (d + 4.0 * v_xmax * t))
    term_all = (2.0 * n_total / n_per_leaf) * (
        d * v_ymax + v_xmax * (d + 4.0 * v_ymax * t)
    )
    return term_dva + term_all


def optimal_tau(
    perpendicular_speeds: Sequence[float],
    histogram_buckets: int = DEFAULT_TAU_HISTOGRAM_BUCKETS,
) -> TauSearchResult:
    """Optimal outlier threshold τ for one DVA partition.

    Args:
        perpendicular_speeds: |v_y| in the DVA frame for every sampled object
            assigned to this partition.
        histogram_buckets: number of equal-width buckets of the cumulative
            histogram from which τ candidates are drawn.

    Returns:
        The τ value minimizing Equation 10, with the evaluated candidates.

    Raises:
        ValueError: if no speeds are supplied.
    """
    if len(perpendicular_speeds) == 0:
        raise ValueError("cannot choose tau from an empty partition")
    speeds = np.abs(np.asarray(perpendicular_speeds, dtype=float))
    v_ymax = float(speeds.max())
    if v_ymax == 0.0:
        # Every object already travels exactly along the DVA.
        return TauSearchResult(tau=0.0, objective=0.0, candidates=((0.0, 0.0),))

    # Equal-width cumulative frequency histogram of perpendicular speeds:
    # bucket edge i corresponds to a candidate τ, and the cumulative count up
    # to that edge is n_d(τ) — the number of objects the DVA partition keeps.
    edges = np.linspace(0.0, v_ymax, histogram_buckets + 1)
    counts, _ = np.histogram(speeds, bins=edges)
    cumulative = np.cumsum(counts)

    candidates: List[Tuple[float, float]] = []
    best_tau = v_ymax
    best_objective = float("inf")
    for bucket in range(histogram_buckets):
        tau_candidate = float(edges[bucket + 1])
        n_d = int(cumulative[bucket])
        if n_d == 0:
            continue
        # v_yd(n_d): the largest perpendicular speed actually kept.  Using the
        # bucket's upper edge matches the equal-width histogram approximation
        # described in the paper.
        v_yd = tau_candidate
        objective = expansion_rate_objective(n_d, v_yd, v_ymax)
        candidates.append((tau_candidate, objective))
        if objective < best_objective:
            best_objective = objective
            best_tau = tau_candidate
    if not candidates:
        return TauSearchResult(tau=v_ymax, objective=0.0, candidates=((v_ymax, 0.0),))
    return TauSearchResult(
        tau=best_tau, objective=best_objective, candidates=tuple(candidates)
    )


def partition_speeds(
    velocities: Sequence, axis
) -> np.ndarray:
    """Perpendicular speeds of ``velocities`` with respect to ``axis``.

    Small convenience used by the velocity analyzer and by tests.
    """
    return np.array(
        [v.perpendicular_distance_to_axis(axis) for v in velocities], dtype=float
    )
