"""Finding dominant velocity axes (Section 5.1, Algorithm 2).

Three approaches are implemented:

* :func:`pca_only_dva` — naive approach I: a single PCA over all velocity
  points.  With more than one DVA in the data this returns an average axis
  that matches none of them (Figure 10a).
* :func:`centroid_kmeans_dvas` — naive approach II: classic k-means on the
  velocity points (distance to centroid) followed by PCA per cluster.  The
  clusters form around centroids rather than axes (Figure 10b).
* :func:`find_dvas` — the paper's approach: k-means where the distance
  measure is the perpendicular distance to each cluster's first principal
  component, so points are grouped by direction of travel (Figure 11).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.pca import first_principal_component
from repro.geometry.vector import Vector


@dataclass
class PCKMeansResult:
    """Result of a DVA-finding run.

    Attributes:
        axes: one unit axis per partition.
        assignments: for each input velocity point, the index of its partition.
        iterations: number of reassignment iterations performed.
    """

    axes: List[Vector]
    assignments: List[int]
    iterations: int = 0

    def partition_members(self, velocities: Sequence[Vector]) -> List[List[Vector]]:
        """Group the input velocity points by their assigned partition."""
        groups: List[List[Vector]] = [[] for _ in self.axes]
        for velocity, assignment in zip(velocities, self.assignments):
            groups[assignment].append(velocity)
        return groups


def find_dvas(
    velocities: Sequence[Vector],
    k: int,
    max_iterations: int = 50,
    seed: Optional[int] = 0,
) -> PCKMeansResult:
    """Algorithm 2: k-means clustering based on distance to each cluster's 1st PC.

    Args:
        velocities: sample of velocity points (Figure 1b style).
        k: number of DVA partitions (the paper uses 2 for road networks).
        max_iterations: safety bound on the reassignment loop.
        seed: seed of the random initial assignment (``None`` for OS entropy).

    Returns:
        The final partitions' axes and point assignments.

    Raises:
        ValueError: when the sample is smaller than ``k``.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if len(velocities) < k:
        raise ValueError("need at least k velocity points")
    rng = random.Random(seed)
    # Line 3-4 of Algorithm 2: random initial assignment, but guarantee every
    # partition is non-empty so its first PC is defined.
    assignments = [rng.randrange(k) for _ in velocities]
    for partition in range(k):
        if partition not in assignments:
            assignments[rng.randrange(len(assignments))] = partition

    axes = _axes_of(velocities, assignments, k)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        moved = False
        new_assignments = []
        for velocity, current in zip(velocities, assignments):
            best = min(
                range(k),
                key=lambda p: velocity.perpendicular_distance_to_axis(axes[p]),
            )
            new_assignments.append(best)
            if best != current:
                moved = True
        assignments = new_assignments
        # Guard against a partition emptying out: re-seed it with the point
        # farthest from its current axis assignment.
        for partition in range(k):
            if partition not in assignments:
                farthest = max(
                    range(len(velocities)),
                    key=lambda i: velocities[i].perpendicular_distance_to_axis(
                        axes[assignments[i]]
                    ),
                )
                assignments[farthest] = partition
                moved = True
        axes = _axes_of(velocities, assignments, k)
        if not moved:
            break
    return PCKMeansResult(axes=axes, assignments=assignments, iterations=iterations)


def pca_only_dva(velocities: Sequence[Vector]) -> PCKMeansResult:
    """Naive approach I: one PCA over all points, a single "average" axis."""
    axis = first_principal_component(velocities)
    return PCKMeansResult(axes=[axis], assignments=[0] * len(velocities), iterations=1)


def centroid_kmeans_dvas(
    velocities: Sequence[Vector],
    k: int,
    max_iterations: int = 50,
    seed: Optional[int] = 0,
) -> PCKMeansResult:
    """Naive approach II: classic centroid k-means, then PCA per cluster."""
    if len(velocities) < k:
        raise ValueError("need at least k velocity points")
    rng = random.Random(seed)
    centroids = [velocities[i] for i in rng.sample(range(len(velocities)), k)]
    assignments = [0] * len(velocities)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        moved = False
        for i, velocity in enumerate(velocities):
            best = min(
                range(k),
                key=lambda p: (velocity.vx - centroids[p].vx) ** 2
                + (velocity.vy - centroids[p].vy) ** 2,
            )
            if best != assignments[i]:
                assignments[i] = best
                moved = True
        for partition in range(k):
            members = [v for v, a in zip(velocities, assignments) if a == partition]
            if members:
                centroids[partition] = Vector(
                    sum(v.vx for v in members) / len(members),
                    sum(v.vy for v in members) / len(members),
                )
        if not moved:
            break
    axes = _axes_of(velocities, assignments, k)
    return PCKMeansResult(axes=axes, assignments=assignments, iterations=iterations)


def _axes_of(velocities: Sequence[Vector], assignments: Sequence[int], k: int) -> List[Vector]:
    """First principal component of every partition (Line 6 of Algorithm 2)."""
    axes: List[Vector] = []
    for partition in range(k):
        members = [v for v, a in zip(velocities, assignments) if a == partition]
        if members:
            axes.append(first_principal_component(members))
        else:
            axes.append(Vector(1.0, 0.0))
    return axes
