"""The velocity analyzer (Section 5, Algorithm 1).

The velocity analyzer consumes a sample of velocity points from the current
workload and produces a :class:`VelocityPartitioning`: the set of dominant
velocity axes, each with its outlier threshold τ.  The index manager then
uses the partitioning to route insertions, deletions and queries.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.dva import DominantVelocityAxis
from repro.core.outlier import DEFAULT_TAU_HISTOGRAM_BUCKETS, optimal_tau
from repro.core.pc_kmeans import find_dvas
from repro.core.pca import first_principal_component
from repro.geometry.vector import Vector

#: Number of sample velocity points the paper's velocity analyzer uses.
DEFAULT_SAMPLE_SIZE = 10_000


@dataclass(frozen=True)
class VelocityPartitioning:
    """The output of the velocity analyzer.

    Attributes:
        dvas: one :class:`DominantVelocityAxis` (axis + τ) per partition.
        analysis_time_seconds: wall-clock time spent by the analyzer
            (reported in Figure 18 of the paper).
    """

    dvas: List[DominantVelocityAxis]
    analysis_time_seconds: float = 0.0

    @property
    def k(self) -> int:
        """Number of DVA partitions (excluding the outlier partition)."""
        return len(self.dvas)

    def partition_for(self, velocity: Vector) -> Optional[int]:
        """Index of the DVA partition that should host ``velocity``.

        Returns ``None`` when the velocity is farther than τ from every DVA,
        i.e. the object belongs in the outlier partition (Section 5.3).
        """
        best_index = None
        best_distance = None
        for index, dva in enumerate(self.dvas):
            distance = dva.perpendicular_speed(velocity)
            if best_distance is None or distance < best_distance:
                best_distance = distance
                best_index = index
        if best_index is None:
            return None
        if best_distance <= self.dvas[best_index].tau:
            return best_index
        return None

    def partition_for_batch(self, velocities: Sequence[Vector]) -> List[Optional[int]]:
        """Vectorized :meth:`partition_for` over a whole velocity batch.

        One pass over flat arrays replaces N scalar axis-distance loops;
        see :meth:`partition_for_arrays` for the kernel.  Produces exactly
        the per-point results of the scalar method (``None`` marks the
        outlier partition).
        """
        n = len(velocities)
        if n == 0:
            return []
        vx = np.fromiter((v.vx for v in velocities), np.float64, n)
        vy = np.fromiter((v.vy for v in velocities), np.float64, n)
        assigned = self.partition_for_arrays(vx, vy)
        return [int(p) if p >= 0 else None for p in assigned]

    def partition_for_arrays(self, vx: np.ndarray, vy: np.ndarray) -> np.ndarray:
        """Array kernel behind :meth:`partition_for_batch`.

        Takes parallel velocity-component arrays and returns an ``int64``
        partition array where ``-1`` marks the outlier partition (the same
        sentinel the index manager uses).  The perpendicular speed against
        every DVA is evaluated with numpy cross products, the closest axis
        selected per point, and the τ test applied — bit-identical to the
        scalar :meth:`partition_for`.
        """
        n = len(vx)
        if n == 0:
            return np.empty(0, dtype=np.int64)
        distances = np.empty((len(self.dvas), n))
        for index, dva in enumerate(self.dvas):
            axis = dva.axis.normalized()
            # Perpendicular speed = |v x axis| for a unit axis.
            distances[index] = np.abs(vx * axis.vy - vy * axis.vx)
        best = distances.argmin(axis=0)
        best_distance = distances[best, np.arange(n)]
        taus = np.fromiter((dva.tau for dva in self.dvas), np.float64, len(self.dvas))
        inlier = best_distance <= taus[best]
        return np.where(inlier, best, -1).astype(np.int64)


class VelocityAnalyzer:
    """Algorithm 1: find DVAs, choose τ per DVA, refine the DVAs.

    Args:
        k: number of DVA partitions (2 for typical road networks).
        tau_histogram_buckets: resolution of the τ search histogram.
        sample_size: maximum number of velocity points analyzed; larger
            samples are uniformly sub-sampled.
        seed: seed for the clustering's random initialization and the
            sub-sampling, so experiments are reproducible.
    """

    def __init__(
        self,
        k: int = 2,
        tau_histogram_buckets: int = DEFAULT_TAU_HISTOGRAM_BUCKETS,
        sample_size: int = DEFAULT_SAMPLE_SIZE,
        seed: Optional[int] = 0,
    ) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self.tau_histogram_buckets = tau_histogram_buckets
        self.sample_size = sample_size
        self.seed = seed

    def analyze(self, velocities: Sequence[Vector]) -> VelocityPartitioning:
        """Run Algorithm 1 on a sample of velocity points.

        Raises:
            ValueError: if the sample has fewer points than ``k``.
        """
        started = _time.perf_counter()
        sample = self._subsample(velocities)
        # Line 2: find the DVA partitions with PC-distance k-means.
        clustering = find_dvas(sample, self.k, seed=self.seed)
        groups = clustering.partition_members(sample)

        dvas: List[DominantVelocityAxis] = []
        for axis, members in zip(clustering.axes, groups):
            if not members:
                dvas.append(DominantVelocityAxis(axis=axis, tau=0.0))
                continue
            # Line 4: maximum perpendicular distance threshold τ.
            speeds = [v.perpendicular_distance_to_axis(axis) for v in members]
            tau = optimal_tau(speeds, self.tau_histogram_buckets).tau
            # Line 5: points beyond τ go to the outlier partition;
            # Line 6: recompute the DVA from the points that remain.
            kept = [
                v
                for v, speed in zip(members, speeds)
                if speed <= tau
            ]
            refined_axis = first_principal_component(kept) if kept else axis
            dvas.append(DominantVelocityAxis(axis=refined_axis, tau=tau))
        elapsed = _time.perf_counter() - started
        return VelocityPartitioning(dvas=dvas, analysis_time_seconds=elapsed)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _subsample(self, velocities: Sequence[Vector]) -> List[Vector]:
        if len(velocities) < self.k:
            raise ValueError("the velocity sample must contain at least k points")
        if len(velocities) <= self.sample_size:
            return list(velocities)
        import random

        rng = random.Random(self.seed)
        return rng.sample(list(velocities), self.sample_size)
