"""Analytic search-space-expansion model (Section 4, Equations 2-7).

The paper's analysis compares, for a simplified scenario (objects travel
exactly along the x- or y-axis at speed ``v``, node extent ``d``), the
search space of an unpartitioned index against the combined search space of
a partitioned index:

* ``A_{N'}(t) = (d + 2 v t)^2``                      (Equation 2)
* ``AC_{N'}(t) = 2 d^2 + 4 d v t``                   (Equation 3)
* ``V_S(t_h) = d^2 t_h + 2 d v t_h^2 + 4/3 v^2 t_h^3``  (Equation 4)
* ``V_{S'}(t_h) = 2 d^2 t_h + 2 d v t_h^2``          (Equation 5)
* ``ΔV(t_h) = V_{S'} - V_S = d^2 t_h - 4/3 v^2 t_h^3``  (Equation 6)
* ``dΔV/dt_h = d^2 - 4 v^2 t_h^2``                   (Equation 7)

These closed forms are used by tests (they must agree with the numeric
sweeping-volume integration of :mod:`repro.geometry.sweep`) and by an
ablation benchmark that charts where the partitioned index starts winning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def _check(d: float, v: float) -> None:
    if d < 0 or v < 0:
        raise ValueError("extent d and speed v must be non-negative")


def unpartitioned_search_area(d: float, v: float, t: float) -> float:
    """Equation 2: search area of the unpartitioned transformed node at time ``t``."""
    _check(d, v)
    return (d + 2.0 * v * t) * (d + 2.0 * v * t)


def partitioned_search_area(d: float, v: float, t: float) -> float:
    """Equation 3: combined search area of the two DVA partitions at time ``t``."""
    _check(d, v)
    return 2.0 * d * d + 4.0 * d * v * t


def unpartitioned_search_volume(d: float, v: float, t_h: float) -> float:
    """Equation 4: integral of Equation 2 from 0 to ``t_h``."""
    _check(d, v)
    return d * d * t_h + 2.0 * d * v * t_h**2 + (4.0 / 3.0) * v * v * t_h**3


def partitioned_search_volume(d: float, v: float, t_h: float) -> float:
    """Equation 5: integral of Equation 3 from 0 to ``t_h``."""
    _check(d, v)
    return 2.0 * d * d * t_h + 2.0 * d * v * t_h**2


def search_volume_difference(d: float, v: float, t_h: float) -> float:
    """Equation 6: ``ΔV(t_h) = V_{S'}(t_h) - V_S(t_h)``.

    Negative values mean the partitioned index searches *less* space.
    """
    _check(d, v)
    return d * d * t_h - (4.0 / 3.0) * v * v * t_h**3


def search_volume_difference_rate(d: float, v: float, t_h: float) -> float:
    """Equation 7: derivative of Equation 6 with respect to ``t_h``."""
    _check(d, v)
    return d * d - 4.0 * v * v * t_h * t_h


def crossover_time(d: float, v: float) -> float:
    """Predictive time beyond which the partitioned index searches less space.

    From Equation 6, ``ΔV(t_h) < 0`` once ``t_h > d sqrt(3) / (2 v)``.

    Raises:
        ValueError: if ``v`` is zero (stationary objects never cross over).
    """
    _check(d, v)
    if v == 0.0:
        raise ValueError("crossover time is undefined for stationary objects")
    return d * math.sqrt(3.0) / (2.0 * v)


@dataclass(frozen=True)
class ExpansionComparison:
    """Search volumes of both index styles at one predictive time."""

    d: float
    v: float
    t_h: float
    unpartitioned: float
    partitioned: float

    @property
    def improvement_factor(self) -> float:
        """How many times smaller the partitioned search volume is."""
        if self.partitioned == 0.0:
            return float("inf")
        return self.unpartitioned / self.partitioned


def compare(d: float, v: float, t_h: float) -> ExpansionComparison:
    """Evaluate both sides of the Section 4 analysis at one point."""
    return ExpansionComparison(
        d=d,
        v=v,
        t_h=t_h,
        unpartitioned=unpartitioned_search_volume(d, v, t_h),
        partitioned=partitioned_search_volume(d, v, t_h),
    )
