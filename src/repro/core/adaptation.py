"""Handling changing velocity distributions (Section 5.5 of the paper).

The paper argues that the *direction* component of a velocity distribution
is stable (roads do not move) but the *speed* component changes over time
(rush hour in, rush hour out).  Speeds do not affect the DVA coordinate
frames, but they do affect the outlier threshold τ, which is derived from
the distribution of perpendicular speeds.  The prescribed remedy is to keep
updating the per-DVA speed histogram as objects are inserted and to
recompute τ periodically — a cheap operation because Equation 10 is simple.

This module implements that remedy:

* :class:`TauMonitor` maintains, per DVA, a bounded reservoir of the
  perpendicular speeds of recently inserted/updated objects; and
* :func:`refresh_taus` recomputes τ for every DVA from the monitor's current
  reservoirs and returns an updated :class:`VelocityPartitioning` (axes
  unchanged, thresholds refreshed), which the index manager can adopt for
  future routing decisions.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.core.outlier import DEFAULT_TAU_HISTOGRAM_BUCKETS, optimal_tau
from repro.core.velocity_analyzer import VelocityPartitioning
from repro.geometry.vector import Vector


class TauMonitor:
    """Reservoir of recent perpendicular speeds per DVA partition.

    Args:
        partitioning: the current partitioning (axes are taken from it).
        reservoir_size: maximum number of speed samples retained per DVA;
            once full, reservoir sampling keeps a uniform sample of the
            stream, so old rush-hour speeds age out as new ones arrive.
        seed: RNG seed for the reservoir sampling.
    """

    def __init__(
        self,
        partitioning: VelocityPartitioning,
        reservoir_size: int = 2_000,
        seed: Optional[int] = 0,
    ) -> None:
        if reservoir_size < 10:
            raise ValueError("reservoir_size must be at least 10")
        self.partitioning = partitioning
        self.reservoir_size = reservoir_size
        self._rng = random.Random(seed)
        self._reservoirs: List[List[float]] = [[] for _ in partitioning.dvas]
        self._seen: List[int] = [0 for _ in partitioning.dvas]

    def observe(self, velocity: Vector) -> None:
        """Record the velocity of an inserted/updated object.

        The observation goes to the DVA whose axis is closest in
        perpendicular distance, regardless of τ — the point is to learn what
        the current speed distribution looks like, including would-be
        outliers.
        """
        best_index = 0
        best_distance = None
        for index, dva in enumerate(self.partitioning.dvas):
            distance = dva.perpendicular_speed(velocity)
            if best_distance is None or distance < best_distance:
                best_distance = distance
                best_index = index
        self._observe_speed(best_index, best_distance)

    def _observe_speed(self, partition: int, speed: float) -> None:
        reservoir = self._reservoirs[partition]
        self._seen[partition] += 1
        if len(reservoir) < self.reservoir_size:
            reservoir.append(speed)
            return
        # Classic reservoir sampling: replace a random element with
        # probability reservoir_size / seen.
        slot = self._rng.randrange(self._seen[partition])
        if slot < self.reservoir_size:
            reservoir[slot] = speed

    def samples(self, partition: int) -> Sequence[float]:
        """Current perpendicular-speed sample of one DVA partition."""
        return tuple(self._reservoirs[partition])

    def observations(self, partition: int) -> int:
        """Total number of observations routed to one DVA partition."""
        return self._seen[partition]


def refresh_taus(
    monitor: TauMonitor,
    histogram_buckets: int = DEFAULT_TAU_HISTOGRAM_BUCKETS,
    min_samples: int = 50,
) -> VelocityPartitioning:
    """Recompute τ for every DVA from the monitor's current speed samples.

    DVAs whose reservoir has fewer than ``min_samples`` observations keep
    their previous τ (not enough evidence to re-optimize).  The DVA axes are
    never changed — per Section 5.5 the direction component of the
    distribution is assumed stable; rerunning the full velocity analyzer is
    the remedy when that assumption breaks.

    Returns:
        A new :class:`VelocityPartitioning` with refreshed thresholds.
    """
    old = monitor.partitioning
    refreshed = []
    for index, dva in enumerate(old.dvas):
        samples = monitor.samples(index)
        if len(samples) < min_samples:
            refreshed.append(dva)
            continue
        tau = optimal_tau(samples, histogram_buckets=histogram_buckets).tau
        refreshed.append(dva.with_tau(tau))
    updated = VelocityPartitioning(
        dvas=refreshed, analysis_time_seconds=old.analysis_time_seconds
    )
    monitor.partitioning = updated
    return updated
