"""Velocity-partitioned index facades: Bx(VP) and TPR*(VP).

A :class:`VPIndex` bundles a velocity analyzer result, an
:class:`~repro.core.IndexManager` and a shared buffer pool into an object
that exposes the same interface as the unpartitioned indexes
(``insert`` / ``delete`` / ``update`` / ``range_query`` plus a ``buffer``
with I/O statistics), so the benchmark harness can treat partitioned and
unpartitioned indexes uniformly.

All sub-indexes (one per DVA plus the outlier index) share a single buffer
pool of the same size the unpartitioned index gets, so the comparison is not
biased by extra RAM.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.bxtree.bx_tree import (
    DEFAULT_CURVE_ORDER,
    DEFAULT_HISTOGRAM_CELLS,
    DEFAULT_MAX_UPDATE_INTERVAL,
    DEFAULT_NUM_BUCKETS,
    DEFAULT_SPACE,
    BxTree,
)
from repro.core.index_manager import OUTLIER_PARTITION, IndexManager, MovingObjectIndex
from repro.core.velocity_analyzer import (
    VelocityAnalyzer,
    VelocityPartitioning,
)
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.vector import Vector
from repro.objects.knn import AdaptiveRadius, KNNQuery
from repro.objects.moving_object import MovingObject
from repro.objects.queries import RangeQuery
from repro.storage.buffer_manager import DEFAULT_BUFFER_PAGES, BufferManager
from repro.tprtree.tprstar_tree import TPRStarTree


class VPIndex:
    """A velocity-partitioned moving-object index."""

    def __init__(
        self,
        partitioning: VelocityPartitioning,
        index_factory: Callable[..., MovingObjectIndex],
        buffer: BufferManager,
        name: str,
        space: Optional[Rect] = None,
        index_kwargs: Optional[dict] = None,
    ) -> None:
        """Bundle a partitioning, an index factory and a shared buffer pool.

        Args:
            partitioning: output of the velocity analyzer.
            index_factory: builds one sub-index per partition number.
            buffer: the buffer pool shared by every sub-index.
            name: display name used by the harness (e.g. ``"Bx(VP)"``).
            space: data space, when known; seeds kNN filter radii.
            index_kwargs: backend keyword arguments forwarded through the
                manager to every ``index_factory`` call (e.g. the Bx
                ``key_store`` backend choice).
        """
        self.partitioning = partitioning
        self.buffer = buffer
        self.name = name
        self.space = space
        self.manager = IndexManager(partitioning, index_factory, index_kwargs=index_kwargs)

    # ------------------------------------------------------------------
    # Index protocol (mirrors the unpartitioned indexes)
    # ------------------------------------------------------------------
    def insert(self, obj: MovingObject) -> None:
        """Insert an object (routed to its partition by the manager)."""
        self.manager.insert(obj)

    def bulk_load(
        self, objects: Sequence[MovingObject], strategy: Optional[str] = None
    ) -> None:
        """Bulk-build every partition's index in one pass (see the manager).

        The velocity analysis itself happens once, up front, when the
        :class:`~repro.core.velocity_analyzer.VelocityPartitioning` passed to
        the factory functions below is computed — bulk loading only routes
        and packs.  ``strategy`` selects the packing strategy for
        sub-indexes that understand one (the TPR family).
        """
        self.manager.bulk_load(objects, strategy=strategy)

    def delete(self, obj: MovingObject) -> bool:
        """Delete an object by id; True when it was stored."""
        return self.manager.delete(obj.oid)

    def insert_batch(self, objects: Sequence[MovingObject]) -> None:
        """Batched :meth:`insert` (see :meth:`IndexManager.insert_batch`).

        One vectorized classification/rotation pass routes the batch and
        each touched sub-index receives one grouped ``insert_batch``.
        """
        self.manager.insert_batch(list(objects))

    def delete_batch(self, objects: Sequence[MovingObject]) -> List[bool]:
        """Batched :meth:`delete`; success flags align with the input."""
        return self.manager.delete_batch([obj.oid for obj in objects])

    def update(self, old: MovingObject, new: MovingObject) -> bool:
        """Update an object (it may migrate partitions); True when it existed."""
        existed = self.manager.partition_of(old.oid) is not None
        self.manager.update(new)
        return existed

    def update_batch(self, pairs: Sequence[Tuple[MovingObject, MovingObject]]) -> int:
        """Batched :meth:`update`; returns how many old snapshots existed.

        Classification, frame rotation and routing for the whole batch run
        in one pass through the manager (see
        :meth:`~repro.core.index_manager.IndexManager.update_batch`).
        """
        pairs = list(pairs)
        oids = [old.oid for old, _ in pairs]
        if len(set(oids)) != len(oids):
            # Repeated oids: a later pair's existence depends on an earlier
            # pair's insert, so the count must be evaluated sequentially.
            return sum(1 for old, new in pairs if self.update(old, new))
        # With unique oids every pair's object exists afterwards, so the
        # directory growth is exactly the number of pairs that did NOT
        # exist — one O(1) size delta instead of a per-pair lookup pass.
        before = len(self.manager)
        self.manager.update_batch([new for _, new in pairs])
        return len(pairs) - (len(self.manager) - before)

    def range_query(self, query: RangeQuery, exact: bool = True) -> List[int]:
        """Object ids qualifying for ``query`` (Algorithm 3 over all partitions)."""
        del exact  # the VP query algorithm always applies the exact filter
        return self.manager.range_query(query)

    def range_query_batch(
        self, queries: Sequence[RangeQuery], exact: bool = True
    ) -> List[List[int]]:
        """Batched :meth:`range_query`; per-query results align with the input."""
        del exact  # the VP query algorithm always applies the exact filter
        return self.manager.range_query_batch(list(queries))

    def knn_query(
        self,
        center: Point,
        k: int,
        query_time: float,
        issue_time: float = 0.0,
        space: Optional[Rect] = None,
        radius_state: Optional[AdaptiveRadius] = None,
    ) -> List[Tuple[int, float]]:
        """Single-probe kNN (see :meth:`IndexManager.knn_query`)."""
        return self.manager.knn_query(
            center,
            k,
            query_time,
            issue_time=issue_time,
            space=space if space is not None else self.space,
            radius_state=radius_state,
        )

    def knn_query_batch(
        self,
        queries: Sequence[KNNQuery],
        space: Optional[Rect] = None,
        radius_state: Optional[AdaptiveRadius] = None,
    ) -> List[List[Tuple[int, float]]]:
        """Batched kNN over every partition (see :meth:`IndexManager.knn_query_batch`)."""
        return self.manager.knn_query_batch(
            list(queries),
            space=space if space is not None else self.space,
            radius_state=radius_state,
        )

    def __len__(self) -> int:
        return len(self.manager)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dva_indexes(self) -> List[MovingObjectIndex]:
        """The underlying per-DVA sub-indexes."""
        return self.manager.dva_indexes

    @property
    def outlier_index(self) -> MovingObjectIndex:
        """The sub-index holding velocity outliers."""
        return self.manager.outlier_index

    def partition_sizes(self):
        """Live object count per partition (including the outlier index)."""
        return self.manager.partition_sizes()


def analyze_sample(
    sample_velocities: Sequence[Vector],
    k: int = 2,
    seed: Optional[int] = 0,
) -> VelocityPartitioning:
    """Convenience wrapper: run the velocity analyzer over a velocity sample."""
    analyzer = VelocityAnalyzer(k=k, seed=seed)
    return analyzer.analyze(sample_velocities)


def rotated_space_bounds(space: Rect, partitioning: VelocityPartitioning) -> List[Rect]:
    """Bounding box of the data space in each DVA's rotated frame.

    The Bx-tree grid must cover every coordinate a transformed object can
    take, which is the axis-aligned bound of the rotated space corners.
    """
    bounds: List[Rect] = []
    for dva in partitioning.dvas:
        corners = [dva.frame.to_frame_point(c) for c in space.corners()]
        bounds.append(Rect.bounding_points(corners))
    return bounds


def make_vp_bx_tree(
    partitioning: VelocityPartitioning,
    space: Rect = DEFAULT_SPACE,
    buffer: Optional[BufferManager] = None,
    curve: str = "hilbert",
    curve_order: int = DEFAULT_CURVE_ORDER,
    num_buckets: int = DEFAULT_NUM_BUCKETS,
    max_update_interval: float = DEFAULT_MAX_UPDATE_INTERVAL,
    histogram_cells: int = DEFAULT_HISTOGRAM_CELLS,
    buffer_pages: int = DEFAULT_BUFFER_PAGES,
    page_size: Optional[int] = None,
    key_store: Optional[object] = None,
) -> VPIndex:
    """Build a Bx(VP)-tree: one Bx-tree per DVA plus an outlier Bx-tree.

    ``key_store`` selects the Bx key-store backend (``"btree"``/``"flat"``
    or a backend class; see ``docs/backends.md``) for *every* sub-index —
    the choice travels through the index manager's construction path, so
    each of the k DVA trees and the outlier tree builds its own store.
    An instance is rejected: one store cannot back several trees.
    """
    if key_store is not None and not isinstance(key_store, (str, type)):
        raise TypeError(
            "make_vp_bx_tree builds one key store per sub-index; pass a "
            "backend name or class, not an instance"
        )
    shared_buffer = buffer if buffer is not None else BufferManager(capacity=buffer_pages)
    frame_bounds = rotated_space_bounds(space, partitioning)

    def factory(partition: int, key_store: Optional[object] = None) -> BxTree:
        """Build one Bx-tree over the partition's rotated space bounds."""
        tree_space = space if partition == OUTLIER_PARTITION else frame_bounds[partition]
        return BxTree(
            buffer=shared_buffer,
            space=tree_space,
            curve=curve,
            curve_order=curve_order,
            num_buckets=num_buckets,
            max_update_interval=max_update_interval,
            histogram_cells=histogram_cells,
            page_size=page_size,
            key_store=key_store,
        )

    return VPIndex(
        partitioning,
        factory,
        shared_buffer,
        name="Bx(VP)",
        space=space,
        index_kwargs={"key_store": key_store},
    )


def make_vp_tprstar_tree(
    partitioning: VelocityPartitioning,
    buffer: Optional[BufferManager] = None,
    buffer_pages: int = DEFAULT_BUFFER_PAGES,
    space: Optional[Rect] = None,
    **tpr_kwargs,
) -> VPIndex:
    """Build a TPR*(VP)-tree: one TPR*-tree per DVA plus an outlier TPR*-tree.

    Keyword arguments (``page_size``, ``horizon``, ...) are forwarded to every
    underlying :class:`~repro.tprtree.TPRStarTree`; ``space``, when given,
    only seeds kNN filter radii (the TPR family needs no space bounds).
    """
    shared_buffer = buffer if buffer is not None else BufferManager(capacity=buffer_pages)

    def factory(partition: int) -> TPRStarTree:
        """Build one TPR*-tree on the shared buffer pool."""
        del partition  # the TPR*-tree needs no space bounds
        return TPRStarTree(buffer=shared_buffer, **tpr_kwargs)

    return VPIndex(partitioning, factory, shared_buffer, name="TPR*(VP)", space=space)


def sample_velocities_from_objects(objects: Sequence[MovingObject]) -> List[Vector]:
    """Velocity points of a set of objects (input to the velocity analyzer)."""
    return [obj.velocity for obj in objects]


def space_center(space: Rect = DEFAULT_SPACE) -> Point:
    """Center of the data space (handy for building example queries)."""
    return space.center
