"""The index manager (Sections 5.3 and 5.4).

The index manager owns one underlying moving-object index per DVA partition
plus one outlier index, and translates the standard index operations:

* **insert** — the object goes to the DVA whose axis is closest to its
  velocity (in perpendicular distance), unless that distance exceeds the
  DVA's τ, in which case it goes to the outlier index.  Before insertion
  into a DVA index the object is rotated into the DVA's coordinate frame.
* **delete** — a lookup table records which partition each object lives in,
  so deletion goes straight to the right index (Section 5.3).
* **update** — a deletion followed by an insertion; the object may migrate
  between partitions when its direction of travel changes.
* **range query** — Algorithm 3: the query is rotated into every DVA frame
  (its transformed range bounded by an axis-aligned MBR), executed on every
  index, and the union of the results is filtered with the original query.

The underlying indexes only need the small protocol
``insert/delete/range_query`` shared by :class:`~repro.tprtree.TPRStarTree`
and :class:`~repro.bxtree.BxTree`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.bulk import loader_accepts
from repro.core.dva import CoordinateFrame
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.vector import Vector
from repro.core.velocity_analyzer import VelocityPartitioning
from repro.objects.knn import (
    AdaptiveRadius,
    CandidateState,
    KNNQuery,
    expanding_knn_batch,
)
from repro.objects.moving_object import MovingObject
from repro.objects.queries import (
    CircularRange,
    RangeQuery,
    RectangularRange,
)

#: Index of the outlier partition in the manager's partition numbering.
OUTLIER_PARTITION = -1


class MovingObjectIndex(Protocol):
    """Protocol implemented by TPR*/Bx trees (and any future base index)."""

    def insert(self, obj: MovingObject) -> None:
        """Insert an object snapshot."""
        ...

    def delete(self, obj: MovingObject) -> bool:
        """Delete a previously inserted snapshot; True when it existed."""
        ...

    def range_query(self, query: RangeQuery, exact: bool = True) -> List[int]:
        """Ids of objects qualifying for (or candidate for) ``query``."""
        ...


@dataclass(slots=True)
class _StoredObject:
    """Bookkeeping for one live object."""

    partition: int
    original: MovingObject
    stored: MovingObject


class IndexManager:
    """Routes operations across the DVA indexes and the outlier index."""

    def __init__(
        self,
        partitioning: VelocityPartitioning,
        index_factory: Callable[..., MovingObjectIndex],
        outlier_factory: Optional[Callable[..., MovingObjectIndex]] = None,
        index_kwargs: Optional[Dict[str, object]] = None,
    ) -> None:
        """Create one index per DVA plus the outlier index.

        Args:
            partitioning: output of the velocity analyzer.
            index_factory: called with the partition number to build each DVA
                index (partition numbers are 0..k-1).
            outlier_factory: builds the outlier index; defaults to calling
                ``index_factory`` with :data:`OUTLIER_PARTITION`.
            index_kwargs: backend keyword arguments forwarded verbatim to
                *every* factory call (DVA and outlier alike), so a
                constructor choice such as the Bx ``key_store`` backend
                reaches each sub-index instead of stopping at the manager.
        """
        self.partitioning = partitioning
        self._index_kwargs: Dict[str, object] = dict(index_kwargs or {})
        self.dva_indexes: List[MovingObjectIndex] = [
            index_factory(i, **self._index_kwargs) for i in range(partitioning.k)
        ]
        if outlier_factory is not None:
            self.outlier_index = outlier_factory(**self._index_kwargs)
        else:
            self.outlier_index = index_factory(OUTLIER_PARTITION, **self._index_kwargs)
        self._directory: Dict[int, _StoredObject] = {}

    # ------------------------------------------------------------------
    # Partition routing
    # ------------------------------------------------------------------
    @property
    def k(self) -> int:
        """Number of DVA partitions (excluding the outlier partition)."""
        return self.partitioning.k

    def frame_of(self, partition: int) -> Optional[CoordinateFrame]:
        """Coordinate frame of a DVA partition (None for the outlier index)."""
        if partition == OUTLIER_PARTITION:
            return None
        return self.partitioning.dvas[partition].frame

    def partition_for(self, obj: MovingObject) -> int:
        """Partition that should host ``obj`` given its current velocity."""
        partition = self.partitioning.partition_for(obj.velocity)
        return OUTLIER_PARTITION if partition is None else partition

    def partition_of(self, oid: int) -> Optional[int]:
        """Partition currently hosting object ``oid`` (None if not stored)."""
        record = self._directory.get(oid)
        return record.partition if record is not None else None

    def __len__(self) -> int:
        return len(self._directory)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert(self, obj: MovingObject) -> int:
        """Insert an object; returns the partition chosen for it."""
        if obj.oid in self._directory:
            raise KeyError(f"object {obj.oid} is already indexed; use update()")
        partition = self.partition_for(obj)
        stored = self._transform_object(obj, partition)
        self._index_of(partition).insert(stored)
        self._directory[obj.oid] = _StoredObject(
            partition=partition, original=obj, stored=stored
        )
        return partition

    def bulk_load(
        self, objects: Sequence[MovingObject], strategy: Optional[str] = None
    ) -> Dict[int, int]:
        """Partition-aware bulk build: route every object, pack each index once.

        All objects are routed to their partition and rotated into its frame
        in one pass, then every sub-index is built with its own ``bulk_load``
        (falling back to per-object insertion for index types without one).
        Returns the number of objects loaded per partition.

        ``strategy`` selects the packing strategy (e.g. ``"velocity_str"``)
        for sub-indexes whose loader understands one; loaders without a
        ``strategy`` parameter (the Bx family's sorted leaf packing) ignore
        it.

        The directory is only committed after every input has been validated
        and every sub-index loaded, so a rejected input (duplicate oid,
        non-empty sub-index) does not leave the manager claiming objects its
        indexes never received.

        Raises:
            KeyError: if any object id is already indexed or appears twice.
        """
        groups: Dict[int, List[MovingObject]] = {}
        records: Dict[int, _StoredObject] = {}
        for obj in objects:
            if obj.oid in self._directory or obj.oid in records:
                raise KeyError(f"object {obj.oid} is already indexed; use update()")
            partition = self.partition_for(obj)
            stored = self._transform_object(obj, partition)
            records[obj.oid] = _StoredObject(
                partition=partition, original=obj, stored=stored
            )
            groups.setdefault(partition, []).append(stored)
        for partition, group in groups.items():
            index = self._index_of(partition)
            loader = getattr(index, "bulk_load", None)
            if loader is not None:
                if strategy is not None and loader_accepts(loader, "strategy"):
                    # Reuse the manager's own DVAs instead of letting every
                    # sub-index re-run the velocity analyzer: a DVA
                    # partition is already direction-homogeneous (its frame
                    # aligns the dominant axis with x), so it bins against
                    # the frame's x-axis alone, while the outlier index
                    # bins its off-axis objects against the global DVAs.
                    # (``axes`` is probed separately — a loader may accept a
                    # strategy without accepting precomputed axes.)
                    if strategy == "velocity_str" and loader_accepts(loader, "axes"):
                        if partition == OUTLIER_PARTITION:
                            axes = [dva.axis for dva in self.partitioning.dvas]
                        else:
                            axes = [Vector(1.0, 0.0)]
                        loader(group, strategy=strategy, axes=axes)
                    else:
                        loader(group, strategy=strategy)
                else:
                    loader(group)
            else:
                for stored in group:
                    index.insert(stored)
        self._directory.update(records)
        return {partition: len(group) for partition, group in groups.items()}

    def delete(self, oid: int) -> bool:
        """Delete object ``oid`` from whichever partition hosts it."""
        record = self._directory.pop(oid, None)
        if record is None:
            return False
        return self._index_of(record.partition).delete(record.stored)

    def update(self, new: MovingObject) -> int:
        """Update an object (deletion + insertion, possibly migrating partitions)."""
        self.delete(new.oid)
        return self.insert(new)

    def _classify_and_transform(
        self, objects: List[MovingObject]
    ) -> Tuple[List[int], List[MovingObject]]:
        """Vectorized partition classification + frame rotation for a batch.

        One component-extraction pass for the whole batch feeds both the
        vectorized classification (perpendicular distances to every DVA at
        once) and the per-partition rotation.  The position and velocity
        components are packed into one pair of arrays (positions in
        ``[0, n)``, velocities in ``[n, 2n)``): a rotation is rigid, so one
        array rotation covers both and the per-partition numpy dispatch
        count halves.  Returns the partition per object and the stored
        (frame-rotated) snapshot per object, aligned with the input.
        """
        n = len(objects)
        xs = np.empty(2 * n)
        ys = np.empty(2 * n)
        xs[:n] = np.fromiter((o.position.x for o in objects), np.float64, n)
        ys[:n] = np.fromiter((o.position.y for o in objects), np.float64, n)
        xs[n:] = np.fromiter((o.velocity.vx for o in objects), np.float64, n)
        ys[n:] = np.fromiter((o.velocity.vy for o in objects), np.float64, n)
        # partition_for_arrays marks outliers with -1 == OUTLIER_PARTITION.
        partitions = self.partitioning.partition_for_arrays(xs[n:], ys[n:]).tolist()
        groups: Dict[int, List[int]] = {}
        for i, partition in enumerate(partitions):
            group = groups.get(partition)
            if group is None:
                groups[partition] = [i]
            else:
                group.append(i)
        stored_objects: List[Optional[MovingObject]] = [None] * n
        for partition, members in groups.items():
            frame = self.frame_of(partition)
            if frame is None:
                for i in members:
                    stored_objects[i] = objects[i]
                continue
            take = np.array(members, dtype=np.intp)
            take = np.concatenate((take, take + n))
            rx, ry = frame.to_frame_arrays(xs[take], ys[take])
            m = len(members)
            sx, sy = rx[:m].tolist(), ry[:m].tolist()
            svx, svy = rx[m:].tolist(), ry[m:].tolist()
            for j, i in enumerate(members):
                obj = objects[i]
                stored_objects[i] = MovingObject(
                    oid=obj.oid,
                    position=Point(sx[j], sy[j]),
                    velocity=Vector(svx[j], svy[j]),
                    reference_time=obj.reference_time,
                )
        return partitions, stored_objects

    def insert_batch(self, objects: Sequence[MovingObject]) -> List[int]:
        """Insert a batch; returns the partition chosen per object.

        The batch is classified and rotated in one vectorized pass
        (:meth:`_classify_and_transform`) and each touched sub-index
        receives one grouped ``insert_batch`` call.  Directory state ends
        up exactly as under object-by-object :meth:`insert`.

        Raises:
            KeyError: if any object id is already indexed or repeats
                within the batch (nothing is committed in that case).
        """
        objects = list(objects)
        if not objects:
            return []
        oids = [obj.oid for obj in objects]
        if len(self._directory.keys() & set(oids)) or len(set(oids)) != len(oids):
            duplicate = next(
                oid
                for i, oid in enumerate(oids)
                if oid in self._directory or oid in oids[:i]
            )
            raise KeyError(f"object {duplicate} is already indexed; use update()")
        partitions, stored_objects = self._classify_and_transform(objects)
        groups: Dict[int, List[int]] = {}
        for i, partition in enumerate(partitions):
            groups.setdefault(partition, []).append(i)
        for partition, members in groups.items():
            index = self._index_of(partition)
            batch_insert = getattr(index, "insert_batch", None)
            group = [stored_objects[i] for i in members]
            if batch_insert is not None:
                batch_insert(group)
            else:
                for stored in group:
                    index.insert(stored)
        for obj, partition, stored in zip(objects, partitions, stored_objects):
            self._directory[obj.oid] = _StoredObject(
                partition=partition, original=obj, stored=stored
            )
        return partitions

    def delete_batch(self, oids: Sequence[int]) -> List[bool]:
        """Delete a batch of object ids; flags align with the input order.

        Ids are grouped by their *current* partition (directory lookup,
        Section 5.3) and each sub-index receives one grouped
        ``delete_batch`` of the stored snapshots.  A repeated or unknown
        id yields ``False``, exactly as repeated :meth:`delete` calls
        would.
        """
        oids = list(oids)
        flags = [False] * len(oids)
        groups: Dict[int, List[Tuple[int, MovingObject]]] = {}
        for position, oid in enumerate(oids):
            record = self._directory.pop(oid, None)
            if record is None:
                continue
            groups.setdefault(record.partition, []).append((position, record.stored))
        for partition, members in groups.items():
            index = self._index_of(partition)
            batch_delete = getattr(index, "delete_batch", None)
            if batch_delete is not None:
                results = batch_delete([stored for _, stored in members])
            else:
                results = [index.delete(stored) for _, stored in members]
            for (position, _), result in zip(members, results):
                flags[position] = bool(result)
        return flags

    def update_batch(self, objects: Sequence[MovingObject]) -> List[int]:
        """Apply a batch of updates; returns the partition chosen per object.

        The batch is classified in one vectorized pass (perpendicular
        distances to every DVA for the whole batch at once instead of N
        scalar loops) and rotated into its target frames per *partition*
        (:meth:`_classify_and_transform`).  Grouped by partition, each
        underlying index then receives one batched call: same-partition
        updates go through the index's ``update_batch`` (where the
        Bx-tree collapses same-key updates into in-place replacements),
        migrations become one grouped ``delete_batch`` per source
        partition and one grouped ``insert_batch`` per target.  Directory
        state ends up exactly as under pair-by-pair ``update``.
        """
        objects = list(objects)
        if not objects:
            return []
        oids = [obj.oid for obj in objects]
        if len(objects) == 1 or len(set(oids)) != len(oids):
            # Repeated oids: relative order matters, take the scalar path.
            return [self.update(obj) for obj in objects]
        partitions, stored_objects = self._classify_and_transform(objects)
        same: Dict[int, List[Tuple[MovingObject, MovingObject]]] = {}
        deletes: Dict[int, List[MovingObject]] = {}
        inserts: Dict[int, List[MovingObject]] = {}
        directory = self._directory
        for obj, partition, stored in zip(objects, partitions, stored_objects):
            record = directory.get(obj.oid)
            if record is None:
                inserts.setdefault(partition, []).append(stored)
                directory[obj.oid] = _StoredObject(
                    partition=partition, original=obj, stored=stored
                )
                continue
            # Existing records are updated in place (the common case at
            # steady state) instead of being reallocated per update.
            if record.partition == partition:
                same.setdefault(partition, []).append((record.stored, stored))
            else:
                deletes.setdefault(record.partition, []).append(record.stored)
                inserts.setdefault(partition, []).append(stored)
                record.partition = partition
            record.original = obj
            record.stored = stored
        # One mixed batch per touched index: its deletions (migrations out),
        # insertions (migrations in) and same-partition updates run in a
        # single sweep instead of three.
        for partition in sorted(set(same) | set(deletes) | set(inserts)):
            index = self._index_of(partition)
            batch_apply = getattr(index, "apply_batch", None)
            group_deletes = deletes.get(partition, [])
            group_inserts = inserts.get(partition, [])
            group_updates = same.get(partition, [])
            if batch_apply is not None:
                batch_apply(
                    deletes=group_deletes,
                    inserts=group_inserts,
                    updates=group_updates,
                )
                continue
            for stored in group_deletes:
                index.delete(stored)
            for old_stored, new_stored in group_updates:
                index.delete(old_stored)
                index.insert(new_stored)
            for stored in group_inserts:
                index.insert(stored)
        return partitions

    # ------------------------------------------------------------------
    # Queries (Algorithm 3)
    # ------------------------------------------------------------------
    def range_query(self, query: RangeQuery) -> List[int]:
        """Object ids qualifying for ``query``."""
        results: List[int] = []
        seen = set()
        for partition in range(self.partitioning.k):
            transformed = self.transform_query(query, partition)
            candidates = self._index_of(partition).range_query(transformed, exact=False)
            self._filter_into(candidates, query, seen, results)
        candidates = self.outlier_index.range_query(query, exact=False)
        self._filter_into(candidates, query, seen, results)
        return results

    def range_query_batch(self, queries: Sequence[RangeQuery]) -> List[List[int]]:
        """Algorithm 3 over a whole query batch; results align with the input.

        The loop nesting is inverted relative to :meth:`range_query`: each
        DVA rotates every query of the batch once and hands the whole group
        to the sub-index's ``range_query_batch`` (shared descents /
        traversals), with per-query exact filtering preserving exactly the
        per-query answers and answer order of the scalar method.
        """
        queries = list(queries)
        if not queries:
            return []
        results: List[List[int]] = [[] for _ in queries]
        seen: List[set] = [set() for _ in queries]

        def run(index: MovingObjectIndex, transformed: List[RangeQuery]) -> None:
            """Collect one sub-index's candidates through its batch surface."""
            batch = getattr(index, "range_query_batch", None)
            if batch is not None:
                candidate_lists = batch(transformed, exact=False)
            else:
                candidate_lists = [
                    index.range_query(query, exact=False) for query in transformed
                ]
            for qi, candidates in enumerate(candidate_lists):
                self._filter_into(candidates, queries[qi], seen[qi], results[qi])

        for partition in range(self.partitioning.k):
            run(
                self._index_of(partition),
                [self.transform_query(query, partition) for query in queries],
            )
        run(self.outlier_index, queries)
        return results

    # ------------------------------------------------------------------
    # kNN queries (batched expanding-range filter over Algorithm 3)
    # ------------------------------------------------------------------
    def knn_query(
        self,
        center: Point,
        k: int,
        query_time: float,
        issue_time: float = 0.0,
        space: Optional[Rect] = None,
        radius_state: Optional[AdaptiveRadius] = None,
    ) -> List[Tuple[int, float]]:
        """The ``k`` objects predicted to be nearest ``center`` at ``query_time``.

        Single-probe convenience over :meth:`knn_query_batch`.

        Args:
            center: query point (in the original, unrotated frame).
            k: number of neighbours requested.
            query_time: the (future) timestamp the prediction refers to.
            issue_time: the current time the query is issued at.
            space: data space (initial radius seed and expansion cap).
            radius_state: optional cross-batch adaptive radius seed.

        Returns:
            Up to ``k`` ``(oid, distance)`` pairs sorted by ``(distance, oid)``.
        """
        probe = KNNQuery(center=center, k=k, query_time=query_time, issue_time=issue_time)
        return self.knn_query_batch([probe], space=space, radius_state=radius_state)[0]

    def knn_query_batch(
        self,
        queries: Sequence[KNNQuery],
        space: Optional[Rect] = None,
        radius_state: Optional[AdaptiveRadius] = None,
    ) -> List[List[Tuple[int, float]]]:
        """Answer a batch of kNN probes with shared expanding-range rounds.

        Each round runs Algorithm 3's filter step for every unfinished probe
        at once: every DVA rotates the round's circular filter queries into
        its frame once and hands the whole group to the sub-index's batched
        query surface (circles stay circles under the rigid rotation), and
        the candidate ranking — on the *original* object snapshots from the
        directory — runs vectorized in
        :func:`repro.objects.knn.expanding_knn_batch`.  Answers are
        identical to issuing the probes one at a time.

        Args:
            queries: the kNN probes (centers in the original frame).
            space: data space (initial radius seed and expansion cap).
            radius_state: optional cross-batch adaptive radius seed.

        Returns:
            Per probe, up to ``k`` ``(oid, distance)`` pairs sorted by
            ``(distance, oid)``.
        """
        return expanding_knn_batch(
            self._knn_candidates_batch,
            queries,
            space=space,
            population=len(self),
            radius_state=radius_state,
        )

    def _knn_candidates_batch(
        self, queries: Sequence[RangeQuery]
    ) -> List[List[CandidateState]]:
        """Candidate motion states per filter query across every partition.

        The unrefined twin of :meth:`range_query_batch`: the sub-indexes
        return raw candidate ids from their rotated frames, and each id is
        resolved through the directory to its *original* (unrotated)
        snapshot so the kNN distance ranking happens in the frame the query
        was asked in.
        """
        queries = list(queries)
        pools: List[dict] = [{} for _ in queries]
        directory = self._directory

        def run(index: MovingObjectIndex, transformed: List[RangeQuery]) -> None:
            """Resolve one sub-index's raw candidates into motion states."""
            fetch = getattr(index, "knn_candidates_batch", None)
            if fetch is not None:
                # The kNN-specific candidate surface: same shared machinery
                # as range_query_batch, but without the one-pass eviction
                # hint (filter rounds re-scan grown windows) and without the
                # exact predicate (we re-rank in the original frame anyway).
                candidate_lists = [
                    [state[0] for state in states] for states in fetch(transformed)
                ]
            elif (batch := getattr(index, "range_query_batch", None)) is not None:
                candidate_lists = batch(transformed, exact=False)
            else:
                candidate_lists = [
                    index.range_query(query, exact=False) for query in transformed
                ]
            for qi, candidates in enumerate(candidate_lists):
                pool = pools[qi]
                for oid in candidates:
                    if oid in pool:
                        continue
                    record = directory.get(oid)
                    if record is None:
                        continue
                    original = record.original
                    pool[oid] = (
                        oid,
                        original.position.x,
                        original.position.y,
                        original.velocity.vx,
                        original.velocity.vy,
                        original.reference_time,
                    )

        for partition in range(self.partitioning.k):
            run(
                self._index_of(partition),
                [self.transform_query(query, partition) for query in queries],
            )
        run(self.outlier_index, queries)
        return [list(pool.values()) for pool in pools]

    def transform_query(self, query: RangeQuery, partition: int) -> RangeQuery:
        """Rotate ``query`` into the coordinate frame of ``partition``.

        The transformed range is the axis-aligned MBR of the rotated range
        (Line 4 of Algorithm 3); circles remain circles because the rotation
        is rigid.  The query velocity, if any, is rotated as well.
        """
        frame = self.frame_of(partition)
        if frame is None:
            return query
        if isinstance(query.range, CircularRange):
            new_range = CircularRange(
                center=frame.to_frame_point(query.range.center),
                radius=query.range.radius,
            )
        else:
            new_range = RectangularRange(frame.to_frame_rect(query.range.rect))
        velocity = (
            frame.to_frame_vector(query.velocity) if query.velocity is not None else None
        )
        return RangeQuery(
            range=new_range,
            start_time=query.start_time,
            end_time=query.end_time,
            velocity=velocity,
            issue_time=query.issue_time,
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _index_of(self, partition: int) -> MovingObjectIndex:
        if partition == OUTLIER_PARTITION:
            return self.outlier_index
        return self.dva_indexes[partition]

    def _transform_object(self, obj: MovingObject, partition: int) -> MovingObject:
        frame = self.frame_of(partition)
        if frame is None:
            return obj
        return frame.to_frame_object(obj)

    def _filter_into(
        self,
        candidate_oids: Sequence[int],
        query: RangeQuery,
        seen: set,
        results: List[int],
    ) -> None:
        """Line 8 of Algorithm 3: keep candidates the original query accepts."""
        for oid in candidate_oids:
            if oid in seen:
                continue
            record = self._directory.get(oid)
            if record is None:
                continue
            if query.matches(record.original):
                seen.add(oid)
                results.append(oid)

    # ------------------------------------------------------------------
    # Introspection used by experiments
    # ------------------------------------------------------------------
    def partition_sizes(self) -> Dict[int, int]:
        """Number of live objects per partition (including the outlier)."""
        sizes: Dict[int, int] = {OUTLIER_PARTITION: 0}
        for i in range(self.partitioning.k):
            sizes[i] = 0
        for record in self._directory.values():
            sizes[record.partition] += 1
        return sizes

    def stored_object(self, oid: int) -> Optional[MovingObject]:
        """Original (unrotated) snapshot of a live object, or None."""
        record = self._directory.get(oid)
        return record.original if record is not None else None
