"""Principal components analysis of 2-D velocity points (Section 2.2).

PCA here serves a single purpose: given a cluster of velocity points, find
the axis through the origin of velocity space along which the points exhibit
the most variance — that axis is the cluster's dominant velocity axis.

Following the paper's geometric interpretation (a DVA is an *axis*, i.e. a
line through the origin of the velocity space, not through the data mean),
the components are computed from the second-moment matrix about the origin
by default; centering about the mean is available for the generic use of
PCA.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.geometry.vector import Vector


def principal_components(
    velocities: Sequence[Vector], center: bool = False
) -> List[Tuple[Vector, float]]:
    """Ranked principal components of a set of velocity points.

    Args:
        velocities: the sample of velocity points.
        center: when True the data is centered about its mean first (classic
            PCA); when False (default) components are computed about the
            origin, which is the right notion for velocity *axes*: a road
            carries traffic in both directions, so its velocity points are
            symmetric about the origin rather than about their mean.

    Returns:
        List of ``(unit_vector, variance)`` pairs sorted by decreasing
        variance.  The vectors are orthonormal.

    Raises:
        ValueError: if fewer than one velocity point is supplied.
    """
    if len(velocities) < 1:
        raise ValueError("PCA requires at least one velocity point")
    data = np.array([[v.vx, v.vy] for v in velocities], dtype=float)
    if center:
        data = data - data.mean(axis=0)
    # Second-moment (scatter) matrix; eigenvectors give the principal axes.
    scatter = data.T @ data / len(velocities)
    eigenvalues, eigenvectors = np.linalg.eigh(scatter)
    order = np.argsort(eigenvalues)[::-1]
    components: List[Tuple[Vector, float]] = []
    for index in order:
        vec = eigenvectors[:, index]
        components.append((Vector(float(vec[0]), float(vec[1])), float(eigenvalues[index])))
    return components


def first_principal_component(
    velocities: Sequence[Vector], center: bool = False
) -> Vector:
    """The first principal component (the candidate DVA) of ``velocities``.

    Degenerate inputs (a single point at the origin, or all points at the
    origin) fall back to the x-axis, which keeps the clustering loop of
    Algorithm 2 well defined.
    """
    components = principal_components(velocities, center=center)
    first, variance = components[0]
    if variance <= 0.0 or first.magnitude == 0.0:
        return Vector(1.0, 0.0)
    return first.normalized()


def explained_variance_ratio(velocities: Sequence[Vector], center: bool = False) -> float:
    """Fraction of total variance captured by the first component.

    A value close to 1.0 means the cluster is nearly one-dimensional in
    velocity space — exactly the situation VP exploits.
    """
    components = principal_components(velocities, center=center)
    total = sum(variance for _, variance in components)
    if total <= 0.0:
        return 1.0
    return components[0][1] / total
