"""The velocity partitioning (VP) technique — the paper's core contribution.

The package provides:

* :mod:`repro.core.pca` — principal components analysis of velocity points;
* :mod:`repro.core.pc_kmeans` — k-means clustering whose distance measure is
  the perpendicular distance to each cluster's first principal component
  (Algorithm 2), plus the two naive baselines of Section 5.1;
* :mod:`repro.core.outlier` — the outlier threshold τ chosen by minimizing
  the rate of search-area expansion (Section 5.2, Equations 8-10);
* :mod:`repro.core.velocity_analyzer` — Algorithm 1, combining the above;
* :mod:`repro.core.dva` — dominant velocity axes and coordinate transforms;
* :mod:`repro.core.index_manager` — routing of inserts/deletes/updates and
  range queries across the DVA indexes and the outlier index (Algorithm 3);
* :mod:`repro.core.partitioned_index` — ready-made Bx(VP) and TPR*(VP)
  factories used by the experiments;
* :mod:`repro.core.cost_model` — the analytic search-space-expansion model
  of Section 4 (Equations 2-7).
"""

from repro.core.dva import DominantVelocityAxis, CoordinateFrame
from repro.core.pca import principal_components, first_principal_component
from repro.core.pc_kmeans import (
    find_dvas,
    pca_only_dva,
    centroid_kmeans_dvas,
    PCKMeansResult,
)
from repro.core.outlier import optimal_tau, expansion_rate_objective
from repro.core.velocity_analyzer import VelocityAnalyzer, VelocityPartitioning
from repro.core.adaptation import TauMonitor, refresh_taus
from repro.core.index_manager import IndexManager
from repro.core.partitioned_index import (
    VPIndex,
    make_vp_bx_tree,
    make_vp_tprstar_tree,
)
from repro.core.cost_model import (
    unpartitioned_search_area,
    partitioned_search_area,
    unpartitioned_search_volume,
    partitioned_search_volume,
    search_volume_difference,
    crossover_time,
)

__all__ = [
    "DominantVelocityAxis",
    "CoordinateFrame",
    "principal_components",
    "first_principal_component",
    "find_dvas",
    "pca_only_dva",
    "centroid_kmeans_dvas",
    "PCKMeansResult",
    "optimal_tau",
    "expansion_rate_objective",
    "VelocityAnalyzer",
    "VelocityPartitioning",
    "TauMonitor",
    "refresh_taus",
    "IndexManager",
    "VPIndex",
    "make_vp_bx_tree",
    "make_vp_tprstar_tree",
    "unpartitioned_search_area",
    "partitioned_search_area",
    "unpartitioned_search_volume",
    "partitioned_search_volume",
    "search_volume_difference",
    "crossover_time",
]
