"""K-nearest-neighbour queries on top of predictive range queries.

The paper motivates the circular range query as "the filter step of the
k Nearest Neighbor query" (Section 6).  This module completes that story
with the standard expanding-range kNN algorithm: issue a circular
time-slice range query, and if it returns fewer than ``k`` objects, double
the radius and retry.  Once at least ``k`` objects fall inside the circle,
the true k nearest are guaranteed to be among them (any object closer than
the current k-th would also be inside the circle), so the candidates are
ranked by their predicted distance at the query time and the top ``k``
returned.

Two surfaces are provided:

* :func:`k_nearest_neighbors` — the classic per-query algorithm.  It only
  needs the index's ``range_query`` method plus a way to look up the
  current snapshot of an object by id, so it works unchanged for the
  Bx-tree, the TPR*-tree and their velocity-partitioned variants.
* :func:`expanding_knn_batch` — the batched driver behind the indexes'
  ``knn_query_batch`` methods.  A whole batch of :class:`KNNQuery` probes
  shares each expanding-range *round*: all still-unfinished queries issue
  their circular filter queries together (one shared index traversal per
  round), candidate motion states accumulate per query, and the
  candidate-ranking distance pass runs vectorized over numpy arrays.  An
  optional :class:`AdaptiveRadius` carries the final radii of one batch
  into the initial radii of the next, which saves filter rounds without
  ever changing answers (the stopping rule and the final in-circle ranking
  are radius-schedule independent).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from statistics import median
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.objects.moving_object import MovingObject
from repro.objects.queries import CircularRange, RangeQuery, TimeSliceRangeQuery

#: How much the search radius grows between filter rounds.
RADIUS_GROWTH_FACTOR = 2.0

#: Fallback initial radius when neither the data space nor an adaptive
#: estimate is available.
DEFAULT_INITIAL_RADIUS = 100.0

#: Safety bound on expansion rounds of the batched driver.  The radius grows
#: geometrically and is capped at the space diagonal, so real searches
#: terminate in a handful of rounds; the bound only guards degenerate
#: configurations.
DEFAULT_MAX_ROUNDS = 64

#: A candidate's flat motion state: ``(oid, x, y, vx, vy, reference_time)``.
CandidateState = Tuple[int, float, float, float, float, float]

#: Per-round candidate provider: maps the active queries' circular filter
#: queries to one list of candidate motion states per query.  Providers may
#: return supersets (unrefined index candidates); the driver ranks by exact
#: predicted distance and never trusts the provider's filtering.
CandidateProvider = Callable[[List[RangeQuery]], List[List[CandidateState]]]


@dataclass(frozen=True)
class KNNQuery:
    """One k-nearest-neighbour probe.

    Attributes:
        center: query point the neighbours are ranked against.
        k: number of neighbours requested.
        query_time: the (future) timestamp the prediction refers to.
        issue_time: the current time the query is issued at.
    """

    center: Point
    k: int
    query_time: float
    issue_time: float = 0.0


class AdaptiveRadius:
    """Carries kNN search radii across batches.

    The right initial filter radius depends on the data density around the
    query points, which the previous batch already discovered: each answered
    probe's k-th neighbour distance *is* the minimal radius that would have
    sufficed (the final filter radius stands in when a probe found fewer
    than ``k``).  The state tracks the batch median of ``radius / sqrt(k)``
    (the density-normalized unit radius — for a uniform density the radius
    containing ``k`` objects scales with ``sqrt(k)``) with an exponential
    moving average, and seeds the next batch with that unit scaled back up
    by each query's ``k`` plus a safety margin.

    Seeding is a pure performance hint: a larger-than-needed radius finishes
    in fewer rounds and a smaller one in more, but the stopping rule and the
    final in-circle ranking make the answers radius-schedule independent.
    """

    def __init__(self, margin: float = 1.25, smoothing: float = 0.5) -> None:
        if margin <= 0.0:
            raise ValueError("margin must be positive")
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.margin = margin
        self.smoothing = smoothing
        self._unit: Optional[float] = None

    @property
    def unit_radius(self) -> Optional[float]:
        """Current density-normalized radius estimate (None before any batch)."""
        return self._unit

    def suggest(self, k: int) -> Optional[float]:
        """Initial radius suggestion for a ``k``-NN probe (None without data)."""
        if self._unit is None or k <= 0:
            return None
        return self._unit * math.sqrt(k) * self.margin

    def observe(self, finals: Sequence[Tuple[int, float]]) -> None:
        """Fold one batch's ``(k, sufficient radius)`` pairs into the estimate."""
        units = [
            radius / math.sqrt(k)
            for k, radius in finals
            if k > 0 and radius > 0.0 and math.isfinite(radius)
        ]
        if not units:
            return
        batch_unit = median(units)
        if self._unit is None:
            self._unit = batch_unit
        else:
            s = self.smoothing
            self._unit = (1.0 - s) * self._unit + s * batch_unit


def initial_knn_radius(space: Rect, population: int, k: int) -> float:
    """A radius expected to contain about ``2k`` uniformly spread objects.

    Starting too small wastes filter rounds, starting too large wastes I/O;
    the uniform-density estimate ``sqrt(2k * area / (pi * n))`` is the usual
    compromise and is clamped to a sane floor.
    """
    if population <= 0 or k <= 0:
        return max(space.width, space.height)
    area_per_hit = space.area / population
    radius = math.sqrt(2.0 * k * area_per_hit / math.pi)
    return max(radius, 1e-6)


def expanding_knn_batch(
    candidates_for: CandidateProvider,
    queries: Sequence[KNNQuery],
    space: Optional[Rect] = None,
    population: Optional[int] = None,
    radius_state: Optional[AdaptiveRadius] = None,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
) -> List[List[Tuple[int, float]]]:
    """Answer a batch of kNN probes with shared expanding-range rounds.

    Every round issues the circular filter queries of all still-unfinished
    probes together through ``candidates_for`` (one shared traversal for the
    whole round), accumulates the returned candidate motion states per
    probe, and retires the probes whose circle provably contains their k
    nearest.  The distance pass that decides retirement and ranks the final
    answers runs vectorized over numpy arrays.

    Args:
        candidates_for: per-round candidate provider (see
            :data:`CandidateProvider`).
        queries: the kNN probes.
        space: data space; seeds the density-based initial radius and caps
            the expansion at the space diagonal.
        population: number of indexed objects (for the initial radius).
        radius_state: optional cross-batch radius seed; its estimate
            overrides the density-based initial radius and the batch's
            final radii are folded back into it.
        max_rounds: safety bound on the number of expansion rounds.

    Returns:
        Per probe, up to ``k`` ``(oid, distance)`` pairs sorted by
        ``(distance, oid)`` — fewer when fewer than ``k`` objects lie within
        the maximum search radius.
    """
    queries = list(queries)
    n = len(queries)
    results: List[Optional[List[Tuple[int, float]]]] = [None] * n
    radii: List[float] = []
    max_radii: List[float] = []
    for query in queries:
        radius = None
        if radius_state is not None:
            radius = radius_state.suggest(query.k)
        if radius is None and space is not None and population is not None:
            radius = initial_knn_radius(space, population, query.k)
        if radius is None:
            radius = DEFAULT_INITIAL_RADIUS
        radii.append(radius)
        if space is not None:
            max_radii.append(math.hypot(space.width, space.height))
        else:
            max_radii.append(radius * (RADIUS_GROWTH_FACTOR ** DEFAULT_MAX_ROUNDS))
    candidates: List[Dict[int, CandidateState]] = [{} for _ in queries]
    active = [i for i in range(n) if queries[i].k > 0]
    for i in range(n):
        if queries[i].k <= 0:
            results[i] = []
    rounds = 0
    while active:
        filter_queries = [
            TimeSliceRangeQuery(
                CircularRange(center=queries[i].center, radius=radii[i]),
                time=queries[i].query_time,
                issue_time=queries[i].issue_time,
            )
            for i in active
        ]
        fetched = candidates_for(filter_queries)
        rounds += 1
        still_active: List[int] = []
        for i, states in zip(active, fetched):
            pool = candidates[i]
            for state in states:
                if state[0] not in pool:
                    pool[state[0]] = state
            query = queries[i]
            oids, distances = _rank_distances(pool, query.center, query.query_time)
            in_circle = distances <= radii[i]
            done = (
                int(in_circle.sum()) >= query.k
                or radii[i] >= max_radii[i]
                or rounds >= max_rounds
            )
            if done:
                results[i] = _top_k(oids, distances, in_circle, query.k)
            else:
                radii[i] = min(radii[i] * RADIUS_GROWTH_FACTOR, max_radii[i])
                still_active.append(i)
        active = still_active
    if radius_state is not None:
        # A full answer's k-th distance is the tight density measurement;
        # the final filter radius (biased upward by the doubling schedule)
        # stands in only when fewer than k neighbours exist in range.
        finals = []
        for i in range(n):
            answer = results[i]
            if answer and len(answer) >= queries[i].k:
                finals.append((queries[i].k, answer[-1][1]))
            else:
                finals.append((queries[i].k, radii[i]))
        radius_state.observe(finals)
    return [result if result is not None else [] for result in results]


def _rank_distances(
    pool: Dict[int, CandidateState], center: Point, query_time: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized predicted distances of a candidate pool at ``query_time``."""
    m = len(pool)
    if m == 0:
        return np.empty(0, dtype=np.int64), np.empty(0)
    states = list(pool.values())
    oids = np.fromiter((s[0] for s in states), np.int64, m)
    xs = np.fromiter((s[1] for s in states), np.float64, m)
    ys = np.fromiter((s[2] for s in states), np.float64, m)
    vxs = np.fromiter((s[3] for s in states), np.float64, m)
    vys = np.fromiter((s[4] for s in states), np.float64, m)
    trefs = np.fromiter((s[5] for s in states), np.float64, m)
    dt = query_time - trefs
    px = xs + vxs * dt
    py = ys + vys * dt
    return oids, np.hypot(px - center.x, py - center.y)


def _top_k(
    oids: np.ndarray, distances: np.ndarray, in_circle: np.ndarray, k: int
) -> List[Tuple[int, float]]:
    """Top ``k`` in-circle candidates sorted by ``(distance, oid)``."""
    selected = np.nonzero(in_circle)[0]
    if selected.size == 0:
        return []
    order = np.lexsort((oids[selected], distances[selected]))
    top = selected[order[:k]]
    return [(int(oids[j]), float(distances[j])) for j in top]


def k_nearest_neighbors(
    index,
    center: Point,
    k: int,
    query_time: float,
    objects_by_id: Callable[[int], Optional[MovingObject]],
    issue_time: float = 0.0,
    space: Optional[Rect] = None,
    population: Optional[int] = None,
    initial_radius: Optional[float] = None,
    max_rounds: int = 12,
) -> List[Tuple[int, float]]:
    """The ``k`` objects predicted to be nearest ``center`` at ``query_time``.

    This is the classic per-query algorithm over the generic ``range_query``
    protocol; indexes with a ``knn_query_batch`` method answer batches of
    probes with shared filter rounds instead (see
    :func:`expanding_knn_batch`).

    Args:
        index: any moving-object index exposing ``range_query``.
        center: query point.
        k: number of neighbours requested.
        query_time: the (future) timestamp the prediction refers to.
        objects_by_id: callback returning the current snapshot of an object
            (used to rank candidates); return ``None`` for unknown ids.
        issue_time: the current time the query is issued at.
        space: data space, used to derive the initial radius and to cap the
            expansion; defaults to a cap derived from the candidates seen.
        population: number of indexed objects (for the initial radius guess).
        initial_radius: overrides the density-based initial radius.
        max_rounds: safety bound on the number of expansion rounds.

    Returns:
        Up to ``k`` ``(oid, distance)`` pairs sorted by increasing predicted
        distance (fewer when the index holds fewer than ``k`` objects within
        the maximum search radius).
    """
    if k <= 0:
        return []
    if initial_radius is not None:
        radius = initial_radius
    elif space is not None and population is not None:
        radius = initial_knn_radius(space, population, k)
    else:
        radius = DEFAULT_INITIAL_RADIUS
    if space is not None:
        max_radius = math.hypot(space.width, space.height)
    else:
        max_radius = radius * (RADIUS_GROWTH_FACTOR ** max_rounds)

    candidates: Sequence[int] = []
    for _ in range(max_rounds):
        query = TimeSliceRangeQuery(
            CircularRange(center=center, radius=radius),
            time=query_time,
            issue_time=issue_time,
        )
        candidates = index.range_query(query)
        if len(candidates) >= k or radius >= max_radius:
            break
        radius = min(radius * RADIUS_GROWTH_FACTOR, max_radius)

    ranked: List[Tuple[int, float]] = []
    for oid in candidates:
        obj = objects_by_id(oid)
        if obj is None:
            continue
        distance = obj.position_at(query_time).distance_to(center)
        ranked.append((oid, distance))
    ranked.sort(key=lambda pair: (pair[1], pair[0]))
    return ranked[:k]
