"""k-nearest-neighbour queries on top of predictive range queries.

The paper motivates the circular range query as "the filter step of the
k Nearest Neighbor query" (Section 6).  This module completes that story
with the standard expanding-range kNN algorithm: issue a circular
time-slice range query, and if it returns fewer than ``k`` objects, double
the radius and retry.  Once at least ``k`` objects fall inside the circle,
the true k nearest are guaranteed to be among them (any object closer than
the current k-th would also be inside the circle), so the candidates are
ranked by their predicted distance at the query time and the top ``k``
returned.

The algorithm only needs the index's ``range_query`` method plus a way to
look up the current snapshot of an object by id, so it works unchanged for
the Bx-tree, the TPR*-tree and their velocity-partitioned variants.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.objects.moving_object import MovingObject
from repro.objects.queries import CircularRange, TimeSliceRangeQuery

#: How much the search radius grows between filter rounds.
RADIUS_GROWTH_FACTOR = 2.0


def initial_knn_radius(space: Rect, population: int, k: int) -> float:
    """A radius expected to contain about ``2k`` uniformly spread objects.

    Starting too small wastes filter rounds, starting too large wastes I/O;
    the uniform-density estimate ``sqrt(2k * area / (pi * n))`` is the usual
    compromise and is clamped to a sane floor.
    """
    if population <= 0 or k <= 0:
        return max(space.width, space.height)
    area_per_hit = space.area / population
    radius = math.sqrt(2.0 * k * area_per_hit / math.pi)
    return max(radius, 1e-6)


def k_nearest_neighbors(
    index,
    center: Point,
    k: int,
    query_time: float,
    objects_by_id: Callable[[int], Optional[MovingObject]],
    issue_time: float = 0.0,
    space: Optional[Rect] = None,
    population: Optional[int] = None,
    initial_radius: Optional[float] = None,
    max_rounds: int = 12,
) -> List[Tuple[int, float]]:
    """The ``k`` objects predicted to be nearest ``center`` at ``query_time``.

    Args:
        index: any moving-object index exposing ``range_query``.
        center: query point.
        k: number of neighbours requested.
        query_time: the (future) timestamp the prediction refers to.
        objects_by_id: callback returning the current snapshot of an object
            (used to rank candidates); return ``None`` for unknown ids.
        issue_time: the current time the query is issued at.
        space: data space, used to derive the initial radius and to cap the
            expansion; defaults to a cap derived from the candidates seen.
        population: number of indexed objects (for the initial radius guess).
        initial_radius: overrides the density-based initial radius.
        max_rounds: safety bound on the number of expansion rounds.

    Returns:
        Up to ``k`` ``(oid, distance)`` pairs sorted by increasing predicted
        distance (fewer when the index holds fewer than ``k`` objects within
        the maximum search radius).
    """
    if k <= 0:
        return []
    if initial_radius is not None:
        radius = initial_radius
    elif space is not None and population is not None:
        radius = initial_knn_radius(space, population, k)
    else:
        radius = 100.0
    if space is not None:
        max_radius = math.hypot(space.width, space.height)
    else:
        max_radius = radius * (RADIUS_GROWTH_FACTOR ** max_rounds)

    candidates: Sequence[int] = []
    for _ in range(max_rounds):
        query = TimeSliceRangeQuery(
            CircularRange(center=center, radius=radius),
            time=query_time,
            issue_time=issue_time,
        )
        candidates = index.range_query(query)
        if len(candidates) >= k or radius >= max_radius:
            break
        radius = min(radius * RADIUS_GROWTH_FACTOR, max_radius)

    ranked: List[Tuple[int, float]] = []
    for oid in candidates:
        obj = objects_by_id(oid)
        if obj is None:
            continue
        distance = obj.position_at(query_time).distance_to(center)
        ranked.append((oid, distance))
    ranked.sort(key=lambda pair: (pair[1], pair[0]))
    return ranked[:k]
