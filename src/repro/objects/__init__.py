"""Moving-object data model and query types."""

from repro.objects.moving_object import MovingObject, ObjectUpdate
from repro.objects.queries import (
    RangeQuery,
    CircularRange,
    RectangularRange,
    TimeSliceRangeQuery,
    TimeIntervalRangeQuery,
    MovingRangeQuery,
)
from repro.objects.knn import (
    AdaptiveRadius,
    KNNQuery,
    expanding_knn_batch,
    initial_knn_radius,
    k_nearest_neighbors,
)

__all__ = [
    "MovingObject",
    "ObjectUpdate",
    "RangeQuery",
    "CircularRange",
    "RectangularRange",
    "TimeSliceRangeQuery",
    "TimeIntervalRangeQuery",
    "MovingRangeQuery",
    "KNNQuery",
    "AdaptiveRadius",
    "expanding_knn_batch",
    "k_nearest_neighbors",
    "initial_knn_radius",
]
