"""Moving-object data model and query types."""

from repro.objects.moving_object import MovingObject, ObjectUpdate
from repro.objects.queries import (
    RangeQuery,
    CircularRange,
    RectangularRange,
    TimeSliceRangeQuery,
    TimeIntervalRangeQuery,
    MovingRangeQuery,
)
from repro.objects.knn import k_nearest_neighbors, initial_knn_radius

__all__ = [
    "MovingObject",
    "ObjectUpdate",
    "RangeQuery",
    "CircularRange",
    "RectangularRange",
    "TimeSliceRangeQuery",
    "TimeIntervalRangeQuery",
    "MovingRangeQuery",
    "k_nearest_neighbors",
    "initial_knn_radius",
]
