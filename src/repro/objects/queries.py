"""Predictive range query types (Section 2.1 of the paper).

Three query types are supported:

* **time-slice range query** — objects inside the range at one future timestamp;
* **time-interval range query** — objects inside the range at any time within
  a future interval;
* **moving range query** — the range itself moves with a velocity during the
  interval.

The range shape is either rectangular or circular (the paper's default is a
circular range of radius 100-1000 m).  Every query knows how to decide, for
a given :class:`~repro.objects.MovingObject`, whether the object qualifies —
this exact predicate is the ground truth used by tests and by the final
filtering step of the VP range-query algorithm (Algorithm 3, line 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.geometry import kernels
from repro.geometry.moving_rect import MovingRect
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.vector import Vector
from repro.objects.moving_object import MovingObject


@dataclass(frozen=True)
class CircularRange:
    """A circular spatial range."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0.0:
            raise ValueError("radius must be non-negative")

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside (or on) the circle."""
        return self.center.squared_distance_to(point) <= self.radius * self.radius

    def bounding_rect(self) -> Rect:
        """Axis-aligned MBR of the circle."""
        return Rect.from_center(self.center, self.radius, self.radius)


@dataclass(frozen=True)
class RectangularRange:
    """A rectangular spatial range."""

    rect: Rect

    def contains(self, point: Point) -> bool:
        """Whether ``point`` lies inside (or on) the rectangle."""
        return self.rect.contains_point(point)

    def bounding_rect(self) -> Rect:
        """The rectangle itself (already an axis-aligned MBR)."""
        return self.rect

    @property
    def center(self) -> Point:
        """Center of the rectangle."""
        return self.rect.center


SpatialRange = Union[CircularRange, RectangularRange]


@dataclass(frozen=True)
class RangeQuery:
    """A predictive range query.

    Attributes:
        range: the spatial range (circular or rectangular), given at ``issue_time``.
        start_time: start of the query time interval (absolute timestamp).
        end_time: end of the query time interval; equal to ``start_time`` for
            a time-slice query.
        velocity: velocity of the range itself (moving range query); ``None``
            for a stationary range.
        issue_time: the time the query was issued (current time); the range is
            anchored at this time and projected forward when it moves.
    """

    range: SpatialRange
    start_time: float
    end_time: float
    velocity: Optional[Vector] = None
    issue_time: float = 0.0

    def __post_init__(self) -> None:
        if self.end_time < self.start_time:
            raise ValueError("end_time must not precede start_time")
        if self.start_time < self.issue_time:
            raise ValueError("query interval cannot start before the issue time")

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    @property
    def is_time_slice(self) -> bool:
        """Whether the query asks about one instant with a stationary range."""
        return self.end_time == self.start_time and self.velocity is None

    @property
    def is_moving(self) -> bool:
        """Whether the range itself moves during the interval."""
        return self.velocity is not None

    @property
    def predictive_time(self) -> float:
        """How far into the future the query looks (from the issue time)."""
        return self.end_time - self.issue_time

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def range_at(self, time: float) -> SpatialRange:
        """The spatial range at absolute ``time`` (moved if the query moves)."""
        if self.velocity is None or time == self.issue_time:
            return self.range
        elapsed = time - self.issue_time
        dx = self.velocity.vx * elapsed
        dy = self.velocity.vy * elapsed
        if isinstance(self.range, CircularRange):
            return CircularRange(self.range.center.translate(dx, dy), self.range.radius)
        return RectangularRange(self.range.rect.translated(dx, dy))

    def bounding_rect_over_interval(self) -> Rect:
        """MBR covering the range over the whole query interval."""
        start_rect = self.range_at(self.start_time).bounding_rect()
        end_rect = self.range_at(self.end_time).bounding_rect()
        return start_rect.union(end_rect)

    def as_moving_rect(self) -> MovingRect:
        """The query as a moving rectangle anchored at ``start_time``.

        Used by the TPR cost model and by the TPR-tree search, which both
        reason about the query's bounding rectangle and velocity.
        """
        rect = self.range_at(self.start_time).bounding_rect()
        vx = self.velocity.vx if self.velocity is not None else 0.0
        vy = self.velocity.vy if self.velocity is not None else 0.0
        return MovingRect(
            rect=rect,
            v_x_min=vx,
            v_y_min=vy,
            v_x_max=vx,
            v_y_max=vy,
            reference_time=self.start_time,
        )

    # ------------------------------------------------------------------
    # Exact qualification predicate
    # ------------------------------------------------------------------
    def matches(self, obj: MovingObject, samples: int = 16) -> bool:
        """Whether ``obj`` qualifies for this query (exact for our query types).

        For a stationary range the object's relative trajectory is linear, so
        containment over the interval can be decided from the minimum
        distance (circular range) or from a per-axis interval intersection
        (rectangular range).  For a moving range we subtract the query
        velocity from the object velocity, reducing to the stationary case.
        """
        return self.matches_motion(
            obj.position.x,
            obj.position.y,
            obj.velocity.vx,
            obj.velocity.vy,
            obj.reference_time,
        )

    def matches_motion(
        self, x: float, y: float, vx: float, vy: float, reference_time: float
    ) -> bool:
        """Flat-motion-state twin of :meth:`matches` (the leaf-filter hot path).

        Index scans hold candidate positions and velocities as plain floats
        (a degenerate leaf bound, a B+-tree record); this entry point decides
        qualification without reconstructing ``MovingObject``/``Point``/
        ``Vector`` objects per candidate.
        """
        rel_vx, rel_vy = vx, vy
        if self.velocity is not None:
            rel_vx -= self.velocity.vx
            rel_vy -= self.velocity.vy
        # Object position relative to the (possibly moving) range, expressed
        # in the frame where the range is fixed at its start_time location.
        start_range = self.range_at(self.start_time)
        elapsed = self.start_time - reference_time
        px = x + vx * elapsed
        py = y + vy * elapsed
        duration = self.end_time - self.start_time

        if isinstance(start_range, CircularRange):
            center = start_range.center
            return kernels.segment_intersects_circle(
                px, py, rel_vx, rel_vy, duration, center.x, center.y, start_range.radius
            )
        rect = start_range.rect
        return kernels.segment_intersects_rect(
            px, py, rel_vx, rel_vy, duration, rect.x_min, rect.y_min, rect.x_max, rect.y_max
        )


def _segment_intersects_circle(
    start: Point, velocity: Vector, duration: float, center: Point, radius: float
) -> bool:
    """Whether the segment ``start + velocity * [0, duration]`` meets the circle."""
    return kernels.segment_intersects_circle(
        start.x, start.y, velocity.vx, velocity.vy, duration, center.x, center.y, radius
    )


def _segment_intersects_rect(
    start: Point, velocity: Vector, duration: float, rect: Rect
) -> bool:
    """Whether the segment ``start + velocity * [0, duration]`` meets the rectangle."""
    return kernels.segment_intersects_rect(
        start.x,
        start.y,
        velocity.vx,
        velocity.vy,
        duration,
        rect.x_min,
        rect.y_min,
        rect.x_max,
        rect.y_max,
    )


# ----------------------------------------------------------------------
# Convenience constructors for the three query types of Section 2.1
# ----------------------------------------------------------------------
def TimeSliceRangeQuery(
    range: SpatialRange, time: float, issue_time: float = 0.0
) -> RangeQuery:
    """Objects inside ``range`` at the single future timestamp ``time``."""
    return RangeQuery(range=range, start_time=time, end_time=time, issue_time=issue_time)


def TimeIntervalRangeQuery(
    range: SpatialRange, start_time: float, end_time: float, issue_time: float = 0.0
) -> RangeQuery:
    """Objects inside ``range`` at any time in ``[start_time, end_time]``."""
    return RangeQuery(
        range=range, start_time=start_time, end_time=end_time, issue_time=issue_time
    )


def MovingRangeQuery(
    range: SpatialRange,
    velocity: Vector,
    start_time: float,
    end_time: float,
    issue_time: float = 0.0,
) -> RangeQuery:
    """Objects intersecting the moving ``range`` during ``[start_time, end_time]``."""
    return RangeQuery(
        range=range,
        velocity=velocity,
        start_time=start_time,
        end_time=end_time,
        issue_time=issue_time,
    )
