"""Predictive range query types (Section 2.1 of the paper).

Three query types are supported:

* **time-slice range query** — objects inside the range at one future timestamp;
* **time-interval range query** — objects inside the range at any time within
  a future interval;
* **moving range query** — the range itself moves with a velocity during the
  interval.

The range shape is either rectangular or circular (the paper's default is a
circular range of radius 100-1000 m).  Every query knows how to decide, for
a given :class:`~repro.objects.MovingObject`, whether the object qualifies —
this exact predicate is the ground truth used by tests and by the final
filtering step of the VP range-query algorithm (Algorithm 3, line 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.geometry.moving_rect import MovingRect
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.vector import Vector
from repro.objects.moving_object import MovingObject


@dataclass(frozen=True)
class CircularRange:
    """A circular spatial range."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if self.radius < 0.0:
            raise ValueError("radius must be non-negative")

    def contains(self, point: Point) -> bool:
        return self.center.squared_distance_to(point) <= self.radius * self.radius

    def bounding_rect(self) -> Rect:
        return Rect.from_center(self.center, self.radius, self.radius)


@dataclass(frozen=True)
class RectangularRange:
    """A rectangular spatial range."""

    rect: Rect

    def contains(self, point: Point) -> bool:
        return self.rect.contains_point(point)

    def bounding_rect(self) -> Rect:
        return self.rect

    @property
    def center(self) -> Point:
        return self.rect.center


SpatialRange = Union[CircularRange, RectangularRange]


@dataclass(frozen=True)
class RangeQuery:
    """A predictive range query.

    Attributes:
        range: the spatial range (circular or rectangular), given at ``issue_time``.
        start_time: start of the query time interval (absolute timestamp).
        end_time: end of the query time interval; equal to ``start_time`` for
            a time-slice query.
        velocity: velocity of the range itself (moving range query); ``None``
            for a stationary range.
        issue_time: the time the query was issued (current time); the range is
            anchored at this time and projected forward when it moves.
    """

    range: SpatialRange
    start_time: float
    end_time: float
    velocity: Optional[Vector] = None
    issue_time: float = 0.0

    def __post_init__(self) -> None:
        if self.end_time < self.start_time:
            raise ValueError("end_time must not precede start_time")
        if self.start_time < self.issue_time:
            raise ValueError("query interval cannot start before the issue time")

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    @property
    def is_time_slice(self) -> bool:
        return self.end_time == self.start_time and self.velocity is None

    @property
    def is_moving(self) -> bool:
        return self.velocity is not None

    @property
    def predictive_time(self) -> float:
        """How far into the future the query looks (from the issue time)."""
        return self.end_time - self.issue_time

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def range_at(self, time: float) -> SpatialRange:
        """The spatial range at absolute ``time`` (moved if the query moves)."""
        if self.velocity is None or time == self.issue_time:
            return self.range
        elapsed = time - self.issue_time
        dx = self.velocity.vx * elapsed
        dy = self.velocity.vy * elapsed
        if isinstance(self.range, CircularRange):
            return CircularRange(self.range.center.translate(dx, dy), self.range.radius)
        return RectangularRange(self.range.rect.translated(dx, dy))

    def bounding_rect_over_interval(self) -> Rect:
        """MBR covering the range over the whole query interval."""
        start_rect = self.range_at(self.start_time).bounding_rect()
        end_rect = self.range_at(self.end_time).bounding_rect()
        return start_rect.union(end_rect)

    def as_moving_rect(self) -> MovingRect:
        """The query as a moving rectangle anchored at ``start_time``.

        Used by the TPR cost model and by the TPR-tree search, which both
        reason about the query's bounding rectangle and velocity.
        """
        rect = self.range_at(self.start_time).bounding_rect()
        vx = self.velocity.vx if self.velocity is not None else 0.0
        vy = self.velocity.vy if self.velocity is not None else 0.0
        return MovingRect(
            rect=rect,
            v_x_min=vx,
            v_y_min=vy,
            v_x_max=vx,
            v_y_max=vy,
            reference_time=self.start_time,
        )

    # ------------------------------------------------------------------
    # Exact qualification predicate
    # ------------------------------------------------------------------
    def matches(self, obj: MovingObject, samples: int = 16) -> bool:
        """Whether ``obj`` qualifies for this query (exact for our query types).

        For a stationary range the object's relative trajectory is linear, so
        containment over the interval can be decided from the minimum
        distance (circular range) or from a per-axis interval intersection
        (rectangular range).  For a moving range we subtract the query
        velocity from the object velocity, reducing to the stationary case.
        """
        rel_velocity = obj.velocity
        if self.velocity is not None:
            rel_velocity = Vector(
                obj.velocity.vx - self.velocity.vx, obj.velocity.vy - self.velocity.vy
            )
        # Object position relative to the (possibly moving) range, expressed
        # in the frame where the range is fixed at its start_time location.
        start_range = self.range_at(self.start_time)
        obj_at_start = obj.position_at(self.start_time)
        duration = self.end_time - self.start_time

        if isinstance(start_range, CircularRange):
            return _segment_intersects_circle(
                obj_at_start,
                rel_velocity,
                duration,
                start_range.center,
                start_range.radius,
            )
        return _segment_intersects_rect(
            obj_at_start, rel_velocity, duration, start_range.rect
        )


def _segment_intersects_circle(
    start: Point, velocity: Vector, duration: float, center: Point, radius: float
) -> bool:
    """Whether the segment ``start + velocity * [0, duration]`` meets the circle."""
    # Minimize |p(t) - center|^2 over t in [0, duration].
    px = start.x - center.x
    py = start.y - center.y
    a = velocity.vx * velocity.vx + velocity.vy * velocity.vy
    b = 2.0 * (px * velocity.vx + py * velocity.vy)
    c = px * px + py * py
    if a == 0.0:
        best = c
    else:
        t_star = -b / (2.0 * a)
        t_star = min(max(t_star, 0.0), duration)
        best = min(c, a * t_star * t_star + b * t_star + c)
        end_val = a * duration * duration + b * duration + c
        best = min(best, end_val)
    return best <= radius * radius + 1e-9


def _segment_intersects_rect(
    start: Point, velocity: Vector, duration: float, rect: Rect
) -> bool:
    """Whether the segment ``start + velocity * [0, duration]`` meets the rectangle.

    Standard slab (Liang-Barsky) clipping of the parametric segment against
    the rectangle.
    """
    t0, t1 = 0.0, duration
    for (p, v, lo, hi) in (
        (start.x, velocity.vx, rect.x_min, rect.x_max),
        (start.y, velocity.vy, rect.y_min, rect.y_max),
    ):
        if v == 0.0:
            if p < lo - 1e-9 or p > hi + 1e-9:
                return False
            continue
        t_enter = (lo - p) / v
        t_exit = (hi - p) / v
        if t_enter > t_exit:
            t_enter, t_exit = t_exit, t_enter
        t0 = max(t0, t_enter)
        t1 = min(t1, t_exit)
        if t0 > t1 + 1e-9:
            return False
    return True


# ----------------------------------------------------------------------
# Convenience constructors for the three query types of Section 2.1
# ----------------------------------------------------------------------
def TimeSliceRangeQuery(
    range: SpatialRange, time: float, issue_time: float = 0.0
) -> RangeQuery:
    """Objects inside ``range`` at the single future timestamp ``time``."""
    return RangeQuery(range=range, start_time=time, end_time=time, issue_time=issue_time)


def TimeIntervalRangeQuery(
    range: SpatialRange, start_time: float, end_time: float, issue_time: float = 0.0
) -> RangeQuery:
    """Objects inside ``range`` at any time in ``[start_time, end_time]``."""
    return RangeQuery(
        range=range, start_time=start_time, end_time=end_time, issue_time=issue_time
    )


def MovingRangeQuery(
    range: SpatialRange,
    velocity: Vector,
    start_time: float,
    end_time: float,
    issue_time: float = 0.0,
) -> RangeQuery:
    """Objects intersecting the moving ``range`` during ``[start_time, end_time]``."""
    return RangeQuery(
        range=range,
        velocity=velocity,
        start_time=start_time,
        end_time=end_time,
        issue_time=issue_time,
    )
