"""Measurement utilities for the search-space-expansion analysis (Figure 7)."""

from repro.analysis.expansion import (
    ExpansionSample,
    leaf_mbr_expansion_rates,
    query_expansion_rates,
    expansion_anisotropy,
)

__all__ = [
    "ExpansionSample",
    "leaf_mbr_expansion_rates",
    "query_expansion_rates",
    "expansion_anisotropy",
]
