"""Search-space-expansion measurements (Figure 7 of the paper).

Figure 7 plots, per leaf node of a TPR*-tree (or per query of a Bx-tree),
the rate at which the search space expands along the two axes of the index's
coordinate system:

* for an unpartitioned index the two axes are x and y, and the points are
  spread over the 2-D quadrant (the search space grows in both directions);
* for a velocity-partitioned index the axes are the DVA and its orthogonal
  direction, and the points hug the DVA axis (near 1-D growth).

The functions here extract exactly those scatter points so the benchmark can
print them and quantify the anisotropy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.bxtree.bx_tree import BxTree
from repro.objects.queries import RangeQuery
from repro.tprtree.tpr_tree import TPRTree


@dataclass(frozen=True)
class ExpansionSample:
    """Expansion rate of one leaf node (or one query) along the two index axes.

    ``along`` is the expansion rate along the index's primary axis (the x
    axis for an unpartitioned index, the DVA for a partitioned one) and
    ``across`` the rate along the orthogonal axis, both in meters per
    timestamp.
    """

    along: float
    across: float
    label: str = ""

    @property
    def anisotropy(self) -> float:
        """Ratio of the larger to the smaller rate (1.0 means isotropic)."""
        lo, hi = sorted((abs(self.along), abs(self.across)))
        if hi == 0.0:
            return 1.0
        if lo == 0.0:
            return float("inf")
        return hi / lo


def leaf_mbr_expansion_rates(tree: TPRTree, label: str = "") -> List[ExpansionSample]:
    """Per-leaf MBR expansion rates of a TPR-tree (Figures 7a / 7b).

    The expansion rate of a leaf along an axis is the growth speed of its
    extent on that axis, ``v_max - v_min`` of the leaf's VBR.
    """
    samples: List[ExpansionSample] = []
    for bound in tree.iter_leaf_bounds():
        samples.append(
            ExpansionSample(
                along=bound.expansion_rate_x,
                across=bound.expansion_rate_y,
                label=label,
            )
        )
    return samples


def query_expansion_rates(
    tree: BxTree, queries: Sequence[RangeQuery], label: str = ""
) -> List[ExpansionSample]:
    """Per-query window expansion rates of a Bx-tree (Figures 7c / 7d).

    For each query and each active partition, the enlarged window is compared
    with the raw query window; dividing the enlargement by the time gap to
    the partition's label time gives the expansion rate per axis.
    """
    samples: List[ExpansionSample] = []
    for query in queries:
        base = query.bounding_rect_over_interval()
        for partition in tree.active_partitions:
            gap = abs(query.end_time - tree.label_time(partition))
            if gap == 0.0:
                continue
            window = tree.enlarged_window(query, partition)
            samples.append(
                ExpansionSample(
                    along=(window.width - base.width) / gap,
                    across=(window.height - base.height) / gap,
                    label=label,
                )
            )
    return samples


def expansion_anisotropy(samples: Iterable[ExpansionSample]) -> Optional[float]:
    """Mean anisotropy over ``samples`` (``None`` for an empty collection).

    Unpartitioned indexes on skewed data produce values close to 1 (the
    search space expands in both directions); partitioned indexes produce
    much larger values because the across-DVA expansion is small.
    """
    values = [s.anisotropy for s in samples if s.anisotropy != float("inf")]
    infinites = sum(1 for s in samples if s.anisotropy == float("inf"))
    total = values + [max(values) if values else 1.0] * infinites
    if not total:
        return None
    return sum(total) / len(total)


def mean_across_rate(samples: Iterable[ExpansionSample]) -> Optional[float]:
    """Mean expansion rate orthogonal to the primary axis."""
    rates = [abs(s.across) for s in samples]
    if not rates:
        return None
    return sum(rates) / len(rates)


def mean_along_rate(samples: Iterable[ExpansionSample]) -> Optional[float]:
    """Mean expansion rate along the primary axis."""
    rates = [abs(s.along) for s in samples]
    if not rates:
        return None
    return sum(rates) / len(rates)
