"""Per-figure experiment drivers (Section 6 of the paper).

Each function reproduces one figure of the paper's evaluation: it assembles
the workloads, runs the competing indexes through the harness, and returns a
list of row dictionaries with the same series the figure plots.  The
``benchmarks/`` pytest modules call these functions and print the tables;
EXPERIMENTS.md records the measured shapes against the paper's claims.

The paper-scale parameters (100K+ objects) are impractical for a pure-Python
simulator, so each driver takes a :class:`~repro.workload.WorkloadParameters`
whose defaults are scaled down but keep every ratio that drives the paper's
qualitative conclusions (see DESIGN.md, "Substitutions").

**Build protocol.**  The comparison drivers default to ``bulk_build=False``:
the paper's figures compare *insertion-built* indexes (the TPR*-tree's
choose-subtree/split/reinsertion heuristics are part of what is being
measured), so the figure assertions are calibrated against that structure.
Pass ``bulk_build=True`` to build with the ~10-40x faster STR/leaf-packing
``bulk_load`` path instead — useful for quick looks and tracked separately
by ``benchmarks/bench_speed.py``.
"""

from __future__ import annotations

import math
import time as _time
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.expansion import (
    expansion_anisotropy,
    leaf_mbr_expansion_rates,
    mean_across_rate,
    mean_along_rate,
    query_expansion_rates,
)
from repro.bench.harness import ExperimentRunner, build_standard_indexes, run_comparison
from repro.bxtree.bx_tree import BxTree
from repro.core.pc_kmeans import centroid_kmeans_dvas, find_dvas, pca_only_dva
from repro.core.partitioned_index import make_vp_bx_tree, make_vp_tprstar_tree
from repro.core.velocity_analyzer import VelocityAnalyzer, VelocityPartitioning
from repro.storage.buffer_manager import BufferManager
from repro.workload.generator import DATASETS, build_workload
from repro.workload.parameters import WorkloadParameters

Row = Dict[str, object]


def _default_params(params: Optional[WorkloadParameters]) -> WorkloadParameters:
    return params if params is not None else WorkloadParameters()


# ----------------------------------------------------------------------
# Figure 7: search space expansion, partitioned versus unpartitioned
# ----------------------------------------------------------------------
def fig07_search_space_expansion(
    dataset: str = "CH",
    params: Optional[WorkloadParameters] = None,
    bulk_build: bool = False,
    batch: bool = True,
) -> List[Row]:
    """Leaf-MBR / query expansion rates of the four indexes on one dataset."""
    params = _default_params(params)
    workload = build_workload(dataset, params)
    indexes = build_standard_indexes(workload, params)
    runner = ExperimentRunner(workload, bulk_build=bulk_build, batch=batch)
    rows: List[Row] = []
    queries = [e.query for e in workload.query_events][:20]
    for name, index in indexes.items():
        runner.run(index, name=name)  # build + replay so bounds reflect updates
        if name == "TPR*":
            samples = leaf_mbr_expansion_rates(index, label=name)
        elif name == "TPR*(VP)":
            samples = []
            for sub in index.dva_indexes:
                samples.extend(leaf_mbr_expansion_rates(sub, label=name))
        elif name == "Bx":
            samples = query_expansion_rates(index, queries, label=name)
        else:  # Bx(VP)
            samples = []
            for partition, sub in enumerate(index.dva_indexes):
                transformed = [
                    index.manager.transform_query(q, partition) for q in queries
                ]
                samples.extend(query_expansion_rates(sub, transformed, label=name))
        rows.append(
            {
                "index": name,
                "dataset": dataset,
                "samples": len(samples),
                "mean_along": round(mean_along_rate(samples) or 0.0, 2),
                "mean_across": round(mean_across_rate(samples) or 0.0, 2),
                "anisotropy": round(expansion_anisotropy(samples) or 1.0, 2),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figures 10/11/13: DVA discovery quality
# ----------------------------------------------------------------------
def fig10_dva_discovery(
    dataset: str = "SA",
    params: Optional[WorkloadParameters] = None,
    k: int = 2,
    bulk_build: bool = False,
    batch: bool = True,
) -> List[Row]:
    """Compare the naive DVA-finding approaches against Algorithm 2.

    The quality metric is the mean perpendicular distance from each velocity
    point to its assigned axis — small values mean the partitions really are
    near-1D, which is what the VP technique needs.
    """
    del bulk_build, batch  # accepted for driver-signature uniformity; no index is built
    params = _default_params(params)
    workload = build_workload(dataset, params, include_queries=False)
    velocities = workload.velocity_sample()

    def quality(result) -> float:
        """Mean perpendicular distance of the sample to its assigned axes."""
        total = 0.0
        for velocity, assignment in zip(velocities, result.assignments):
            total += velocity.perpendicular_distance_to_axis(result.axes[assignment])
        return total / len(velocities)

    rows: List[Row] = []
    for name, result in (
        ("PCA only (naive I)", pca_only_dva(velocities)),
        ("centroid k-means (naive II)", centroid_kmeans_dvas(velocities, k)),
        ("PC-distance k-means (ours)", find_dvas(velocities, k)),
    ):
        angles = sorted(round(math.degrees(axis.angle) % 180.0, 1) for axis in result.axes)
        rows.append(
            {
                "method": name,
                "dataset": dataset,
                "axes_deg": angles,
                "mean_perp_speed": round(quality(result), 2),
                "iterations": result.iterations,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 17: automatic τ versus fixed τ sweep
# ----------------------------------------------------------------------
def fig17_tau_threshold(
    dataset: str = "CH",
    params: Optional[WorkloadParameters] = None,
    fixed_taus: Sequence[float] = (0.0, 1.0, 2.0, 5.0, 10.0, 15.0, 20.0, 40.0, 60.0),
    which: Sequence[str] = ("Bx(VP)", "TPR*(VP)"),
    bulk_build: bool = False,
    batch: bool = True,
) -> List[Row]:
    """Query I/O of the VP indexes under fixed τ values versus the automatic τ."""
    params = _default_params(params)
    workload = build_workload(dataset, params)
    analyzer = VelocityAnalyzer(k=2)
    auto = analyzer.analyze(workload.velocity_sample())
    runner = ExperimentRunner(workload, bulk_build=bulk_build, batch=batch)

    def run_with(partitioning: VelocityPartitioning, label: str, tau_label: object) -> List[Row]:
        """Replay the workload on both VP indexes under one partitioning."""
        rows: List[Row] = []
        for name in which:
            if name == "Bx(VP)":
                index = make_vp_bx_tree(
                    partitioning, space=params.space, buffer_pages=params.buffer_pages,
                    max_update_interval=params.max_update_interval,
                    page_size=params.page_size,
                )
            else:
                index = make_vp_tprstar_tree(
                    partitioning, buffer_pages=params.buffer_pages, page_size=params.page_size
                )
            metrics = runner.run(index, name=name)
            rows.append(
                {
                    "index": name,
                    "dataset": dataset,
                    "tau": tau_label,
                    "mode": label,
                    "query_io": round(metrics.avg_query_io, 2),
                    "query_nodes": round(metrics.avg_query_node_accesses, 2),
                }
            )
        return rows

    rows: List[Row] = []
    rows.extend(run_with(auto, "auto", [round(d.tau, 2) for d in auto.dvas]))
    for tau in fixed_taus:
        fixed = VelocityPartitioning(
            dvas=[dva.with_tau(tau) for dva in auto.dvas],
            analysis_time_seconds=auto.analysis_time_seconds,
        )
        rows.extend(run_with(fixed, "fixed", tau))
    return rows


# ----------------------------------------------------------------------
# Figure 18: velocity analyzer overhead
# ----------------------------------------------------------------------
def fig18_analyzer_overhead(
    datasets: Sequence[str] = tuple(DATASETS),
    params: Optional[WorkloadParameters] = None,
    repetitions: int = 5,
) -> List[Row]:
    """Wall-clock time of the velocity analyzer per dataset (Figure 18)."""
    params = _default_params(params)
    rows: List[Row] = []
    for dataset in datasets:
        workload = build_workload(dataset, params, include_queries=False)
        sample = workload.velocity_sample()
        times = []
        for _ in range(repetitions):
            analyzer = VelocityAnalyzer(k=2)
            started = _time.perf_counter()
            analyzer.analyze(sample)
            times.append(_time.perf_counter() - started)
        rows.append(
            {
                "dataset": dataset,
                "sample_size": len(sample),
                "analyzer_ms": round(1000.0 * sum(times) / len(times), 2),
                "repetitions": repetitions,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Figure 19: effect of varying data sets
# ----------------------------------------------------------------------
def fig19_datasets(
    datasets: Sequence[str] = tuple(DATASETS),
    params: Optional[WorkloadParameters] = None,
    bulk_build: bool = False,
    batch: bool = True,
) -> List[Row]:
    """Query and update cost of the four indexes across the datasets."""
    params = _default_params(params)
    rows: List[Row] = []
    for dataset in datasets:
        workload = build_workload(dataset, params)
        for metrics in run_comparison(workload, params, bulk_build=bulk_build, batch=batch):
            rows.append(metrics.as_row())
    return rows


# ----------------------------------------------------------------------
# Figures 20-24: parameter sweeps
# ----------------------------------------------------------------------
def _sweep(
    dataset: str,
    params: WorkloadParameters,
    sweep_name: str,
    values: Iterable,
    make_params,
    bulk_build: bool = False,
    batch: bool = True,
) -> List[Row]:
    rows: List[Row] = []
    for value in values:
        swept = make_params(params, value)
        workload = build_workload(dataset, swept)
        for metrics in run_comparison(workload, swept, bulk_build=bulk_build, batch=batch):
            row = metrics.as_row()
            row[sweep_name] = value
            rows.append(row)
    return rows


def fig20_data_size(
    dataset: str = "SA",
    params: Optional[WorkloadParameters] = None,
    sizes: Sequence[int] = (1_000, 2_000, 3_000, 4_000, 5_000),
    bulk_build: bool = False,
    batch: bool = True,
) -> List[Row]:
    """Effect of object cardinality on range-query cost (paper: 100K-500K)."""
    params = _default_params(params)
    return _sweep(
        dataset,
        params,
        "num_objects",
        sizes,
        lambda p, v: p.scaled(num_objects=v),
        bulk_build=bulk_build,
        batch=batch,
    )


def fig21_max_speed(
    dataset: str = "SA",
    params: Optional[WorkloadParameters] = None,
    speeds: Sequence[float] = (20.0, 60.0, 100.0, 140.0, 200.0),
    bulk_build: bool = False,
    batch: bool = True,
) -> List[Row]:
    """Effect of the maximum object speed on range-query cost (paper: 20-200)."""
    params = _default_params(params)
    return _sweep(
        dataset,
        params,
        "max_speed",
        speeds,
        lambda p, v: p.scaled(max_speed=v),
        bulk_build=bulk_build,
        batch=batch,
    )


def fig22_query_radius(
    dataset: str = "SA",
    params: Optional[WorkloadParameters] = None,
    radii: Sequence[float] = (100.0, 250.0, 500.0, 750.0, 1000.0),
    bulk_build: bool = False,
    batch: bool = True,
) -> List[Row]:
    """Effect of the circular range radius on query cost (paper: 100-1000 m)."""
    params = _default_params(params)
    return _sweep(
        dataset,
        params,
        "query_radius",
        radii,
        lambda p, v: p.scaled(query_radius=v),
        bulk_build=bulk_build,
        batch=batch,
    )


def fig23_predictive_time(
    dataset: str = "SA",
    params: Optional[WorkloadParameters] = None,
    times: Sequence[float] = (20.0, 40.0, 60.0, 90.0, 120.0),
    bulk_build: bool = False,
    batch: bool = True,
) -> List[Row]:
    """Effect of the query predictive time on query cost (paper: 20-120 ts)."""
    params = _default_params(params)
    return _sweep(
        dataset,
        params,
        "predictive_time",
        times,
        lambda p, v: p.scaled(query_predictive_time=v),
        bulk_build=bulk_build,
        batch=batch,
    )


def fig24_predictive_time_rectangular(
    dataset: str = "SA",
    params: Optional[WorkloadParameters] = None,
    times: Sequence[float] = (20.0, 40.0, 60.0, 90.0, 120.0),
    bulk_build: bool = False,
    batch: bool = True,
) -> List[Row]:
    """Figure 23 repeated with 1000 m x 1000 m rectangular range queries."""
    params = _default_params(params).scaled(rectangular_queries=True)
    return _sweep(
        dataset,
        params,
        "predictive_time",
        times,
        lambda p, v: p.scaled(query_predictive_time=v),
        bulk_build=bulk_build,
        batch=batch,
    )


# ----------------------------------------------------------------------
# Ablations of the VP design choices (Section 5 parameters)
# ----------------------------------------------------------------------
def ablation_vp_parameters(
    dataset: str = "CH",
    params: Optional[WorkloadParameters] = None,
    ks: Sequence[int] = (1, 2, 3, 4),
    sample_sizes: Sequence[int] = (100, 1_000, 10_000),
    bulk_build: bool = False,
    batch: bool = True,
) -> List[Row]:
    """Sensitivity of Bx(VP) query cost to the number of DVAs and sample size."""
    params = _default_params(params)
    workload = build_workload(dataset, params)
    runner = ExperimentRunner(workload, bulk_build=bulk_build, batch=batch)
    rows: List[Row] = []
    for k in ks:
        analyzer = VelocityAnalyzer(k=k)
        partitioning = analyzer.analyze(workload.velocity_sample())
        index = make_vp_bx_tree(
            partitioning, space=params.space, buffer_pages=params.buffer_pages,
            max_update_interval=params.max_update_interval, page_size=params.page_size,
        )
        metrics = runner.run(index, name=f"Bx(VP) k={k}")
        rows.append(
            {
                "variant": "k",
                "value": k,
                "dataset": dataset,
                "query_io": round(metrics.avg_query_io, 2),
                "query_ms": round(metrics.avg_query_time_ms, 3),
            }
        )
    for sample_size in sample_sizes:
        analyzer = VelocityAnalyzer(k=2, sample_size=sample_size)
        partitioning = analyzer.analyze(workload.velocity_sample())
        index = make_vp_bx_tree(
            partitioning, space=params.space, buffer_pages=params.buffer_pages,
            max_update_interval=params.max_update_interval, page_size=params.page_size,
        )
        metrics = runner.run(index, name=f"Bx(VP) sample={sample_size}")
        rows.append(
            {
                "variant": "sample_size",
                "value": sample_size,
                "dataset": dataset,
                "query_io": round(metrics.avg_query_io, 2),
                "query_ms": round(metrics.avg_query_time_ms, 3),
            }
        )
    return rows


def ablation_space_filling_curve(
    dataset: str = "CH",
    params: Optional[WorkloadParameters] = None,
    bulk_build: bool = False,
    batch: bool = True,
) -> List[Row]:
    """Hilbert versus Z-curve for the (unpartitioned) Bx-tree."""
    params = _default_params(params)
    workload = build_workload(dataset, params)
    runner = ExperimentRunner(workload, bulk_build=bulk_build, batch=batch)
    rows: List[Row] = []
    for curve in ("hilbert", "z"):
        index = BxTree(
            buffer=BufferManager(capacity=params.buffer_pages),
            space=params.space,
            curve=curve,
            max_update_interval=params.max_update_interval,
            page_size=params.page_size,
        )
        metrics = runner.run(index, name=f"Bx[{curve}]")
        row = metrics.as_row()
        row["curve"] = curve
        rows.append(row)
    return rows
