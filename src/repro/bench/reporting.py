"""Plain-text reporting of experiment results.

The benchmark modules print one table per paper figure; these helpers keep
that formatting in one place.
"""

from __future__ import annotations

import io
from typing import Dict, List, Sequence


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Format a list of row dictionaries as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    widths = {col: len(str(col)) for col in columns}
    for row in rows:
        for col in columns:
            widths[col] = max(widths[col], len(str(row.get(col, ""))))
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    out.write(header + "\n")
    out.write("-" * len(header) + "\n")
    for row in rows:
        out.write(
            "  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns) + "\n"
        )
    return out.getvalue()


def rows_to_csv(rows: Sequence[Dict[str, object]]) -> str:
    """Render rows as CSV text (header from the union of keys, in order seen)."""
    if not rows:
        return ""
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(str(row.get(col, "")) for col in columns))
    return "\n".join(lines) + "\n"
