"""Command-line entry point for the experiment drivers.

Examples::

    python -m repro.bench --list
    python -m repro.bench --figure fig19
    python -m repro.bench --figure fig21 --dataset SA --objects 2000
    python -m repro.bench --all --output results/

Each figure prints its table to stdout; with ``--output`` a CSV per figure
is written as well.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from repro.bench import experiments
from repro.bench.reporting import format_table, rows_to_csv
from repro.workload.parameters import WorkloadParameters

#: Registry of figure name -> (description, driver).  Drivers that take a
#: dataset accept it as their first argument; the CLI passes the selected one.
FIGURES: Dict[str, tuple] = {
    "fig07": ("search space expansion (Figure 7)", experiments.fig07_search_space_expansion, True),
    "fig10": ("DVA discovery quality (Figures 10/11)", experiments.fig10_dva_discovery, True),
    "fig17": ("tau threshold sweep (Figure 17)", experiments.fig17_tau_threshold, True),
    "fig18": ("velocity analyzer overhead (Figure 18)", None, False),
    "fig19": ("effect of data sets (Figure 19)", None, False),
    "fig20": ("effect of data size (Figure 20)", experiments.fig20_data_size, True),
    "fig21": ("effect of maximum speed (Figure 21)", experiments.fig21_max_speed, True),
    "fig22": ("effect of query radius (Figure 22)", experiments.fig22_query_radius, True),
    "fig23": ("effect of predictive time (Figure 23)", experiments.fig23_predictive_time, True),
    "fig24": ("rectangular queries (Figure 24)", experiments.fig24_predictive_time_rectangular, True),
    "ablation_vp": ("ablation of k and sample size", experiments.ablation_vp_parameters, True),
    "ablation_curve": ("ablation of the space-filling curve", experiments.ablation_space_filling_curve, True),
}


def _run_figure(
    name: str,
    dataset: str,
    params: WorkloadParameters,
    bulk_build: bool = False,
    batch: bool = True,
) -> List[dict]:
    if name == "fig18":
        return experiments.fig18_analyzer_overhead(params=params)
    if name == "fig19":
        return experiments.fig19_datasets(params=params, bulk_build=bulk_build, batch=batch)
    _, driver, takes_dataset = FIGURES[name]
    if takes_dataset:
        return driver(dataset, params, bulk_build=bulk_build, batch=batch)
    return driver(params=params, bulk_build=bulk_build, batch=batch)


def build_parser() -> argparse.ArgumentParser:
    """Command-line interface of ``python -m repro.bench``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the paper's experiments and print/write their tables.",
    )
    parser.add_argument("--figure", choices=sorted(FIGURES), help="figure to reproduce")
    parser.add_argument("--all", action="store_true", help="run every figure")
    parser.add_argument("--list", action="store_true", help="list available figures")
    parser.add_argument("--dataset", default="SA", help="dataset for single-dataset figures")
    parser.add_argument("--objects", type=int, default=None, help="override object cardinality")
    parser.add_argument("--queries", type=int, default=None, help="override query count")
    parser.add_argument("--duration", type=float, default=None, help="override time duration")
    parser.add_argument("--output", default=None, help="directory to write CSV tables into")
    parser.add_argument(
        "--bulk-build",
        action="store_true",
        help="build indexes with bulk_load (fast) instead of the paper's "
        "insertion-built measurement protocol",
    )
    parser.add_argument(
        "--no-batch",
        action="store_true",
        help="replay events one by one instead of through the grouped "
        "batch execution path (update_batch / range_query_batch); useful "
        "for demonstrating both paths of the batched pipeline",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Run the requested figures and print (or write) their tables."""
    args = build_parser().parse_args(argv)
    if args.list:
        for name, (description, *_rest) in sorted(FIGURES.items()):
            print(f"{name:15s} {description}")
        return 0
    if not args.all and not args.figure:
        build_parser().print_help()
        return 2

    overrides = {}
    if args.objects is not None:
        overrides["num_objects"] = args.objects
    if args.queries is not None:
        overrides["num_queries"] = args.queries
    if args.duration is not None:
        overrides["time_duration"] = args.duration
    params = WorkloadParameters().scaled(**overrides) if overrides else WorkloadParameters()

    names = sorted(FIGURES) if args.all else [args.figure]
    if args.output:
        os.makedirs(args.output, exist_ok=True)
    for name in names:
        description = FIGURES[name][0]
        rows = _run_figure(
            name,
            args.dataset,
            params,
            bulk_build=args.bulk_build,
            batch=not args.no_batch,
        )
        print(format_table(rows, title=f"{name} — {description}"))
        if args.output:
            path = os.path.join(args.output, f"{name}.csv")
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(rows_to_csv(rows))
            print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
