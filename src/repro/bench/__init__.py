"""Experiment harness reproducing the paper's evaluation (Section 6)."""

from repro.bench.harness import (
    ExperimentRunner,
    IndexMetrics,
    build_standard_indexes,
    run_comparison,
)
from repro.bench.reporting import format_table, rows_to_csv
from repro.bench import experiments

__all__ = [
    "ExperimentRunner",
    "IndexMetrics",
    "build_standard_indexes",
    "run_comparison",
    "format_table",
    "rows_to_csv",
    "experiments",
]
