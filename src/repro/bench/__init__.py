"""Experiment harness reproducing the paper's evaluation (Section 6)."""

from repro.bench.harness import (
    ExperimentRunner,
    IndexMetrics,
    KNNMetrics,
    build_standard_indexes,
    knn_queries_from_workload,
    run_comparison,
    run_knn,
)
from repro.bench.reporting import format_table, rows_to_csv
from repro.bench import experiments

__all__ = [
    "ExperimentRunner",
    "IndexMetrics",
    "KNNMetrics",
    "build_standard_indexes",
    "knn_queries_from_workload",
    "run_comparison",
    "run_knn",
    "format_table",
    "rows_to_csv",
    "experiments",
]
