"""Core experiment harness.

The harness mirrors the paper's methodology: an index is bulk-loaded with
the workload's initial objects, the time-ordered event stream (updates and
range queries) is replayed against it, and the average physical I/O and
wall-clock time per query and per update are reported.

The same harness runs both unpartitioned indexes (Bx-tree, TPR*-tree) and
their VP counterparts, because they share the ``insert / update /
range_query`` protocol and expose their buffer pool for I/O accounting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.bulk import loader_accepts
from repro.bxtree.bx_tree import BxTree
from repro.core.partitioned_index import (
    VPIndex,
    make_vp_bx_tree,
    make_vp_tprstar_tree,
)
from repro.core.velocity_analyzer import VelocityAnalyzer
from repro.geometry.rect import Rect
from repro.objects.knn import AdaptiveRadius, KNNQuery
from repro.serve import ServeConfig, ShardedIndex, SupervisorConfig
from repro.storage.buffer_manager import BufferManager
from repro.tprtree.tpr_tree import TPRTree
from repro.tprtree.tprstar_tree import TPRStarTree
from repro.workload.events import UpdateEvent, Workload
from repro.workload.parameters import WorkloadParameters


@dataclass
class IndexMetrics:
    """Per-index metrics of one experiment run (the paper's four plots)."""

    index_name: str
    dataset: str = ""
    num_queries: int = 0
    num_updates: int = 0
    query_io_total: int = 0
    update_io_total: int = 0
    query_node_accesses: int = 0
    update_node_accesses: int = 0
    query_time_total: float = 0.0
    update_time_total: float = 0.0
    build_time: float = 0.0
    results_returned: int = 0
    query_buffer_hits: int = 0
    query_buffer_misses: int = 0
    update_buffer_hits: int = 0
    update_buffer_misses: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def avg_query_io(self) -> float:
        """Average physical I/O per range query."""
        return self.query_io_total / self.num_queries if self.num_queries else 0.0

    @property
    def avg_query_node_accesses(self) -> float:
        """Logical node accesses per query (buffer hits included)."""
        return self.query_node_accesses / self.num_queries if self.num_queries else 0.0

    @property
    def avg_update_node_accesses(self) -> float:
        """Logical node accesses per update (buffer hits included)."""
        return self.update_node_accesses / self.num_updates if self.num_updates else 0.0

    @property
    def avg_update_io(self) -> float:
        """Average physical I/O per update."""
        return self.update_io_total / self.num_updates if self.num_updates else 0.0

    @property
    def avg_query_time_ms(self) -> float:
        """Average wall-clock milliseconds per range query."""
        if not self.num_queries:
            return 0.0
        return 1000.0 * self.query_time_total / self.num_queries

    @property
    def avg_update_time_ms(self) -> float:
        """Average wall-clock milliseconds per update."""
        if not self.num_updates:
            return 0.0
        return 1000.0 * self.update_time_total / self.num_updates

    @property
    def query_buffer_hit_ratio(self) -> float:
        """Buffer hit ratio over the replay's query operations."""
        total = self.query_buffer_hits + self.query_buffer_misses
        return self.query_buffer_hits / total if total else 0.0

    @property
    def update_buffer_hit_ratio(self) -> float:
        """Buffer hit ratio over the replay's update operations."""
        total = self.update_buffer_hits + self.update_buffer_misses
        return self.update_buffer_hits / total if total else 0.0

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary used by the reporting helpers."""
        row: Dict[str, object] = {
            "index": self.index_name,
            "dataset": self.dataset,
            "query_io": round(self.avg_query_io, 2),
            "query_nodes": round(self.avg_query_node_accesses, 2),
            "query_ms": round(self.avg_query_time_ms, 3),
            "update_io": round(self.avg_update_io, 2),
            "update_ms": round(self.avg_update_time_ms, 3),
            "queries": self.num_queries,
            "updates": self.num_updates,
            "results": self.results_returned,
            "build_s": round(self.build_time, 3),
            "query_hit_ratio": round(self.query_buffer_hit_ratio, 4),
            "update_hit_ratio": round(self.update_buffer_hit_ratio, 4),
        }
        row.update({k: round(v, 4) for k, v in self.extra.items()})
        return row


#: An index builder maps a workload to a freshly built (empty) index.
IndexBuilder = Callable[[Workload], object]


#: Default width (in timestamps) of the batch-replay grouping window: the
#: granularity at which a location tracker would group co-arriving reports.
#: Event times are continuous, so exact-timestamp groups are singletons and
#: only a positive window produces real batches.
DEFAULT_BATCH_WINDOW = 1.0


class ExperimentRunner:
    """Replays a workload against one index and records metrics.

    Args:
        workload: the workload to replay.
        bulk_build: when True (default) the build phase uses the index's
            ``bulk_load`` if it has one, so the figure drivers measure
            steady-state update/query I/O rather than the Python overhead of
            N root-to-leaf insertions; pass False to force the incremental
            build path (used by the build-cost comparisons).
        batch: when True (default) events are grouped into same-window,
            same-type batches and replayed through the index's
            ``update_batch`` / ``range_query_batch`` when it has them
            (falling back to the per-event protocol otherwise); False
            replays strictly event by event.  Both modes produce identical
            query answers; batching only amortizes per-operation work.
        batch_window: grouping window in timestamps for batch mode.
        bulk_strategy: packing strategy forwarded to ``bulk_load`` for
            indexes that accept one (e.g. ``"velocity_str"`` on the TPR
            family); None uses each index's default packing.
    """

    def __init__(
        self,
        workload: Workload,
        bulk_build: bool = True,
        batch: bool = True,
        batch_window: float = DEFAULT_BATCH_WINDOW,
        bulk_strategy: Optional[str] = None,
    ) -> None:
        self.workload = workload
        self.bulk_build = bulk_build
        self.batch = batch
        self.batch_window = batch_window
        self.bulk_strategy = bulk_strategy

    def run(self, index, name: Optional[str] = None) -> IndexMetrics:
        """Load the initial objects, replay the events, and report metrics."""
        metrics = IndexMetrics(
            index_name=name or getattr(index, "name", type(index).__name__),
            dataset=self.workload.name,
        )
        stats = index.buffer.stats
        loader = getattr(index, "bulk_load", None) if self.bulk_build else None
        build_start = time.perf_counter()
        if loader is not None:
            if self.bulk_strategy is not None and loader_accepts(loader, "strategy"):
                loader(self.workload.initial_objects, strategy=self.bulk_strategy)
            else:
                loader(self.workload.initial_objects)
        else:
            for obj in self.workload.initial_objects:
                index.insert(obj)
        metrics.build_time = time.perf_counter() - build_start

        update_batch = getattr(index, "update_batch", None) if self.batch else None
        query_batch = getattr(index, "range_query_batch", None) if self.batch else None
        window = self.batch_window if self.batch else 0.0

        # Replay in same-window, same-type batches: identical event order,
        # with timing and I/O accounting per batch.  Indexes exposing the
        # batch protocol receive whole batches; single-event batches and
        # indexes without the protocol take the per-event path.
        for batch in self.workload.grouped_events(window=window):
            before = stats.physical.total
            before_logical = stats.logical.reads
            before_hits = stats.buffer.hits
            before_misses = stats.buffer.misses
            if isinstance(batch[0], UpdateEvent):
                started = time.perf_counter()
                if update_batch is not None and len(batch) > 1:
                    update_batch([(event.old, event.new) for event in batch])
                else:
                    for event in batch:
                        index.update(event.old, event.new)
                metrics.update_time_total += time.perf_counter() - started
                metrics.update_io_total += stats.physical.total - before
                metrics.update_node_accesses += stats.logical.reads - before_logical
                metrics.update_buffer_hits += stats.buffer.hits - before_hits
                metrics.update_buffer_misses += stats.buffer.misses - before_misses
                metrics.num_updates += len(batch)
            else:
                returned = 0
                started = time.perf_counter()
                if query_batch is not None and len(batch) > 1:
                    for result in query_batch([event.query for event in batch]):
                        returned += len(result)
                else:
                    for event in batch:
                        returned += len(index.range_query(event.query))
                metrics.query_time_total += time.perf_counter() - started
                metrics.query_io_total += stats.physical.total - before
                metrics.query_node_accesses += stats.logical.reads - before_logical
                metrics.query_buffer_hits += stats.buffer.hits - before_hits
                metrics.query_buffer_misses += stats.buffer.misses - before_misses
                metrics.num_queries += len(batch)
                metrics.results_returned += returned
        return metrics


# ----------------------------------------------------------------------
# kNN replay (the batched expanding-range surface)
# ----------------------------------------------------------------------
#: Default number of neighbours per probe in the kNN replay.
DEFAULT_KNN_K = 10


@dataclass
class KNNMetrics:
    """Metrics of one kNN replay (per-probe I/O, node accesses and latency)."""

    index_name: str
    num_queries: int = 0
    io_total: int = 0
    node_accesses: int = 0
    time_total: float = 0.0
    results: List[List] = field(default_factory=list)

    @property
    def avg_io(self) -> float:
        """Average physical I/O per kNN probe."""
        return self.io_total / self.num_queries if self.num_queries else 0.0

    @property
    def avg_node_accesses(self) -> float:
        """Average logical node accesses per kNN probe."""
        return self.node_accesses / self.num_queries if self.num_queries else 0.0

    @property
    def avg_time_ms(self) -> float:
        """Average wall-clock milliseconds per kNN probe."""
        if not self.num_queries:
            return 0.0
        return 1000.0 * self.time_total / self.num_queries


def knn_queries_from_workload(workload: Workload, k: int = DEFAULT_KNN_K) -> List[KNNQuery]:
    """One kNN probe per range-query event of ``workload``.

    The probes reuse the events' range centers and *predictive offsets*
    (how far each query looks ahead of its issue time), but are issued at
    the end of the event stream: the kNN replay runs against the fully
    replayed index, and a moving-object index only answers questions about
    the present and future of its clock — an entry's time-parameterized
    bound does not cover the object's past positions, so a probe issued
    "before" the index clock would silently lose candidates.
    """
    events = workload.sorted_events()
    issue_time = events[-1].time if events else 0.0
    probes: List[KNNQuery] = []
    for event in workload.query_events:
        query = event.query
        probes.append(
            KNNQuery(
                center=query.range.center,
                k=k,
                query_time=issue_time + query.predictive_time,
                issue_time=issue_time,
            )
        )
    return probes


def run_knn(
    index,
    probes: Sequence[KNNQuery],
    space: Optional[Rect] = None,
    batch: bool = True,
    batch_size: Optional[int] = None,
    radius_state: Optional[AdaptiveRadius] = None,
    name: Optional[str] = None,
) -> KNNMetrics:
    """Replay kNN probes against ``index`` and record per-probe metrics.

    In batch mode the probes are grouped into fixed-size batches (the
    concurrent-users model: a tracking service ranks nearest vehicles for
    many subscribers at once) and each group runs through the index's
    ``knn_query_batch`` with shared expanding-range rounds; per-event mode
    issues one ``knn_query`` per probe.  Both modes return identical
    answers — batching only amortizes traversals and filter rounds.

    Args:
        index: any index exposing ``knn_query`` / ``knn_query_batch``.
        probes: the kNN probes to replay, in order.
        space: data space (initial radius seed and expansion cap).
        batch: replay through the batch surface (default) or per event.
        batch_size: probes per batch in batch mode; None runs one batch.
        radius_state: optional cross-batch adaptive radius seed (batch mode).
        name: metrics label; defaults to the index's own name.

    Returns:
        The replay's :class:`KNNMetrics`, including the per-probe answers.
    """
    probes = list(probes)
    metrics = KNNMetrics(index_name=name or getattr(index, "name", type(index).__name__))
    stats = index.buffer.stats
    if batch:
        step = batch_size if batch_size is not None else max(len(probes), 1)
        groups = [probes[i : i + step] for i in range(0, len(probes), step)]
    else:
        groups = [[probe] for probe in probes]
    for group in groups:
        io_before = stats.physical.total
        nodes_before = stats.logical.reads
        started = time.perf_counter()
        if batch:
            answers = index.knn_query_batch(group, space=space, radius_state=radius_state)
        else:
            answers = [
                index.knn_query(
                    probe.center,
                    probe.k,
                    probe.query_time,
                    issue_time=probe.issue_time,
                    space=space,
                )
                for probe in group
            ]
        metrics.time_total += time.perf_counter() - started
        metrics.io_total += stats.physical.total - io_before
        metrics.node_accesses += stats.logical.reads - nodes_before
        metrics.num_queries += len(group)
        metrics.results.extend(answers)
    return metrics


# ----------------------------------------------------------------------
# Standard index line-up of the experiments
# ----------------------------------------------------------------------
STANDARD_INDEXES = ("Bx", "Bx(VP)", "TPR*", "TPR*(VP)")

#: Extended line-up including the original TPR-tree baseline (used by the
#: TPR-family ablation benchmark; the paper's figures only plot the four
#: standard indexes).
EXTENDED_INDEXES = ("Bx", "Bx(VP)", "TPR", "TPR*", "TPR*(VP)")


def build_standard_indexes(
    workload: Workload,
    params: Optional[WorkloadParameters] = None,
    which: Sequence[str] = STANDARD_INDEXES,
    k: int = 2,
    analyzer_seed: int = 0,
    shards: int = 1,
    supervisor: Optional[SupervisorConfig] = None,
    executor: Optional[object] = None,
    max_workers: Optional[int] = None,
    disk_profile: Optional[object] = None,
    key_store: Optional[object] = None,
) -> Dict[str, object]:
    """Build the paper's four competing indexes for one workload.

    The VP variants run the velocity analyzer over the workload's velocity
    sample (10,000 points maximum, as in the paper) before the indexes are
    created.

    With ``shards > 1`` every family is wrapped in a
    :class:`~repro.serve.ShardedIndex`: ``shards`` independent instances
    (each with its own buffer pool of ``params.buffer_pages`` — the
    shared-nothing serving model gives every worker its own RAM), behind
    the hash router of the serving layer.  The VP variants' velocity
    analysis still runs once; the shards share the partitioning result.
    The wrapper is given a ``shard_factory`` building one more identical
    instance, which arms automatic WAL-replay shard recovery (see
    ``docs/robustness.md``); ``supervisor`` tunes the retry/breaker/timeout
    policy and ``executor`` picks where shard calls run (``"serial"`` /
    ``"thread"`` / ``"process"`` or an :class:`~repro.serve.Executor`
    instance — a fresh instance is required per index, so string specs are
    the convenient spelling here), with ``max_workers`` capping the
    fan-out width.  See ``docs/serving.md``.

    ``disk_profile`` (a :class:`~repro.storage.faults.FaultProfile`)
    slides a fault injector under every built instance's simulated disk —
    sharded, unsharded baseline and recovery-factory shards alike — so a
    whole comparison runs under one device model (e.g. an SSD-class
    ``read_latency_s``).  The injector travels with the shard into worker
    processes under the ``process`` executor.

    ``key_store`` selects the Bx key-store backend (``"btree"``/``"flat"``
    or a backend class; see ``docs/backends.md``) for the ``Bx`` and
    ``Bx(VP)`` families — the TPR family has no 1-D key store and ignores
    it.  A name or class, never an instance: the builder makes several
    trees (shards, VP sub-indexes, recovery factories) and each needs its
    own store.
    """
    if params is None:
        params = WorkloadParameters()
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if key_store is not None and not isinstance(key_store, (str, type)):
        raise TypeError(
            "build_standard_indexes builds one key store per tree; pass a "
            "backend name or class, not an instance"
        )
    indexes: Dict[str, object] = {}
    partitioning = None
    if any(name.endswith("(VP)") for name in which):
        analyzer = VelocityAnalyzer(k=k, seed=analyzer_seed)
        partitioning = analyzer.analyze(workload.velocity_sample())

    def make(name: str) -> object:
        """Build one unsharded instance of the named index family."""
        if name == "Bx":
            return BxTree(
                buffer=BufferManager(capacity=params.buffer_pages),
                space=params.space,
                max_update_interval=params.max_update_interval,
                page_size=params.page_size,
                key_store=key_store,
            )
        if name == "TPR":
            return TPRTree(
                buffer=BufferManager(capacity=params.buffer_pages),
                page_size=params.page_size,
            )
        if name == "TPR*":
            return TPRStarTree(
                buffer=BufferManager(capacity=params.buffer_pages),
                page_size=params.page_size,
            )
        if name == "Bx(VP)":
            return make_vp_bx_tree(
                partitioning,
                space=params.space,
                buffer_pages=params.buffer_pages,
                max_update_interval=params.max_update_interval,
                page_size=params.page_size,
                key_store=key_store,
            )
        if name == "TPR*(VP)":
            return make_vp_tprstar_tree(
                partitioning,
                buffer_pages=params.buffer_pages,
                page_size=params.page_size,
            )
        raise ValueError(f"unknown index name {name!r}")

    def make_instance(name: str) -> object:
        """``make`` plus the shared device model, when one is configured."""
        index = make(name)
        if disk_profile is not None:
            from repro.storage.faults import fault_wrap

            fault_wrap(index.buffer, profile=disk_profile)
        return index

    for name in which:
        if shards == 1:
            indexes[name] = make_instance(name)
        else:
            indexes[name] = ShardedIndex(
                [make_instance(name) for _ in range(shards)],
                config=ServeConfig(
                    name=name,
                    space=params.space,
                    shard_factory=lambda name=name: make_instance(name),
                    supervisor=supervisor,
                    executor=executor,
                    max_workers=max_workers,
                    key_store=key_store,
                ),
            )
    return indexes


def run_comparison(
    workload: Workload,
    params: Optional[WorkloadParameters] = None,
    which: Sequence[str] = STANDARD_INDEXES,
    k: int = 2,
    bulk_build: bool = True,
    batch: bool = True,
    shards: int = 1,
) -> List[IndexMetrics]:
    """Run the full comparison of the standard indexes on one workload."""
    runner = ExperimentRunner(workload, bulk_build=bulk_build, batch=batch)
    results: List[IndexMetrics] = []
    indexes = build_standard_indexes(
        workload, params=params, which=which, k=k, shards=shards
    )
    for name, index in indexes.items():
        results.append(runner.run(index, name=name))
    return results


def vp_index_for(index: object) -> Optional[VPIndex]:
    """Return the argument if it is a VP index (convenience for experiments)."""
    return index if isinstance(index, VPIndex) else None
