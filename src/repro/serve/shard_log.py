"""Per-shard write-ahead update log backing shard recovery.

Every routed mutation of a :class:`~repro.serve.ShardedIndex` — bulk
load, insert, delete, update, and their batch forms — is appended to the
owning shard's :class:`ShardLog` *before* the shard executes it.  The log
is therefore the shard's complete intended history: replaying it, in
order, through the same public calls into a freshly built empty shard
deterministically reconstructs the state of a shard that never failed
(the indexes are deterministic functions of their operation sequence, so
the rebuilt structure — and every subsequent answer — is bit-identical;
``tests/test_faults.py`` pins this).

Logging ahead of execution is what makes mid-operation failure safe: if
a shard dies halfway through applying a batch, its on-"disk" state is
suspect, but the log still holds the full batch — recovery discards the
suspect shard entirely and replays the log, so the batch is applied
exactly once on the rebuilt timeline.

The log is in-memory and unbounded, which matches the simulator's scale
(a replayed workload is a few thousand events); a durable deployment
would append the same records to stable storage and add checkpointing so
replay cost stays bounded.  See ``docs/robustness.md``.
"""

from __future__ import annotations

from typing import Any, List, Sequence, Tuple

#: Operations a :class:`ShardLog` record may carry.
LOG_OPS = (
    "bulk_load",
    "insert",
    "insert_batch",
    "delete",
    "delete_batch",
    "update",
    "update_batch",
)


class ShardLog:
    """An append-only, in-memory WAL of one shard's mutations."""

    __slots__ = ("_records",)

    def __init__(self) -> None:
        self._records: List[Tuple[str, Any]] = []

    def append(self, op: str, payload: Any) -> None:
        """Append one record; ``op`` must be a member of :data:`LOG_OPS`.

        Sequence payloads are copied into tuples so a caller mutating its
        batch list after the call cannot corrupt the replay history.
        """
        if op not in LOG_OPS:
            raise ValueError(f"unknown shard-log op {op!r}")
        if op == "bulk_load":
            objects, strategy = payload
            payload = (tuple(objects), strategy)
        elif op.endswith("_batch"):
            payload = tuple(payload)
        self._records.append((op, payload))

    def replay(self, index: Any) -> Any:
        """Apply every record to ``index`` in order; returns the last result.

        The last record's return value is what the *current* (most
        recently logged) operation would have returned on a never-failed
        shard — exactly what the supervisor must hand back to the caller
        whose mutation triggered the recovery.
        """
        result: Any = None
        for op, payload in self._records:
            if op == "bulk_load":
                objects, strategy = payload
                loader = index.bulk_load
                if strategy is not None:
                    result = loader(list(objects), strategy=strategy)
                else:
                    result = loader(list(objects))
            elif op == "insert":
                result = index.insert(payload)
            elif op == "insert_batch":
                result = index.insert_batch(list(payload))
            elif op == "delete":
                result = index.delete(payload)
            elif op == "delete_batch":
                result = index.delete_batch(list(payload))
            elif op == "update":
                old, new = payload
                result = index.update(old, new)
            else:  # update_batch
                result = index.update_batch(list(payload))
        return result

    @property
    def records(self) -> Sequence[Tuple[str, Any]]:
        """The logged records, oldest first (read-only view)."""
        return tuple(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Drop the history (only sensible when the shard is discarded)."""
        self._records.clear()


__all__ = ["LOG_OPS", "ShardLog"]
