"""Per-shard write-ahead update log backing shard recovery.

Every routed mutation of a :class:`~repro.serve.ShardedIndex` — bulk
load, insert, delete, update, and their batch forms — is appended to the
owning shard's :class:`ShardLog` *before* the shard executes it.  The log
is therefore the shard's complete intended history: replaying it, in
order, through the same public calls into a freshly built empty shard
deterministically reconstructs the state of a shard that never failed
(the indexes are deterministic functions of their operation sequence, so
the rebuilt structure — and every subsequent answer — is bit-identical;
``tests/test_faults.py`` pins this).

Logging ahead of execution is what makes mid-operation failure safe: if
a shard dies halfway through applying a batch, its on-"disk" state is
suspect, but the log still holds the full batch — recovery discards the
suspect shard entirely and replays the log, so the batch is applied
exactly once on the rebuilt timeline.

The base :class:`ShardLog` is in-memory; replay cost is kept bounded by
*compaction* — the serving layer truncates the log after a successful
checkpoint or recovery, once the records are folded into a checkpoint
image (durable) or deepcopy baseline (in-memory), so a recovery replays
only the tail since the last checkpoint instead of the shard's full
history.  :class:`DurableShardLog` adds the on-disk mode: every record is
appended to a file as a length-prefixed, CRC32-checksummed, fsync'd
pickle, and reopening the file recovers the record list — truncating a
torn tail, which is safe because records are appended *before* execution,
so a torn final record describes a mutation whose caller never got an
acknowledgement.  See ``docs/storage.md`` and ``docs/robustness.md``.
"""

from __future__ import annotations

import os
import pickle
import struct
import threading
import zlib
from typing import Any, Callable, List, Optional, Sequence, Tuple

#: Operations a :class:`ShardLog` record may carry.
LOG_OPS = (
    "bulk_load",
    "insert",
    "insert_batch",
    "delete",
    "delete_batch",
    "update",
    "update_batch",
)


class ShardLog:
    """An append-only, in-memory WAL of one shard's mutations."""

    __slots__ = ("_records",)

    def __init__(self) -> None:
        self._records: List[Tuple[str, Any, Optional[int]]] = []

    def append(self, op: str, payload: Any, epoch: Optional[int] = None) -> None:
        """Append one record; ``op`` must be a member of :data:`LOG_OPS`.

        Sequence payloads are copied into tuples so a caller mutating its
        batch list after the call cannot corrupt the replay history.
        ``epoch`` is the global snapshot epoch the mutation was assigned
        (``None`` for unversioned callers); replaying through a versioned
        shard restores its epoch counter from these values.
        """
        if op not in LOG_OPS:
            raise ValueError(f"unknown shard-log op {op!r}")
        if op == "bulk_load":
            objects, strategy = payload
            payload = (tuple(objects), strategy)
        elif op.endswith("_batch"):
            payload = tuple(payload)
        self._store(op, payload, epoch)

    def _store(self, op: str, payload: Any, epoch: Optional[int]) -> None:
        """Persist one canonicalized record (subclasses add durability)."""
        self._records.append((op, payload, epoch))

    def replay(self, index: Any) -> Any:
        """Apply every record to ``index`` in order; returns the last result.

        The last record's return value is what the *current* (most
        recently logged) operation would have returned on a never-failed
        shard — exactly what the supervisor must hand back to the caller
        whose mutation triggered the recovery.

        A target exposing ``apply_logged`` (a versioned shard) receives
        each record with its epoch, so recovery also restores the shard's
        epoch counter and snapshot overlay; any other target gets the
        plain public calls.
        """
        result: Any = None
        apply_logged = getattr(index, "apply_logged", None)
        if apply_logged is not None:
            for op, payload, epoch in self._records:
                result = apply_logged(op, payload, epoch)
            return result
        for op, payload, _ in self._records:
            if op == "bulk_load":
                objects, strategy = payload
                loader = index.bulk_load
                if strategy is not None:
                    result = loader(list(objects), strategy=strategy)
                else:
                    result = loader(list(objects))
            elif op == "insert":
                result = index.insert(payload)
            elif op == "insert_batch":
                result = index.insert_batch(list(payload))
            elif op == "delete":
                result = index.delete(payload)
            elif op == "delete_batch":
                result = index.delete_batch(list(payload))
            elif op == "update":
                old, new = payload
                result = index.update(old, new)
            else:  # update_batch
                result = index.update_batch(list(payload))
        return result

    @property
    def records(self) -> Sequence[Tuple[str, Any]]:
        """The logged ``(op, payload)`` pairs, oldest first (read-only view)."""
        return tuple((op, payload) for op, payload, _ in self._records)

    @property
    def entries(self) -> Sequence[Tuple[str, Any, Optional[int]]]:
        """The logged ``(op, payload, epoch)`` records, oldest first."""
        return tuple(self._records)

    @property
    def last_epoch(self) -> int:
        """Highest epoch any record carries (0 when none do)."""
        return max(
            (epoch for _, _, epoch in self._records if epoch is not None),
            default=0,
        )

    def __len__(self) -> int:
        return len(self._records)

    def clear(self) -> None:
        """Drop the history (only sensible when the shard is discarded)."""
        self._records.clear()

    def truncate(self) -> None:
        """Compact the log after a checkpoint folded its records away.

        Only correct when the shard's recovery source (checkpoint image or
        deepcopy baseline) already reflects every logged record — the
        serving layer enforces that ordering.  On the base class this is
        :meth:`clear`; the durable subclass also truncates the file.
        """
        self.clear()

    def close(self) -> None:
        """Release backing resources (no-op for the in-memory log)."""

    @property
    def path(self) -> Optional[str]:
        """Backing file of the log, or None for the in-memory mode."""
        return None


class DurableShardLog(ShardLog):
    """A :class:`ShardLog` whose records also live in an append-only file.

    Record format: ``length (u32) | crc32(body) (u32) | body`` where the
    body is the pickled ``(op, payload, epoch)`` record (files written
    before epochs existed carry ``(op, payload)`` pairs and load with
    ``epoch=None``).  Appends are written and
    (by default) fsync'd before :meth:`append` returns, so by the time the
    serving layer executes a mutation its WAL record is already durable —
    the invariant shard recovery relies on.

    Opening an existing file rebuilds the record list, stopping at the
    first record whose length or checksum does not add up and truncating
    the file there: a torn tail record is a mutation that was never
    executed (append happens before execution) and never acknowledged, so
    dropping it keeps the log consistent with every answer the index ever
    returned.

    Appends are serialized by an internal lock — the serving layer appends
    outside the per-shard locks, so two routed mutations may hit the same
    shard's log concurrently.

    Args:
        path: backing file (created when absent, recovered when present).
        fsync: fsync after every append (disable only in tests).
        crash_hook: test-only callable invoked between the two halves of
            an append (``"wal:torn"``) so crash tests can land a SIGKILL
            inside a torn WAL write.
    """

    __slots__ = ("_path", "_fsync_enabled", "_crash_hook", "_lock", "_fd", "_size")

    _HEADER = struct.Struct("<II")

    def __init__(
        self,
        path: str,
        fsync: bool = True,
        crash_hook: Optional[Callable[[str], None]] = None,
    ) -> None:
        super().__init__()
        self._path = str(path)
        self._fsync_enabled = fsync
        self._crash_hook = crash_hook
        self._lock = threading.Lock()
        self._fd = os.open(self._path, os.O_RDWR | os.O_CREAT, 0o644)
        self._size = 0
        self._load_existing()

    @property
    def path(self) -> str:
        """The log's backing file."""
        return self._path

    def _file_sync(self) -> None:
        if self._fsync_enabled:
            os.fsync(self._fd)

    def _load_existing(self) -> None:
        data = os.pread(self._fd, os.fstat(self._fd).st_size, 0)
        offset = 0
        header = self._HEADER
        while offset + header.size <= len(data):
            length, crc = header.unpack_from(data, offset)
            body = data[offset + header.size : offset + header.size + length]
            if len(body) < length or zlib.crc32(body) != crc:
                break
            try:
                record = pickle.loads(body)
                op, payload = record[0], record[1]
                epoch = record[2] if len(record) > 2 else None
            except Exception:
                break
            self._records.append((op, payload, epoch))
            offset += header.size + length
        self._size = offset
        if offset < len(data):
            # Torn/corrupt tail: drop it so the next append lands on a
            # clean record boundary.
            os.ftruncate(self._fd, offset)
            self._file_sync()

    def _store(self, op: str, payload: Any, epoch: Optional[int]) -> None:
        body = pickle.dumps((op, payload, epoch), protocol=pickle.HIGHEST_PROTOCOL)
        frame = self._HEADER.pack(len(body), zlib.crc32(body)) + body
        with self._lock:
            if self._crash_hook is None:
                os.pwrite(self._fd, frame, self._size)
            else:
                half = max(1, len(frame) // 2)
                os.pwrite(self._fd, frame[:half], self._size)
                self._crash_hook("wal:torn")
                os.pwrite(self._fd, frame[half:], self._size + half)
            self._file_sync()
            self._size += len(frame)
            self._records.append((op, payload, epoch))

    def truncate(self) -> None:
        """Compact: drop the records and empty the backing file."""
        with self._lock:
            self._records.clear()
            os.ftruncate(self._fd, 0)
            self._file_sync()
            self._size = 0

    def rotate(self, new_path: str) -> None:
        """Switch the log to a fresh (empty) file at ``new_path``.

        Used by the checkpoint protocol: the WAL is generation-named, so a
        checkpoint starts a new empty log file instead of truncating the
        old one in place (the old file stays valid for a crash that lands
        before the checkpoint's commit point).
        """
        with self._lock:
            os.close(self._fd)
            self._path = str(new_path)
            self._fd = os.open(self._path, os.O_RDWR | os.O_CREAT | os.O_TRUNC, 0o644)
            self._file_sync()
            self._records.clear()
            self._size = 0

    def close(self) -> None:
        """Close the backing file (idempotent)."""
        with self._lock:
            if self._fd >= 0:
                os.close(self._fd)
                self._fd = -1


__all__ = ["LOG_OPS", "DurableShardLog", "ShardLog"]
