"""Consistency oracle for epoch-pinned snapshot serving.

The snapshot machinery's promise (``docs/htap.md``) is falsifiable: an
epoch-pinned answer must be **bit-identical** to what a quiescent index
— one that applied exactly the update batches up to the pinned epoch and
nothing else — would answer.  :class:`EpochOracle` is the harness that
checks it.

It maintains a *twin*: a second :class:`~repro.serve.ShardedIndex` with
the same shard count and shard family as the index under test, serial
executor, snapshots disabled — the plainest quiescent configuration the
serving layer offers, sharing the exact merge code the live index uses.
The workload records every mutation it applies as ``(epoch, op,
payload)`` and every epoch-pinned answer it receives as ``(epoch, kind,
payload, answer)``; :meth:`check` then replays the mutation stream into
the twin epoch by epoch and re-evaluates each answered query batch at
its pinned epoch, reporting every divergence.

Bit-identity is deliberate: answers are ids and ``float`` distances
computed by the same kernels on both sides, so even the distances must
match exactly — any tolerance would mask a torn cut whose victim object
moved less than the tolerance.

The oracle is single-threaded by design.  Concurrency lives in the
workload (threads hammering the index under test); the oracle only sees
the recorded streams afterwards, which makes its verdict deterministic
and replayable.
"""

from __future__ import annotations

from bisect import insort
from typing import Any, Callable, List, Optional, Tuple

from repro.serve.config import ServeConfig
from repro.serve.sharded_index import ShardedIndex

__all__ = ["EpochOracle"]

#: One recorded mutation: ``(epoch, sequence, op, payload)``.
_Mutation = Tuple[int, int, str, Any]


class EpochOracle:
    """Replay a recorded epoch stream into a quiescent twin and compare.

    Args:
        num_shards: shard count of the index under test (the twin must
            match it — answers are shard-count invariant, but matching
            removes even that reliance from the verdict).
        shard_factory: zero-argument callable building one empty shard of
            the same index family as the system under test.
        space: default kNN space forwarded to the twin's queries.

    Usage::

        oracle = EpochOracle(num_shards=4, shard_factory=make_bx, space=space)
        # workload side (under test):
        index.bulk_load(objects)
        oracle.record_mutation(index.epoch, "bulk_load", (objects, None))
        ...
        with index.pin() as epoch:
            answer = index.range_query_batch(queries, epoch=epoch)
        oracle.record_answer(epoch, "range", queries, answer)
        ...
        mismatches = oracle.check()
        assert not mismatches, mismatches[0]
    """

    def __init__(
        self,
        num_shards: int,
        shard_factory: Callable[[], Any],
        space: Optional[Any] = None,
    ) -> None:
        self.num_shards = int(num_shards)
        self.space = space
        self.twin = ShardedIndex(
            [shard_factory() for _ in range(self.num_shards)],
            config=ServeConfig(
                name="oracle-twin", space=space, executor="serial", snapshots=False
            ),
        )
        self._mutations: List[_Mutation] = []
        self._samples: List[Tuple[int, str, Any, Any]] = []
        self._seq = 0
        self._applied = 0  # how many mutations the twin has absorbed

    # -- recording (workload side) -------------------------------------
    def record_mutation(self, epoch: int, op: str, payload: Any) -> None:
        """Record one applied update batch and the epoch it was assigned.

        ``op``/``payload`` follow the WAL conventions
        (:data:`repro.serve.shard_log.LOG_OPS`): ``bulk_load`` carries
        ``(objects, strategy)``, ``update`` carries ``(old, new)``, batch
        ops carry their sequence, ``insert``/``delete`` carry the object.
        Recording may happen in any order; mutations are replayed sorted
        by ``(epoch, recording order)``.
        """
        if self._applied:
            raise RuntimeError("cannot record after check() started replaying")
        insort(self._mutations, (int(epoch), self._seq, op, payload))
        self._seq += 1

    def record_answer(self, epoch: int, kind: str, payload: Any, answer: Any) -> None:
        """Record one epoch-pinned answer the index under test returned.

        ``kind`` is ``"range"`` (payload: the query list) or ``"knn"``
        (payload: the probe list; the oracle's ``space`` is used).
        """
        if kind not in ("range", "knn"):
            raise ValueError(f"unknown answer kind {kind!r}")
        self._samples.append((int(epoch), kind, payload, answer))

    @property
    def answers_recorded(self) -> int:
        """How many epoch-pinned answers the workload recorded."""
        return len(self._samples)

    @property
    def mutations_recorded(self) -> int:
        """How many mutations the workload recorded."""
        return len(self._mutations)

    # -- replay (verdict side) -----------------------------------------
    def _apply(self, op: str, payload: Any) -> None:
        twin = self.twin
        if op == "bulk_load":
            objects, strategy = payload
            if strategy is not None:
                twin.bulk_load(list(objects), strategy=strategy)
            else:
                twin.bulk_load(list(objects))
        elif op == "insert":
            twin.insert(payload)
        elif op == "insert_batch":
            twin.insert_batch(list(payload))
        elif op == "delete":
            twin.delete(payload)
        elif op == "delete_batch":
            twin.delete_batch(list(payload))
        elif op == "update":
            old, new = payload
            twin.update(old, new)
        elif op == "update_batch":
            twin.update_batch(list(payload))
        else:
            raise ValueError(f"unknown mutation op {op!r}")

    def advance_to(self, epoch: int) -> None:
        """Bring the twin to exactly the state at ``epoch`` (quiescent)."""
        while self._applied < len(self._mutations):
            mutation_epoch, _, op, payload = self._mutations[self._applied]
            if mutation_epoch > epoch:
                break
            self._apply(op, payload)
            self._applied += 1

    def expected(self, epoch: int, kind: str, payload: Any) -> Any:
        """The quiescent answer at ``epoch`` (advances the twin to it)."""
        self.advance_to(epoch)
        if kind == "range":
            return self.twin.range_query_batch(list(payload))
        if kind == "knn":
            return self.twin.knn_query_batch(list(payload), space=self.space)
        raise ValueError(f"unknown answer kind {kind!r}")

    def check(self) -> List[str]:
        """Compare every recorded answer against its quiescent twin answer.

        Returns one human-readable description per mismatch (empty list
        = every epoch-pinned answer was bit-identical to the twin's).
        Samples are checked in ascending epoch order so the twin only
        ever moves forward; equality is plain ``==`` — exact ids and
        exact float distances, no tolerance.
        """
        mismatches: List[str] = []
        for epoch, kind, payload, answer in sorted(
            self._samples, key=lambda sample: sample[0]
        ):
            expected = self.expected(epoch, kind, payload)
            got = list(answer)
            if got != expected:
                mismatches.append(
                    f"epoch {epoch} {kind} answer diverged from the quiescent "
                    f"twin: got {got!r}, expected {expected!r}"
                )
        return mismatches

    def assert_consistent(self) -> None:
        """Raise ``AssertionError`` on the first recorded divergence."""
        mismatches = self.check()
        if mismatches:
            raise AssertionError(
                f"{len(mismatches)} epoch-pinned answer(s) diverged; first: "
                + mismatches[0]
            )

    def close(self) -> None:
        """Tear down the twin's executor."""
        self.twin.close()

    def __enter__(self) -> "EpochOracle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
