"""The sharded serving layer (supervised fan-out over index shards).

A :class:`ShardedIndex` owns N independent *shards* — complete instances of
any moving-object index family (``BxTree``, ``TPRTree``/``TPRStarTree``,
``VPIndex``), each with its own :class:`~repro.storage.BufferManager` and
:class:`~repro.storage.stats.IOStats` — and presents the exact same index
protocol the harness already speaks (``insert`` / ``update_batch`` /
``range_query_batch`` / ``knn_query_batch`` / ``bulk_load`` / ``buffer``).

**Routing.**  Every object id is owned by exactly one shard, chosen by a
fixed multiplicative hash of the id (:func:`shard_of`).  Updates,
insertions and deletions are grouped by owning shard and each shard
receives one batched call; queries cannot be routed (a range predicate
says nothing about object ids), so they fan out to *all* shards on a
thread pool and the per-shard answers are merged.

**Merge semantics.**  Shards partition the object set, so a range query's
per-shard answers are disjoint; the serving layer returns their union in
ascending-id order (a canonical order, which is what makes the answer
independent of the shard count).  A kNN probe's global ``k`` nearest each
rank among the ``k`` nearest of their own shard, so merging the per-shard
top-``k`` lists by ``(distance, oid)`` and keeping the first ``k`` yields
exactly the unsharded answer — see ``docs/sharding.md`` for the one-line
proof.

**Supervision.**  Every shard call runs under a supervisor (see
``docs/robustness.md``): transient I/O faults
(:class:`~repro.storage.faults.InjectedFault`) on read-only calls are
retried with bounded exponential backoff + jitter; per-shard circuit
breakers stop calling a shard that keeps failing; fanned-out calls can
carry a per-shard timeout.  A failed *mutation* never blind-retries —
the shard's state is suspect — and instead triggers **recovery**: every
routed mutation is appended to a per-shard write-ahead
:class:`~repro.serve.shard_log.ShardLog` *before* execution, so a fresh
shard built by ``shard_factory`` and replayed from the log is equivalent,
answer for answer, to a shard that never failed.  Queries can opt into
**degraded answers** (``partial=True``): open-circuit or failing shards
are skipped and the healthy shards' merged answers come back in a
:class:`~repro.serve.supervisor.PartialResult` instead of an exception.

**Concurrency.**  Shards share no mutable state, so work on different
shards runs in parallel (thread pool).  Within one shard everything is
serialized by a per-shard lock: the buffer pool's LRU bookkeeping mutates
on every fetch, so even read-only queries must not interleave on a single
shard.  Concurrent *calls into the same ShardedIndex* are therefore safe;
what is not safe is touching a shard's underlying index directly while
the serving layer is live (see ``docs/sharding.md``).
"""

from __future__ import annotations

import copy
import random
import threading
import time
import warnings
from concurrent.futures import CancelledError, Future
from contextlib import contextmanager
from concurrent.futures import TimeoutError as FutureTimeoutError
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.bulk import loader_accepts
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.objects.knn import AdaptiveRadius, KNNQuery
from repro.objects.moving_object import MovingObject
from repro.objects.queries import RangeQuery
from repro.serve.config import ServeConfig
from repro.serve.executor import Executor, make_executor
from repro.serve.shard_log import ShardLog
from repro.serve.snapshot import SnapshotTooOldError, VersionedShard
from repro.serve.supervisor import (
    SHARD_FAILED,
    SHARD_SKIPPED,
    CircuitBreaker,
    PartialResult,
    ShardFailedError,
    ShardStatus,
    SupervisorConfig,
)
from repro.storage.faults import InjectedFault, ShardDownError
from repro.storage.stats import BufferCounter, Counter, IOStats

#: Default shard count of the serving layer.
DEFAULT_SHARDS = 4

#: Odd 64-bit multiplier (2^64 / golden ratio) of the routing hash.
_HASH_MULTIPLIER = 0x9E3779B97F4A7C15

_MASK64 = (1 << 64) - 1

T = TypeVar("T")


def shard_of(oid: int, num_shards: int) -> int:
    """Owning shard of object ``oid`` under the fixed routing hash.

    A multiplicative (Fibonacci) hash: the id is multiplied by an odd
    64-bit constant and the *high* 32 bits pick the shard, so consecutive
    ids — the common allocation pattern — spread evenly instead of
    striping, and the assignment is a pure function of ``(oid,
    num_shards)`` that every layer (router, tests, offline tooling) can
    recompute independently.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    if num_shards == 1:
        return 0
    mixed = (oid * _HASH_MULTIPLIER) & _MASK64
    return (mixed >> 32) % num_shards


class _ShardSkipped(Exception):
    """Internal control flow: a query skipped a shard whose circuit is open."""

    def __init__(self, shard_id: int) -> None:
        super().__init__(f"shard {shard_id} skipped (circuit open)")
        self.shard_id = shard_id


class AggregateStats:
    """Live read-only sum of several shards' :class:`IOStats`.

    Each property materializes a fresh counter summed across the shards at
    access time, so harness-style ``before = stats.physical.total`` /
    ``after - before`` accounting works unchanged on a sharded index.

    ``parts`` may be a fixed sequence of :class:`IOStats` or a callable
    returning the current sequence — the serving layer passes a callable
    so the aggregate follows shard *recovery* (a rebuilt shard brings a
    fresh stats object; a snapshot would keep summing the dead one).
    """

    def __init__(
        self, parts: Union[Sequence[IOStats], Callable[[], Sequence[IOStats]]]
    ) -> None:
        if callable(parts):
            self._provider = parts
        else:
            fixed = list(parts)
            self._provider = lambda: fixed

    @property
    def physical(self) -> Counter:
        """Summed physical read/write counter."""
        parts = self._provider()
        return Counter(
            reads=sum(p.physical.reads for p in parts),
            writes=sum(p.physical.writes for p in parts),
        )

    @property
    def logical(self) -> Counter:
        """Summed logical read/write counter."""
        parts = self._provider()
        return Counter(
            reads=sum(p.logical.reads for p in parts),
            writes=sum(p.logical.writes for p in parts),
        )

    @property
    def buffer(self) -> BufferCounter:
        """Summed buffer hit/miss counter."""
        parts = self._provider()
        return BufferCounter(
            hits=sum(p.buffer.hits for p in parts),
            misses=sum(p.buffer.misses for p in parts),
        )


class _AggregateBuffer:
    """Buffer facade summing the shards' pools (what the harness reads).

    Reads through the live shard list so the aggregate stays correct
    after a shard is swapped out by recovery.
    """

    def __init__(self, shards: Sequence) -> None:
        self._shards = shards
        self.stats = AggregateStats(lambda: [shard.buffer.stats for shard in shards])

    @property
    def batch_hints_enabled(self) -> bool:
        """Whether the advisory sweep hints are enabled on every shard."""
        return all(shard.buffer.batch_hints_enabled for shard in self._shards)

    @batch_hints_enabled.setter
    def batch_hints_enabled(self, enabled: bool) -> None:
        for shard in self._shards:
            shard.buffer.batch_hints_enabled = enabled


class _FamilyFactory:
    """Zero-argument shard factory for a *named* index family.

    What :meth:`ShardedIndex.build` arms as ``shard_factory``: builds one
    empty ``Bx`` / ``TPR`` / ``TPR*`` instance with its own buffer pool
    (imports deferred — the serving layer otherwise has no dependency on
    the index families).  The VP variants need workload-derived velocity
    partitioning and are passed to ``build`` as a callable instead.
    """

    def __init__(
        self,
        family: str,
        space: Optional[Rect] = None,
        buffer_pages: int = 50,
        page_size: Optional[int] = None,
        max_update_interval: Optional[float] = None,
        key_store: Optional[object] = None,
    ) -> None:
        if family not in ("Bx", "TPR", "TPR*"):
            raise ValueError(
                f"unknown index family {family!r} (named families: Bx, TPR, "
                "TPR*; pass a callable for the VP variants)"
            )
        if key_store is not None and not isinstance(key_store, (str, type)):
            raise TypeError(
                "key_store must be a backend name or class for shard "
                "factories (every shard needs its own store; a shared "
                "instance cannot be handed to each one)"
            )
        self.family = family
        self.space = space
        self.buffer_pages = buffer_pages
        self.page_size = page_size
        self.max_update_interval = max_update_interval
        self.key_store = key_store

    def __call__(self, buffer=None):
        from repro.storage.buffer_manager import BufferManager

        if buffer is None:
            buffer = BufferManager(capacity=self.buffer_pages)
        extra = {}
        if self.page_size is not None:
            extra["page_size"] = self.page_size
        if self.family == "Bx":
            from repro.bxtree.bx_tree import BxTree

            if self.max_update_interval is not None:
                extra["max_update_interval"] = self.max_update_interval
            if self.space is not None:
                extra["space"] = self.space
            if self.key_store is not None:
                extra["key_store"] = self.key_store
            return BxTree(buffer=buffer, **extra)
        if self.family == "TPR":
            from repro.tprtree.tpr_tree import TPRTree

            return TPRTree(buffer=buffer, **extra)
        from repro.tprtree.tprstar_tree import TPRStarTree

        return TPRStarTree(buffer=buffer, **extra)


#: Legacy ``ShardedIndex.__init__`` keyword arguments that now live on
#: :class:`ServeConfig` (passing any of them emits a DeprecationWarning).
_LEGACY_KWARGS = (
    "name",
    "space",
    "max_workers",
    "shard_factory",
    "supervisor",
    "logs",
    "stores",
)


class ShardedIndex:
    """Hash-partitioned serving facade over independent index shards.

    Args:
        shards: fully built index instances, one per shard.  Every shard
            must have its *own* buffer pool — shards are the unit of
            parallelism, and a shared pool would race.
        config: a :class:`~repro.serve.ServeConfig` bundling everything
            else (name, space, executor, supervision, WAL/stores) — see
            its field docs.  ``None`` means all defaults.
        executor: convenience override of ``config.executor`` — where
            shard calls run: ``"serial"``, ``"thread"`` (default),
            ``"process"``, or an unattached
            :class:`~repro.serve.Executor` instance.
        name: deprecated — use ``config=ServeConfig(name=...)``.
        space: deprecated — use ``config`` (data space, forwarded as the
            default kNN search space).
        max_workers: deprecated — use ``config`` (fan-out width;
            defaults to the shard count, must be at least 1).
        shard_factory: deprecated — use ``config`` (zero-argument
            callable building one fresh, empty shard; arms automatic
            WAL-replay recovery.  Without a factory, baseline or store,
            failed shards stay failed — queries can still degrade with
            ``partial=True``).
        supervisor: deprecated — use ``config`` (retry/backoff, circuit
            breaker and timeout policy; the default retries transient
            faults and trips a shard's breaker after 3 consecutive
            failures, with no timeouts).
        logs: deprecated — use ``config`` (pre-built per-shard
            write-ahead logs, one per shard; the durable store passes
            :class:`~repro.serve.shard_log.DurableShardLog` instances,
            by default each shard gets a private in-memory
            :class:`ShardLog`).
        stores: deprecated — use ``config`` (per-shard durable
            :class:`~repro.serve.durable_store.ShardStore` backends;
            normally wired by :class:`~repro.serve.DurableStore`, not by
            hand.  Durable stores require an in-process executor).
    """

    def __init__(
        self,
        shards: Sequence,
        config: Optional[ServeConfig] = None,
        *,
        executor: Optional[object] = None,
        name: Optional[str] = None,
        space: Optional[Rect] = None,
        max_workers: Optional[int] = None,
        shard_factory: Optional[Callable[[], object]] = None,
        supervisor: Optional[SupervisorConfig] = None,
        logs: Optional[Sequence[ShardLog]] = None,
        stores: Optional[Sequence[object]] = None,
    ) -> None:
        if config is not None and not isinstance(config, ServeConfig):
            raise TypeError(
                "the second ShardedIndex argument is a ServeConfig; pass "
                "legacy options by keyword (deprecated) or on the config"
            )
        legacy = {
            key: value
            for key, value in (
                ("name", name),
                ("space", space),
                ("max_workers", max_workers),
                ("shard_factory", shard_factory),
                ("supervisor", supervisor),
                ("logs", logs),
                ("stores", stores),
            )
            if value is not None
        }
        resolved = config if config is not None else ServeConfig()
        if legacy:
            warnings.warn(
                "passing "
                + "/".join(sorted(legacy))
                + " to ShardedIndex directly is deprecated; bundle them in "
                "a ServeConfig (see docs/sharding.md)",
                DeprecationWarning,
                stacklevel=2,
            )
            resolved = resolved.merged(**legacy)
        if executor is not None:
            resolved = resolved.merged(executor=executor)
        shards = list(shards)
        if not shards:
            raise ValueError("a ShardedIndex needs at least one shard (num_shards >= 1)")
        if resolved.max_workers is not None and resolved.max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        buffers = [shard.buffer for shard in shards]
        if len({id(buffer) for buffer in buffers}) != len(buffers):
            raise ValueError("shards must not share a buffer pool")
        self.config = resolved
        self.name = resolved.name or (
            f"{getattr(shards[0], 'name', type(shards[0]).__name__)}"
        )
        self.space = resolved.space
        self.shard_factory = resolved.shard_factory
        self._config = (
            resolved.supervisor if resolved.supervisor is not None else SupervisorConfig()
        )
        logs = resolved.logs
        stores = resolved.stores
        self._locks = [threading.Lock() for _ in shards]
        if logs is None:
            self._logs: List[ShardLog] = [ShardLog() for _ in shards]
        else:
            self._logs = list(logs)
            if len(self._logs) != len(shards):
                raise ValueError("logs must match the shard count")
        if stores is None:
            self._stores: List[Optional[object]] = [None for _ in shards]
        else:
            self._stores = list(stores)
            if len(self._stores) != len(shards):
                raise ValueError("stores must match the shard count")
        self._snapshots = bool(resolved.snapshots)
        if self._snapshots:
            # Epoch-version every shard.  A shard restored from a durable
            # checkpoint arrives already wrapped (the wrapper travels
            # through the checkpoint blob, epoch included); a raw shard
            # starts at the highest epoch its WAL carries — its content
            # already reflects those records (either it is fresh with an
            # empty log, or the store replayed the tail into it).
            shards = [
                shard
                if isinstance(shard, VersionedShard)
                else VersionedShard(shard, epoch=self._logs[shard_id].last_epoch)
                for shard_id, shard in enumerate(shards)
            ]
        self._backend: Executor = make_executor(
            resolved.executor, max_workers=resolved.max_workers
        )
        if self._backend.kind == "process" and any(
            store is not None for store in self._stores
        ):
            raise ValueError(
                "durable stores require an in-process executor (serial/thread): "
                "checkpointing talks to the shard's pages directly"
            )
        # Handles: the objects supervised tasks run against.  For the
        # in-process executors these are the shard indexes themselves;
        # for the process executor they are worker proxies.
        self.shards = self._backend.attach(shards, resolved.max_workers)
        self.buffer = _AggregateBuffer(self.shards)
        # Per-shard deepcopy of the shard at its last checkpoint: the
        # in-memory recovery source once the WAL has been compacted
        # (durable shards restore from their checkpoint image instead).
        self._baselines: List[Optional[object]] = [None for _ in shards]
        self._closed = False
        self._breakers = [
            CircuitBreaker(
                failure_threshold=self._config.failure_threshold,
                reset_timeout_s=self._config.reset_timeout_s,
                clock=self._config.clock,
            )
            for _ in shards
        ]
        # One jitter RNG per shard: backoff schedules stay deterministic
        # even when several shards retry concurrently.
        self._rngs = [
            random.Random(self._config.seed * 1_000_003 + shard_id)
            for shard_id in range(len(shards))
        ]
        #: Completed recoveries, oldest first (shard id, wall seconds,
        #: replayed record count, attempts) — read by the fault bench.
        self.recovery_events: List[Dict[str, float]] = []
        # Snapshot-epoch state (see docs/htap.md).  One global counter,
        # advanced per mutation batch under the single-writer lock; the
        # *published* epoch trails it until the batch has scattered to
        # every routed shard, and queries pin the published epoch.  Pins
        # are refcounts keyed by epoch — their minimum is the GC floor no
        # shard may prune past.
        start_epoch = 0
        if self._snapshots:
            start_epoch = max(
                max(shard.epoch for shard in shards),
                max(log.last_epoch for log in self._logs),
            )
        self._epoch_counter = start_epoch
        self._published_epoch = start_epoch
        self._pins: Dict[int, int] = {}
        self._write_lock = threading.Lock()
        self._epoch_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Shard plumbing
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    def shard_of(self, oid: int) -> int:
        """Owning shard of object ``oid`` (see :func:`shard_of`)."""
        return shard_of(oid, len(self.shards))

    def shard_stats(self) -> List[IOStats]:
        """Per-shard :class:`IOStats` (each shard's own counters)."""
        return [shard.buffer.stats for shard in self.shards]

    def shard_log(self, shard_id: int) -> ShardLog:
        """The write-ahead log of one shard (tests and tooling)."""
        return self._logs[shard_id]

    def breaker_states(self) -> List[str]:
        """Current circuit-breaker state per shard."""
        return [breaker.state for breaker in self._breakers]

    @property
    def executor(self) -> Executor:
        """The executor backend shard calls run on (read-only)."""
        return self._backend

    # ------------------------------------------------------------------
    # Snapshot epochs (see docs/htap.md)
    # ------------------------------------------------------------------
    @property
    def snapshots_enabled(self) -> bool:
        """Whether epoch-based snapshot serving is on (``ServeConfig.snapshots``)."""
        return self._snapshots

    @property
    def epoch(self) -> int:
        """The published snapshot epoch: the highest fully applied batch.

        Advances atomically once a mutation batch has reached every shard
        it routes to; a query that pins this epoch sees exactly the
        batches numbered at or below it, on every shard, regardless of
        what later batches are concurrently applying.
        """
        return self._published_epoch

    @contextmanager
    def pin(self):
        """Pin the published epoch for a multi-call consistent read.

        Yields the pinned epoch and keeps its undo deltas alive (the
        overlay GC never prunes past the oldest live pin), so several
        ``range_query_batch(..., epoch=pinned)`` / ``knn_query_batch``
        calls inside the block all observe the same cross-shard cut even
        while update batches keep streaming in::

            with index.pin() as epoch:
                ids = index.range_query_batch(queries, epoch=epoch)
                nn = index.knn_query_batch(probes, epoch=epoch)
        """
        epoch = self._pin_epoch()
        try:
            yield epoch
        finally:
            self._unpin_epoch(epoch)

    def _require_snapshots(self) -> None:
        if not self._snapshots:
            raise RuntimeError(
                "snapshot serving is disabled for this index "
                "(ServeConfig.snapshots=False); epochs cannot be pinned"
            )

    def _pin_epoch(self) -> int:
        """Register a pin on the published epoch and return it."""
        self._require_snapshots()
        with self._epoch_lock:
            epoch = self._published_epoch
            self._pins[epoch] = self._pins.get(epoch, 0) + 1
        return epoch

    def _unpin_epoch(self, epoch: int) -> None:
        with self._epoch_lock:
            count = self._pins.get(epoch, 0) - 1
            if count > 0:
                self._pins[epoch] = count
            else:
                self._pins.pop(epoch, None)

    def _resolve_pin(self, epoch: Optional[int]) -> Tuple[Optional[int], bool]:
        """The epoch a query runs at, and whether this call owns the pin.

        ``None`` with snapshots enabled auto-pins the published epoch for
        the duration of the call; an explicit epoch is trusted (callers
        obtain one from :meth:`pin`, which keeps its deltas alive) but
        must already be published — pinning the future would break the
        consistent-cut guarantee.
        """
        if epoch is None:
            return (self._pin_epoch(), True) if self._snapshots else (None, False)
        self._require_snapshots()
        epoch = int(epoch)
        if epoch < 0 or epoch > self._published_epoch:
            raise ValueError(
                f"epoch {epoch} is not published yet (published epoch: "
                f"{self._published_epoch})"
            )
        return epoch, False

    @contextmanager
    def _update_epoch(self):
        """Serialize one mutation batch and hand it the next epoch.

        Yields ``(epoch, gc_floor)`` under the single-writer lock; the
        epoch is published in the ``finally`` — its WAL records exist and
        every routed shard either applied the batch or is marked failed
        (a failed shard cannot silently answer a torn cut: strict queries
        raise on it and partial queries skip it until it recovers, and
        recovery replays the WAL through this very epoch).  The GC floor
        is the oldest epoch a live pin still needs — computed under the
        epoch lock so a pin registered concurrently can never be starved.
        """
        if not self._snapshots:
            yield None, None
            return
        with self._write_lock:
            with self._epoch_lock:
                self._epoch_counter += 1
                epoch = self._epoch_counter
                gc_floor = min(self._pins) if self._pins else self._published_epoch
            try:
                yield epoch, gc_floor
            finally:
                with self._epoch_lock:
                    if epoch > self._published_epoch:
                        self._published_epoch = epoch

    @staticmethod
    def _epoch_kwargs(epoch: Optional[int], gc_floor: Optional[int]) -> Dict[str, int]:
        """Mutation kwargs threading the epoch to versioned shards."""
        if epoch is None:
            return {}
        return {"epoch": epoch, "gc_floor": gc_floor}

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (a closed index rejects calls)."""
        return self._closed

    def _ensure_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                f"ShardedIndex {self.name!r} is closed; build a new one "
                "(or reopen its DurableStore) instead of reusing it"
            )

    def close(self) -> None:
        """Shut down the executor, flush every shard, persist durable shards.

        Queued-but-unstarted fan-out tasks are cancelled; running tasks
        are awaited, so after ``close()`` returns no worker can still be
        touching a shard.  Every shard's buffer is then flushed — a
        durable backend must never silently drop dirty frames on a clean
        shutdown (a shard whose storage is faulted cannot flush and is
        skipped; nothing is lost in-memory, and a durable shard recovers
        from its WAL).  Shards with a durable store are checkpointed and
        their stores closed, so a clean shutdown leaves an empty WAL and
        reopening replays nothing.  Finally the executor itself is torn
        down — worker processes exit here, never via garbage collection.

        ``close()`` is terminal: the index rejects further operations,
        and a second ``close()`` raises ``RuntimeError`` (``with`` blocks
        stay safe — ``__exit__`` only closes an index that is still
        open).
        """
        self._ensure_open()
        self._backend.quiesce()
        for shard_id in range(len(self.shards)):
            store = self._stores[shard_id]
            with self._locks[shard_id]:
                if store is not None:
                    self._compact_locked(shard_id)
                    store.close()
                else:
                    try:
                        self.shards[shard_id].buffer.flush()
                    except InjectedFault:
                        pass
        self._backend.close()
        self._closed = True

    def checkpoint(self) -> None:
        """Checkpoint every shard and truncate its write-ahead log.

        Per shard (under its lock): flush the buffer's dirty frames, then
        either commit a new checkpoint generation through the shard's
        durable store, or — for in-memory shards — capture a baseline
        snapshot through the executor; in both cases the WAL is truncated
        afterwards, so the next recovery replays only the tail logged
        since this call.
        """
        self._ensure_open()
        for shard_id in range(len(self.shards)):
            with self._locks[shard_id]:
                self._compact_locked(shard_id)

    @classmethod
    def open(cls, root: str, **kwargs) -> "ShardedIndex":
        """Recover a durable index from a :class:`DurableStore` directory.

        Convenience for ``DurableStore(root).open(**kwargs)`` (the import
        is deferred — the durable store imports this module).
        """
        from repro.serve.durable_store import DurableStore

        return DurableStore(root).open(**kwargs)

    @classmethod
    def build(
        cls,
        family: Union[str, Callable[[], object]] = "Bx",
        shards: int = DEFAULT_SHARDS,
        executor: Optional[object] = None,
        durable_dir: Optional[str] = None,
        config: Optional[ServeConfig] = None,
        *,
        space: Optional[Rect] = None,
        buffer_pages: int = 50,
        page_size: Optional[int] = None,
        max_update_interval: Optional[float] = None,
        supervisor: Optional[SupervisorConfig] = None,
        max_workers: Optional[int] = None,
        name: Optional[str] = None,
        key_store: Optional[object] = None,
    ) -> "ShardedIndex":
        """Build a ready-to-serve sharded index in one call.

        Wires the shards, the shard factory (arming WAL-replay recovery),
        the executor and — with ``durable_dir`` — the per-shard durable
        stores, replacing the historical dance of building N index
        instances by hand and threading eight keyword arguments through.

        Args:
            family: index family name (``"Bx"``, ``"TPR"``, ``"TPR*"``)
                or a zero-argument callable building one shard (use a
                callable for the VP variants, whose velocity partitioning
                needs workload data).
            shards: shard count (default :data:`DEFAULT_SHARDS`).
            executor: ``"serial"`` / ``"thread"`` / ``"process"`` or an
                :class:`~repro.serve.Executor` instance; default thread.
            durable_dir: when set, create (or reopen, if it already holds
                a manifest) a :class:`~repro.serve.DurableStore` at this
                path instead of serving from memory.  Requires a *named*
                family and an in-process executor.
            config: base :class:`ServeConfig`; the explicit arguments
                override its fields.
            space: data space for ``"Bx"`` shards and kNN defaults.
            buffer_pages: per-shard buffer-pool capacity.
            page_size: page size in bytes (family default when ``None``).
            max_update_interval: Bx-tree update horizon (family default
                when ``None``).
            supervisor: retry/breaker/timeout policy.
            max_workers: fan-out width (default: the shard count).
            name: display name (default: the family name).
            key_store: Bx key-store backend for the factory-built shards
                (``"btree"``/``"flat"`` or a backend class; see
                ``docs/backends.md``).  Requires the paged default with
                ``durable_dir`` — durable checkpoints persist buffer
                pages, which the flat backend does not use.
        """
        if shards < 1:
            raise ValueError("shards must be at least 1")
        base = config if config is not None else ServeConfig()
        if key_store is None:
            key_store = base.key_store
        if durable_dir is not None and key_store is not None:
            from repro.btree.store import BTreeKeyStore

            paged = key_store == "btree" or (
                isinstance(key_store, type) and issubclass(key_store, BTreeKeyStore)
            )
            if not paged:
                raise ValueError(
                    "durable_dir requires the paged 'btree' key store: "
                    "checkpoints persist buffer pages, and the flat "
                    "backend keeps its arrays off-page (docs/backends.md)"
                )
        if callable(family):
            factory: Callable[[], object] = family
            family_name = getattr(family, "__name__", type(family).__name__)
        else:
            factory = _FamilyFactory(
                family,
                space=space,
                buffer_pages=buffer_pages,
                page_size=page_size,
                max_update_interval=max_update_interval,
                key_store=key_store,
            )
            family_name = family
        base = base.merged(
            name=name or base.name or family_name,
            space=space,
            executor=executor,
            max_workers=max_workers,
            shard_factory=factory,
            supervisor=supervisor,
            key_store=key_store,
        )
        if durable_dir is not None:
            if callable(family):
                raise ValueError(
                    "durable_dir needs a named family (the store owns each "
                    "shard's buffer; a custom factory cannot accept it)"
                )
            from repro.serve.durable_store import DurableStore

            store = DurableStore(durable_dir)
            if store.exists:
                return store.open(config=base)
            return store.create(
                factory,
                num_shards=shards,
                name=base.name,
                space=space,
                buffer_pages=buffer_pages,
                config=base,
            )
        return cls([factory() for _ in range(shards)], config=base)

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        # Runs on success *and* when an exception escaped mid-fan-out;
        # _gather has already cancelled/awaited that call's futures, so
        # shutdown cannot deadlock on abandoned work.  Tolerates an index
        # the body already closed (close() itself is once-only).
        if not self._closed:
            self.close()

    # ------------------------------------------------------------------
    # Supervised execution
    # ------------------------------------------------------------------
    def _locked_supervised(
        self,
        shard_id: int,
        task: Callable[[object], T],
        read_only: bool,
        status: ShardStatus,
    ) -> T:
        """Run ``task(shard)`` under the shard lock with the full policy.

        Read-only calls retry transient faults with backoff; mutations
        never blind-retry (the shard may have half-applied the batch) and
        recover from the write-ahead log instead.  Non-fault exceptions
        (caller bugs like a bad argument) propagate unchanged and do not
        touch the breaker.
        """
        with self._locks[shard_id]:
            breaker = self._breakers[shard_id]
            retry = self._config.retry
            rng = self._rngs[shard_id]
            if not breaker.allow():
                if read_only or not self._can_recover(shard_id):
                    status.state = SHARD_SKIPPED
                    status.error = "circuit open"
                    raise _ShardSkipped(shard_id)
                # A mutation routed to an open shard: the WAL already
                # holds it, so recovery both heals the shard and applies
                # the mutation.
                value = self._recover_locked(shard_id)
                status.attempts = 1
                return value
            for attempt in range(retry.max_attempts):
                status.attempts = attempt + 1
                try:
                    value = task(self.shards[shard_id])
                except InjectedFault as fault:
                    transient = not isinstance(fault, ShardDownError)
                    if read_only:
                        if transient and attempt + 1 < retry.max_attempts:
                            self._config.sleep(retry.backoff_delay(attempt, rng))
                            continue
                        breaker.record_failure()
                        status.state = SHARD_FAILED
                        status.error = f"{type(fault).__name__}: {fault}"
                        raise ShardFailedError(shard_id, fault) from fault
                    if not self._can_recover(shard_id):
                        breaker.record_failure()
                        status.state = SHARD_FAILED
                        status.error = f"{type(fault).__name__}: {fault}"
                        raise ShardFailedError(shard_id, fault) from fault
                    try:
                        return self._recover_locked(shard_id)
                    except InjectedFault as recovery_fault:
                        breaker.record_failure()
                        status.state = SHARD_FAILED
                        status.error = (
                            f"recovery failed: {type(recovery_fault).__name__}: "
                            f"{recovery_fault}"
                        )
                        raise ShardFailedError(shard_id, recovery_fault) from recovery_fault
                else:
                    breaker.record_success()
                    return value
            raise AssertionError("unreachable: retry loop always returns or raises")

    def _can_recover(self, shard_id: int) -> bool:
        """Whether the shard has any recovery source (store/baseline/factory)."""
        return (
            self._stores[shard_id] is not None
            or self._baselines[shard_id] is not None
            or self.shard_factory is not None
        )

    def _fresh_shard_locked(self, shard_id: int) -> object:
        """A shard holding exactly the state the WAL tail replays on top of.

        Durable shards restore their last checkpoint image; in-memory
        shards deepcopy their checkpoint baseline when one exists (the
        WAL was compacted at that point) and otherwise rebuild empty from
        ``shard_factory`` (the WAL still holds the full history then).
        """
        store = self._stores[shard_id]
        if store is not None:
            fresh = store.restore_image()
        else:
            baseline = self._baselines[shard_id]
            if baseline is not None:
                # Baselines captured with snapshots on are wrappers
                # already (epoch and retained overlay included).
                fresh = copy.deepcopy(baseline)
            else:
                fresh = self.shard_factory()
        if self._snapshots and not isinstance(fresh, VersionedShard):
            # A raw recovery source predates every WAL record about to be
            # replayed (checkpoint images compact the log), so it starts
            # at epoch 0 and the replay advances it to the tail's epochs.
            fresh = VersionedShard(fresh)
        return fresh

    def _compact_locked(self, shard_id: int) -> None:
        """Checkpoint one shard and truncate its WAL (lock held by caller).

        A durable shard commits a new checkpoint generation through its
        store; an in-memory shard flushes its buffer and captures a
        deepcopy baseline.  Either way the log's records are folded into
        the recovery source, so truncating them afterwards preserves the
        recovery invariant (fresh shard + tail replay == never-failed
        shard) while bounding replay to the post-checkpoint tail.
        """
        shard = self.shards[shard_id]
        store = self._stores[shard_id]
        log = self._logs[shard_id]
        if store is not None:
            store.checkpoint(shard, log)
        else:
            shard.buffer.flush()
            # The executor materializes the baseline in the parent: a
            # deepcopy in-process, the worker's pickled state in process
            # mode — either way a real index object, not a handle.
            self._baselines[shard_id] = self._backend.snapshot(shard_id)
            log.truncate()

    def _recover_locked(self, shard_id: int) -> object:
        """Rebuild one shard from its WAL (caller holds the shard lock).

        Builds a fresh shard — restored from its durable checkpoint
        image, deepcopied from its in-memory baseline, or built empty by
        ``shard_factory`` — and replays the write-ahead log into it,
        retrying with backoff when the replay itself hits transient
        faults (each attempt starts over on a new fresh shard, so a
        half-replayed attempt is simply discarded).  On success the shard
        is swapped in, its breaker force-closed, the log compacted (the
        recovered state becomes the next checkpoint, so future
        recoveries replay only newer records), and the last replayed
        record's result returned — exactly what the mutation that
        triggered the recovery would have returned on a never-failed
        shard.
        """
        if not self._can_recover(shard_id):
            raise ShardFailedError(
                shard_id,
                RuntimeError("no shard_factory, checkpoint baseline or store"),
            )
        retry = self._config.retry
        rng = self._rngs[shard_id]
        started = time.perf_counter()
        for attempt in range(retry.max_attempts):
            fresh = self._fresh_shard_locked(shard_id)
            try:
                result = self._logs[shard_id].replay(fresh)
            except InjectedFault:
                if attempt + 1 < retry.max_attempts:
                    self._config.sleep(retry.backoff_delay(attempt, rng))
                    continue
                raise
            # Hand the recovered shard to the executor: in-process
            # backends swap it in place, the process backend ships it to
            # a respawned worker and returns a fresh proxy handle.
            self.shards[shard_id] = self._backend.replace(shard_id, fresh)
            self._breakers[shard_id].reset()
            replayed = len(self._logs[shard_id])
            try:
                self._compact_locked(shard_id)
                compacted = True
            except InjectedFault:
                # The shard is healthy either way; an uncompacted WAL just
                # keeps its history until the next successful checkpoint.
                compacted = False
            self.recovery_events.append(
                {
                    "shard_id": shard_id,
                    "wall_s": time.perf_counter() - started,
                    "replayed_records": replayed,
                    "attempts": attempt + 1,
                    "compacted": compacted,
                }
            )
            return result
        raise AssertionError("unreachable: recovery loop always returns or raises")

    def recover_shard(self, shard_id: int) -> None:
        """Rebuild one shard from its write-ahead log, unconditionally.

        The operational entry point (a health checker or operator would
        call this on a shard whose circuit stays open); requires a
        ``shard_factory``.
        """
        self._ensure_open()
        with self._locks[shard_id]:
            self._recover_locked(shard_id)

    def _gather(
        self,
        futures: Dict[int, "Future[T]"],
        statuses: Dict[int, ShardStatus],
        timeout: Optional[float],
    ) -> Tuple[Dict[int, T], Dict[int, ShardFailedError]]:
        """Collect fan-out futures into per-shard results and failures.

        A per-call ``timeout`` is a shared deadline: every future must
        resolve within ``timeout`` seconds of the gather starting.  On an
        unexpected (non-supervision) exception the remaining futures are
        cancelled and awaited before it propagates, so ``__exit__`` /
        ``close()`` never races abandoned workers.
        """
        results: Dict[int, T] = {}
        failures: Dict[int, ShardFailedError] = {}
        deadline = None if timeout is None else time.monotonic() + timeout
        pending = dict(futures)
        try:
            for shard_id, future in futures.items():
                remaining: Optional[float] = None
                if deadline is not None:
                    remaining = max(0.0, deadline - time.monotonic())
                try:
                    results[shard_id] = future.result(timeout=remaining)
                except _ShardSkipped:
                    pass
                except ShardFailedError as error:
                    failures[shard_id] = error
                except FutureTimeoutError:
                    # The worker cannot be interrupted; abandon it (it
                    # still holds the shard lock until it finishes) and
                    # record the failure against the breaker.
                    statuses[shard_id].state = SHARD_FAILED
                    statuses[shard_id].error = f"timeout after {timeout}s"
                    self._breakers[shard_id].record_failure()
                    failures[shard_id] = ShardFailedError(
                        shard_id, TimeoutError(f"shard call exceeded {timeout}s")
                    )
                except CancelledError:
                    statuses[shard_id].state = SHARD_FAILED
                    statuses[shard_id].error = "cancelled"
                    failures[shard_id] = ShardFailedError(
                        shard_id, RuntimeError("shard call cancelled")
                    )
                finally:
                    pending.pop(shard_id, None)
        except BaseException:
            for future in pending.values():
                future.cancel()
            for future in pending.values():
                try:
                    future.result()
                except BaseException:
                    pass
            raise
        return results, failures

    def _supervised_run(
        self,
        tasks: Dict[int, Callable[[object], T]],
        read_only: bool,
        timeout: Optional[float],
    ) -> Tuple[Dict[int, T], Dict[int, ShardStatus], Dict[int, ShardFailedError]]:
        """Run one supervised task per shard, in parallel when useful.

        Results, statuses and failures are keyed by shard so merge order
        never depends on thread scheduling.
        """
        self._ensure_open()
        statuses = {shard_id: ShardStatus(shard_id) for shard_id in tasks}

        def work(shard_id: int, task: Callable[[object], T]) -> T:
            return self._locked_supervised(shard_id, task, read_only, statuses[shard_id])

        # Serial executors run every task inline (their point is a
        # deterministic, reproducible interleaving); per-call timeouts
        # need a second thread and are ignored there.
        if (len(tasks) <= 1 and timeout is None) or not self._backend.parallel:
            results: Dict[int, T] = {}
            failures: Dict[int, ShardFailedError] = {}
            for shard_id, task in tasks.items():
                try:
                    results[shard_id] = work(shard_id, task)
                except _ShardSkipped:
                    pass
                except ShardFailedError as error:
                    failures[shard_id] = error
            return results, statuses, failures
        pool = self._backend.pool()
        futures = {
            shard_id: pool.submit(work, shard_id, task) for shard_id, task in tasks.items()
        }
        results, failures = self._gather(futures, statuses, timeout)
        return results, statuses, failures

    @staticmethod
    def _raise_first(failures: Dict[int, ShardFailedError]) -> None:
        """Raise the lowest-shard-id failure (deterministic strict mode)."""
        if failures:
            raise failures[min(failures)]

    def _strict_statuses(
        self, statuses: Dict[int, ShardStatus], failures: Dict[int, ShardFailedError]
    ) -> None:
        """Strict mode: skipped shards are failures too (no silent gaps)."""
        for shard_id, status in statuses.items():
            if status.state == SHARD_SKIPPED and shard_id not in failures:
                failures[shard_id] = ShardFailedError(
                    shard_id, RuntimeError("circuit open")
                )

    def _group_by_shard(self, oids: Sequence[int]) -> Dict[int, List[int]]:
        """Input positions grouped by owning shard (input order preserved)."""
        groups: Dict[int, List[int]] = {}
        for position, oid in enumerate(oids):
            groups.setdefault(self.shard_of(oid), []).append(position)
        return groups

    def _scatter(
        self,
        groups: Dict[int, List[int]],
        apply: Callable[[object, List[int]], T],
    ) -> Dict[int, T]:
        """Run ``apply(shard, member_positions)`` per routed group (strict).

        Mutation path: failures after the supervision policy (retry /
        recovery) are strict — the first one raises.
        """
        tasks = {
            shard_id: (lambda shard, m=members: apply(shard, m))
            for shard_id, members in groups.items()
        }
        results, statuses, failures = self._supervised_run(
            tasks, read_only=False, timeout=self._config.update_timeout_s
        )
        self._strict_statuses(statuses, failures)
        self._raise_first(failures)
        return results

    def _fan_out(
        self, apply: Callable[[object], T], partial: bool
    ) -> Tuple[Dict[int, T], Dict[int, ShardStatus]]:
        """Run ``apply(shard)`` on every shard (query fan-out).

        Strict mode (``partial=False``) raises on any failed or skipped
        shard; partial mode returns whatever the healthy shards answered
        plus the per-shard statuses.
        """
        tasks = {
            shard_id: (lambda shard: apply(shard)) for shard_id in range(len(self.shards))
        }
        results, statuses, failures = self._supervised_run(
            tasks, read_only=True, timeout=self._config.query_timeout_s
        )
        if not partial:
            self._strict_statuses(statuses, failures)
            self._raise_first(failures)
        return results, statuses

    # ------------------------------------------------------------------
    # Updates (routed by owning shard, write-ahead logged)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        self._ensure_open()
        return sum(len(shard) for shard in self.shards)

    def _single(self, shard_id: int, task: Callable[[object], T]) -> T:
        """One supervised mutation on one shard (strict)."""
        results, statuses, failures = self._supervised_run(
            {shard_id: task}, read_only=False, timeout=self._config.update_timeout_s
        )
        self._strict_statuses(statuses, failures)
        self._raise_first(failures)
        return results[shard_id]

    def insert(self, obj: MovingObject) -> None:
        """Insert an object into its owning shard."""
        shard_id = self.shard_of(obj.oid)
        with self._update_epoch() as (epoch, gc_floor):
            self._logs[shard_id].append("insert", obj, epoch=epoch)
            kwargs = self._epoch_kwargs(epoch, gc_floor)
            self._single(shard_id, lambda shard: shard.insert(obj, **kwargs))

    def delete(self, obj: MovingObject) -> bool:
        """Delete an object snapshot from its owning shard."""
        shard_id = self.shard_of(obj.oid)
        with self._update_epoch() as (epoch, gc_floor):
            self._logs[shard_id].append("delete", obj, epoch=epoch)
            kwargs = self._epoch_kwargs(epoch, gc_floor)
            return self._single(shard_id, lambda shard: shard.delete(obj, **kwargs))

    def update(self, old: MovingObject, new: MovingObject) -> bool:
        """Update one object on its owning shard; True when ``old`` existed."""
        if old.oid != new.oid:
            raise ValueError("an update must keep the object id")
        shard_id = self.shard_of(old.oid)
        with self._update_epoch() as (epoch, gc_floor):
            self._logs[shard_id].append("update", (old, new), epoch=epoch)
            kwargs = self._epoch_kwargs(epoch, gc_floor)
            return self._single(
                shard_id, lambda shard: shard.update(old, new, **kwargs)
            )

    def bulk_load(self, objects: Sequence[MovingObject], strategy: Optional[str] = None) -> None:
        """Bulk-build every shard from its routed slice of ``objects``.

        ``strategy`` is forwarded to shard loaders that accept one (the
        TPR family's packing strategies); loaders without the parameter
        ignore it, mirroring :meth:`IndexManager.bulk_load`.
        """
        objects = list(objects)
        if not objects:
            return
        groups = self._group_by_shard([obj.oid for obj in objects])
        with self._update_epoch() as (epoch, gc_floor):
            slices = {
                shard_id: [objects[i] for i in members]
                for shard_id, members in groups.items()
            }
            for shard_id, group in slices.items():
                self._logs[shard_id].append("bulk_load", (group, strategy), epoch=epoch)
            kwargs = self._epoch_kwargs(epoch, gc_floor)

            def load(shard, members: List[int]) -> None:
                loader = shard.bulk_load
                group = [objects[i] for i in members]
                if strategy is not None and loader_accepts(loader, "strategy"):
                    loader(group, strategy=strategy, **kwargs)
                else:
                    loader(group, **kwargs)

            self._scatter(groups, load)

    def insert_batch(self, objects: Sequence[MovingObject]) -> None:
        """Insert a batch, one grouped ``insert_batch`` per owning shard."""
        objects = list(objects)
        if not objects:
            return
        groups = self._group_by_shard([obj.oid for obj in objects])
        with self._update_epoch() as (epoch, gc_floor):
            for shard_id, members in groups.items():
                self._logs[shard_id].append(
                    "insert_batch", [objects[i] for i in members], epoch=epoch
                )
            kwargs = self._epoch_kwargs(epoch, gc_floor)
            self._scatter(
                groups,
                lambda shard, members: shard.insert_batch(
                    [objects[i] for i in members], **kwargs
                ),
            )

    def delete_batch(self, objects: Sequence[MovingObject]) -> List[bool]:
        """Delete a batch; per-object success flags aligned with the input."""
        objects = list(objects)
        if not objects:
            return []
        groups = self._group_by_shard([obj.oid for obj in objects])
        with self._update_epoch() as (epoch, gc_floor):
            for shard_id, members in groups.items():
                self._logs[shard_id].append(
                    "delete_batch", [objects[i] for i in members], epoch=epoch
                )
            kwargs = self._epoch_kwargs(epoch, gc_floor)
            flag_groups = self._scatter(
                groups,
                lambda shard, members: shard.delete_batch(
                    [objects[i] for i in members], **kwargs
                ),
            )
        flags = [False] * len(objects)
        for shard_id, members in groups.items():
            for position, flag in zip(members, flag_groups[shard_id]):
                flags[position] = bool(flag)
        return flags

    def update_batch(self, pairs: Sequence[Tuple[MovingObject, MovingObject]]) -> int:
        """Apply an update batch; returns how many old snapshots existed.

        Pairs are grouped by owning shard (the id routing makes old and
        new snapshots of one object land on the same shard) and each shard
        receives one ``update_batch`` call, all shards in parallel.
        """
        pairs = list(pairs)
        for old, new in pairs:
            if old.oid != new.oid:
                raise ValueError("an update must keep the object id")
        if not pairs:
            return 0
        groups = self._group_by_shard([old.oid for old, _ in pairs])
        with self._update_epoch() as (epoch, gc_floor):
            for shard_id, members in groups.items():
                self._logs[shard_id].append(
                    "update_batch", [pairs[i] for i in members], epoch=epoch
                )
            kwargs = self._epoch_kwargs(epoch, gc_floor)
            counts = self._scatter(
                groups,
                lambda shard, members: shard.update_batch(
                    [pairs[i] for i in members], **kwargs
                ),
            )
        return sum(counts.values())

    # ------------------------------------------------------------------
    # Queries (fan out to every shard, merge canonically)
    # ------------------------------------------------------------------
    def range_query(
        self,
        query: RangeQuery,
        exact: bool = True,
        epoch: Optional[int] = None,
    ) -> List[int]:
        """Object ids qualifying for ``query``, in ascending-id order.

        The union of the per-shard answers equals the unsharded answer
        set (shards partition the objects); ascending-id order is the
        serving layer's canonical answer order, chosen because it is
        shard-count invariant — per-candidate traversal order is not.
        """
        return self.range_query_batch([query], exact=exact, epoch=epoch)[0]

    def range_query_batch(
        self,
        queries: Sequence[RangeQuery],
        exact: bool = True,
        partial: bool = False,
        epoch: Optional[int] = None,
    ) -> Union[List[List[int]], PartialResult]:
        """Batched :meth:`range_query`; per-query results align with the input.

        With snapshots enabled the whole batch is answered at one pinned
        epoch: either the ``epoch`` argument (≤ the published epoch) or,
        when ``None``, the epoch published at call time — so the batch
        sees a consistent cross-shard cut even while update batches are
        applied concurrently (see ``docs/htap.md``).  Pinning requires
        ``exact=True``; approximate answers depend on live tree geometry
        and are not reconstructible at an older epoch.

        With ``partial=True`` the call never raises on shard failure:
        open-circuit shards are skipped, failing/timing-out shards are
        dropped after the retry policy, and the healthy shards' merged
        answers come back in a :class:`PartialResult` (``complete`` iff
        no shard failed — then the payload equals the strict answer).
        """
        queries = list(queries)
        if not exact:
            if epoch is not None:
                raise ValueError("epoch pinning requires exact=True")
            pinned, owned = None, False
        else:
            pinned, owned = self._resolve_pin(epoch)
        try:
            if not queries:
                return PartialResult([], [], epoch=pinned) if partial else []
            shard_kwargs = {} if pinned is None else {"epoch": pinned}
            per_shard, statuses = self._fan_out(
                lambda shard: shard.range_query_batch(
                    queries, exact=exact, **shard_kwargs
                ),
                partial=partial,
            )
        finally:
            if owned:
                self._unpin_epoch(pinned)
        results: List[List[int]] = []
        answered = sorted(per_shard)
        for qi in range(len(queries)):
            merged: List[int] = []
            for shard_id in answered:
                merged.extend(per_shard[shard_id][qi])
            merged.sort()
            results.append(merged)
        if partial:
            return PartialResult(
                results, [statuses[sid] for sid in sorted(statuses)], epoch=pinned
            )
        return results

    def knn_query(
        self,
        center: Point,
        k: int,
        query_time: float,
        issue_time: float = 0.0,
        space: Optional[Rect] = None,
        radius_state: Optional[AdaptiveRadius] = None,
        epoch: Optional[int] = None,
    ) -> List[Tuple[int, float]]:
        """Single-probe kNN over every shard (see :meth:`knn_query_batch`)."""
        probe = KNNQuery(center=center, k=k, query_time=query_time, issue_time=issue_time)
        return self.knn_query_batch(
            [probe], space=space, radius_state=radius_state, epoch=epoch
        )[0]

    def knn_query_batch(
        self,
        queries: Sequence[KNNQuery],
        space: Optional[Rect] = None,
        radius_state: Optional[AdaptiveRadius] = None,
        partial: bool = False,
        epoch: Optional[int] = None,
    ) -> Union[List[List[Tuple[int, float]]], PartialResult]:
        """Answer kNN probes by merging every shard's local top-``k``.

        Each shard answers the whole probe batch over its own objects
        (shards run in parallel); per probe, the per-shard answers are
        merged by ``(distance, oid)`` and truncated to ``k`` — exactly
        the unsharded answer, because each of the global ``k`` nearest is
        among the ``k`` nearest of its own shard (fewer than ``k``
        objects in total are closer; see ``docs/sharding.md``).

        With ``partial=True`` failing shards are skipped (see
        :meth:`range_query_batch`); the merged ranking then covers only
        healthy shards' candidates — distances remain exact, membership
        may miss nearer objects stored on failed shards.

        ``radius_state`` is shared across the shards as a pure perf hint:
        its observe/suggest races are benign (answers are provably
        radius-schedule independent).

        With snapshots enabled the batch is answered at one pinned epoch
        (``epoch`` when given, else the epoch published at call time), so
        the cross-shard merge ranks candidates from a single consistent
        cut (see ``docs/htap.md``).
        """
        queries = list(queries)
        pinned, owned = self._resolve_pin(epoch)
        try:
            if not queries:
                return PartialResult([], [], epoch=pinned) if partial else []
            search_space = space if space is not None else self.space
            shard_kwargs = {} if pinned is None else {"epoch": pinned}
            per_shard, statuses = self._fan_out(
                lambda shard: shard.knn_query_batch(
                    queries,
                    space=search_space,
                    radius_state=radius_state,
                    **shard_kwargs,
                ),
                partial=partial,
            )
        finally:
            if owned:
                self._unpin_epoch(pinned)
        results: List[List[Tuple[int, float]]] = []
        answered = sorted(per_shard)
        for qi, probe in enumerate(queries):
            merged = [pair for shard_id in answered for pair in per_shard[shard_id][qi]]
            merged.sort(key=lambda pair: (pair[1], pair[0]))
            results.append(merged[: probe.k])
        if partial:
            return PartialResult(
                results, [statuses[sid] for sid in sorted(statuses)], epoch=pinned
            )
        return results
