"""The sharded serving layer (shared-nothing fan-out over index shards).

A :class:`ShardedIndex` owns N independent *shards* — complete instances of
any moving-object index family (``BxTree``, ``TPRTree``/``TPRStarTree``,
``VPIndex``), each with its own :class:`~repro.storage.BufferManager` and
:class:`~repro.storage.stats.IOStats` — and presents the exact same index
protocol the harness already speaks (``insert`` / ``update_batch`` /
``range_query_batch`` / ``knn_query_batch`` / ``bulk_load`` / ``buffer``).

**Routing.**  Every object id is owned by exactly one shard, chosen by a
fixed multiplicative hash of the id (:func:`shard_of`).  Updates,
insertions and deletions are grouped by owning shard and each shard
receives one batched call; queries cannot be routed (a range predicate
says nothing about object ids), so they fan out to *all* shards on a
thread pool and the per-shard answers are merged.

**Merge semantics.**  Shards partition the object set, so a range query's
per-shard answers are disjoint; the serving layer returns their union in
ascending-id order (a canonical order, which is what makes the answer
independent of the shard count).  A kNN probe's global ``k`` nearest each
rank among the ``k`` nearest of their own shard, so merging the per-shard
top-``k`` lists by ``(distance, oid)`` and keeping the first ``k`` yields
exactly the unsharded answer — see ``docs/sharding.md`` for the one-line
proof.

**Concurrency.**  Shards share no mutable state, so work on different
shards runs in parallel (thread pool).  Within one shard everything is
serialized by a per-shard lock: the buffer pool's LRU bookkeeping mutates
on every fetch, so even read-only queries must not interleave on a single
shard.  Concurrent *calls into the same ShardedIndex* are therefore safe;
what is not safe is touching a shard's underlying index directly while
the serving layer is live (see ``docs/sharding.md``).
"""

from __future__ import annotations

import threading
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.bulk import loader_accepts
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.objects.knn import AdaptiveRadius, KNNQuery
from repro.objects.moving_object import MovingObject
from repro.objects.queries import RangeQuery
from repro.storage.stats import BufferCounter, Counter, IOStats

#: Default shard count of the serving layer.
DEFAULT_SHARDS = 4

#: Odd 64-bit multiplier (2^64 / golden ratio) of the routing hash.
_HASH_MULTIPLIER = 0x9E3779B97F4A7C15

_MASK64 = (1 << 64) - 1

T = TypeVar("T")


def shard_of(oid: int, num_shards: int) -> int:
    """Owning shard of object ``oid`` under the fixed routing hash.

    A multiplicative (Fibonacci) hash: the id is multiplied by an odd
    64-bit constant and the *high* 32 bits pick the shard, so consecutive
    ids — the common allocation pattern — spread evenly instead of
    striping, and the assignment is a pure function of ``(oid,
    num_shards)`` that every layer (router, tests, offline tooling) can
    recompute independently.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    if num_shards == 1:
        return 0
    mixed = (oid * _HASH_MULTIPLIER) & _MASK64
    return (mixed >> 32) % num_shards


class AggregateStats:
    """Live read-only sum of several shards' :class:`IOStats`.

    Each property materializes a fresh counter summed across the shards at
    access time, so harness-style ``before = stats.physical.total`` /
    ``after - before`` accounting works unchanged on a sharded index.
    """

    def __init__(self, parts: Sequence[IOStats]) -> None:
        self._parts = list(parts)

    @property
    def physical(self) -> Counter:
        """Summed physical read/write counter."""
        return Counter(
            reads=sum(p.physical.reads for p in self._parts),
            writes=sum(p.physical.writes for p in self._parts),
        )

    @property
    def logical(self) -> Counter:
        """Summed logical read/write counter."""
        return Counter(
            reads=sum(p.logical.reads for p in self._parts),
            writes=sum(p.logical.writes for p in self._parts),
        )

    @property
    def buffer(self) -> BufferCounter:
        """Summed buffer hit/miss counter."""
        return BufferCounter(
            hits=sum(p.buffer.hits for p in self._parts),
            misses=sum(p.buffer.misses for p in self._parts),
        )


class _AggregateBuffer:
    """Buffer facade summing the shards' pools (what the harness reads)."""

    def __init__(self, shards: Sequence) -> None:
        self._buffers = [shard.buffer for shard in shards]
        self.stats = AggregateStats([buffer.stats for buffer in self._buffers])

    @property
    def batch_hints_enabled(self) -> bool:
        """Whether the advisory sweep hints are enabled on every shard."""
        return all(buffer.batch_hints_enabled for buffer in self._buffers)

    @batch_hints_enabled.setter
    def batch_hints_enabled(self, enabled: bool) -> None:
        for buffer in self._buffers:
            buffer.batch_hints_enabled = enabled


class ShardedIndex:
    """Hash-partitioned serving facade over independent index shards.

    Args:
        shards: fully built index instances, one per shard.  Every shard
            must have its *own* buffer pool — shards are the unit of
            parallelism, and a shared pool would race.
        name: display name used by the harness.
        space: data space (forwarded as the default kNN search space).
        max_workers: thread-pool width for fan-out; defaults to the shard
            count.
    """

    def __init__(
        self,
        shards: Sequence,
        name: Optional[str] = None,
        space: Optional[Rect] = None,
        max_workers: Optional[int] = None,
    ) -> None:
        shards = list(shards)
        if not shards:
            raise ValueError("a ShardedIndex needs at least one shard")
        buffers = [shard.buffer for shard in shards]
        if len({id(buffer) for buffer in buffers}) != len(buffers):
            raise ValueError("shards must not share a buffer pool")
        self.shards = shards
        self.name = name or f"{getattr(shards[0], 'name', type(shards[0]).__name__)}"
        self.space = space
        self.buffer = _AggregateBuffer(shards)
        self._locks = [threading.Lock() for _ in shards]
        self._max_workers = max_workers or len(shards)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Shard plumbing
    # ------------------------------------------------------------------
    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    def shard_of(self, oid: int) -> int:
        """Owning shard of object ``oid`` (see :func:`shard_of`)."""
        return shard_of(oid, len(self.shards))

    def shard_stats(self) -> List[IOStats]:
        """Per-shard :class:`IOStats` (each shard's own counters)."""
        return [shard.buffer.stats for shard in self.shards]

    def _executor(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix=f"shard-{self.name}",
                )
                # Reclaim the worker threads with the index: the finalizer
                # holds the pool, not ``self``, so it cannot keep the
                # index alive.
                weakref.finalize(self, self._pool.shutdown, wait=False)
            return self._pool

    def close(self) -> None:
        """Shut the fan-out thread pool down (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ShardedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _run_on(self, tasks: Dict[int, Callable[[], T]]) -> Dict[int, T]:
        """Run one task per shard (under its lock), in parallel when > 1.

        Results are keyed by shard so merge order never depends on thread
        scheduling.
        """

        def locked(shard_id: int, task: Callable[[], T]) -> T:
            with self._locks[shard_id]:
                return task()

        if len(tasks) <= 1:
            return {sid: locked(sid, task) for sid, task in tasks.items()}
        pool = self._executor()
        futures = {sid: pool.submit(locked, sid, task) for sid, task in tasks.items()}
        return {sid: future.result() for sid, future in futures.items()}

    def _group_by_shard(self, oids: Sequence[int]) -> Dict[int, List[int]]:
        """Input positions grouped by owning shard (input order preserved)."""
        groups: Dict[int, List[int]] = {}
        for position, oid in enumerate(oids):
            groups.setdefault(self.shard_of(oid), []).append(position)
        return groups

    def _scatter(
        self,
        groups: Dict[int, List[int]],
        apply: Callable[[int, List[int]], T],
    ) -> Dict[int, T]:
        """Run ``apply(shard_id, member_positions)`` per routed group.

        The single place the per-shard task closures are built, so the
        late-binding capture (``s=sid, m=members``) lives here once.
        """
        return self._run_on(
            {
                sid: (lambda s=sid, m=members: apply(s, m))
                for sid, members in groups.items()
            }
        )

    def _fan_out(self, apply: Callable[[int], T]) -> Dict[int, T]:
        """Run ``apply(shard_id)`` on every shard (query fan-out)."""
        return self._run_on({sid: (lambda s=sid: apply(s)) for sid in range(len(self.shards))})

    # ------------------------------------------------------------------
    # Updates (routed by owning shard)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return sum(len(shard) for shard in self.shards)

    def insert(self, obj: MovingObject) -> None:
        """Insert an object into its owning shard."""
        shard_id = self.shard_of(obj.oid)
        with self._locks[shard_id]:
            self.shards[shard_id].insert(obj)

    def delete(self, obj: MovingObject) -> bool:
        """Delete an object snapshot from its owning shard."""
        shard_id = self.shard_of(obj.oid)
        with self._locks[shard_id]:
            return self.shards[shard_id].delete(obj)

    def update(self, old: MovingObject, new: MovingObject) -> bool:
        """Update one object on its owning shard; True when ``old`` existed."""
        if old.oid != new.oid:
            raise ValueError("an update must keep the object id")
        shard_id = self.shard_of(old.oid)
        with self._locks[shard_id]:
            return self.shards[shard_id].update(old, new)

    def bulk_load(self, objects: Sequence[MovingObject], strategy: Optional[str] = None) -> None:
        """Bulk-build every shard from its routed slice of ``objects``.

        ``strategy`` is forwarded to shard loaders that accept one (the
        TPR family's packing strategies); loaders without the parameter
        ignore it, mirroring :meth:`IndexManager.bulk_load`.
        """
        objects = list(objects)

        def load(shard_id: int, members: List[int]) -> None:
            loader = self.shards[shard_id].bulk_load
            group = [objects[i] for i in members]
            if strategy is not None and loader_accepts(loader, "strategy"):
                loader(group, strategy=strategy)
            else:
                loader(group)

        self._scatter(self._group_by_shard([obj.oid for obj in objects]), load)

    def insert_batch(self, objects: Sequence[MovingObject]) -> None:
        """Insert a batch, one grouped ``insert_batch`` per owning shard."""
        objects = list(objects)
        self._scatter(
            self._group_by_shard([obj.oid for obj in objects]),
            lambda sid, members: self.shards[sid].insert_batch(
                [objects[i] for i in members]
            ),
        )

    def delete_batch(self, objects: Sequence[MovingObject]) -> List[bool]:
        """Delete a batch; per-object success flags aligned with the input."""
        objects = list(objects)
        groups = self._group_by_shard([obj.oid for obj in objects])
        flag_groups = self._scatter(
            groups,
            lambda sid, members: self.shards[sid].delete_batch(
                [objects[i] for i in members]
            ),
        )
        flags = [False] * len(objects)
        for sid, members in groups.items():
            for position, flag in zip(members, flag_groups[sid]):
                flags[position] = bool(flag)
        return flags

    def update_batch(self, pairs: Sequence[Tuple[MovingObject, MovingObject]]) -> int:
        """Apply an update batch; returns how many old snapshots existed.

        Pairs are grouped by owning shard (the id routing makes old and
        new snapshots of one object land on the same shard) and each shard
        receives one ``update_batch`` call, all shards in parallel.
        """
        pairs = list(pairs)
        for old, new in pairs:
            if old.oid != new.oid:
                raise ValueError("an update must keep the object id")
        counts = self._scatter(
            self._group_by_shard([old.oid for old, _ in pairs]),
            lambda sid, members: self.shards[sid].update_batch(
                [pairs[i] for i in members]
            ),
        )
        return sum(counts.values())

    # ------------------------------------------------------------------
    # Queries (fan out to every shard, merge canonically)
    # ------------------------------------------------------------------
    def range_query(self, query: RangeQuery, exact: bool = True) -> List[int]:
        """Object ids qualifying for ``query``, in ascending-id order.

        The union of the per-shard answers equals the unsharded answer
        set (shards partition the objects); ascending-id order is the
        serving layer's canonical answer order, chosen because it is
        shard-count invariant — per-candidate traversal order is not.
        """
        return self.range_query_batch([query], exact=exact)[0]

    def range_query_batch(
        self, queries: Sequence[RangeQuery], exact: bool = True
    ) -> List[List[int]]:
        """Batched :meth:`range_query`; per-query results align with the input."""
        queries = list(queries)
        if not queries:
            return []
        per_shard = self._fan_out(
            lambda sid: self.shards[sid].range_query_batch(queries, exact=exact)
        )
        results: List[List[int]] = []
        for qi in range(len(queries)):
            merged: List[int] = []
            for sid in range(len(self.shards)):
                merged.extend(per_shard[sid][qi])
            merged.sort()
            results.append(merged)
        return results

    def knn_query(
        self,
        center: Point,
        k: int,
        query_time: float,
        issue_time: float = 0.0,
        space: Optional[Rect] = None,
        radius_state: Optional[AdaptiveRadius] = None,
    ) -> List[Tuple[int, float]]:
        """Single-probe kNN over every shard (see :meth:`knn_query_batch`)."""
        probe = KNNQuery(center=center, k=k, query_time=query_time, issue_time=issue_time)
        return self.knn_query_batch([probe], space=space, radius_state=radius_state)[0]

    def knn_query_batch(
        self,
        queries: Sequence[KNNQuery],
        space: Optional[Rect] = None,
        radius_state: Optional[AdaptiveRadius] = None,
    ) -> List[List[Tuple[int, float]]]:
        """Answer kNN probes by merging every shard's local top-``k``.

        Each shard answers the whole probe batch over its own objects
        (shards run in parallel); per probe, the per-shard answers are
        merged by ``(distance, oid)`` and truncated to ``k`` — exactly
        the unsharded answer, because each of the global ``k`` nearest is
        among the ``k`` nearest of its own shard (fewer than ``k``
        objects in total are closer; see ``docs/sharding.md``).

        ``radius_state`` is shared across the shards as a pure perf hint:
        its observe/suggest races are benign (answers are provably
        radius-schedule independent).
        """
        queries = list(queries)
        if not queries:
            return []
        search_space = space if space is not None else self.space
        per_shard = self._fan_out(
            lambda sid: self.shards[sid].knn_query_batch(
                queries, space=search_space, radius_state=radius_state
            )
        )
        results: List[List[Tuple[int, float]]] = []
        for qi, probe in enumerate(queries):
            merged = [pair for sid in range(len(self.shards)) for pair in per_shard[sid][qi]]
            merged.sort(key=lambda pair: (pair[1], pair[0]))
            results.append(merged[: probe.k])
        return results
