"""Sharded serving layer: fan moving-object indexes across worker shards.

The package turns the single-index replay stack into a serving topology: a
:class:`ShardedIndex` hash-partitions objects across N independent index
shards (any of the standard index families underneath, each with its own
buffer pool and I/O statistics), routes updates to the owning shard, fans
queries out to every shard on a thread pool, and merges the per-shard
answers into exactly the answer the unsharded index would have given.
"""

from repro.serve.sharded_index import (
    DEFAULT_SHARDS,
    AggregateStats,
    ShardedIndex,
    shard_of,
)

__all__ = [
    "AggregateStats",
    "DEFAULT_SHARDS",
    "ShardedIndex",
    "shard_of",
]
