"""Sharded serving layer: fan moving-object indexes across worker shards.

The package turns the single-index replay stack into a serving topology: a
:class:`ShardedIndex` hash-partitions objects across N independent index
shards (any of the standard index families underneath, each with its own
buffer pool and I/O statistics), routes updates to the owning shard, fans
queries out to every shard on a thread pool, and merges the per-shard
answers into exactly the answer the unsharded index would have given.

Every shard call runs under a supervisor: transient storage faults are
retried with bounded exponential backoff, per-shard circuit breakers stop
calling shards that keep failing, failed mutations trigger automatic shard
recovery by replaying the shard's write-ahead :class:`ShardLog`, and
queries can opt into degraded :class:`PartialResult` answers from the
healthy shards instead of raising.  See ``docs/robustness.md``.

Since the snapshot-serving work, mixed read/write workloads are
consistent too: every applied update batch atomically advances a global
*epoch*, and each query batch pins one epoch and answers at that exact
cross-shard cut (per-shard :class:`VersionedShard` undo overlays
reconcile at merge time), verified bit-for-bit against a quiescent twin
by the :class:`EpochOracle` harness.  See ``docs/htap.md``.
"""

from repro.serve.config import ServeConfig
from repro.serve.executor import (
    EXECUTORS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.serve.oracle import EpochOracle
from repro.serve.shard_log import LOG_OPS, DurableShardLog, ShardLog
from repro.serve.snapshot import SnapshotTooOldError, VersionedShard
from repro.serve.sharded_index import (
    DEFAULT_SHARDS,
    AggregateStats,
    ShardedIndex,
    shard_of,
)
from repro.serve.durable_store import (
    DurableStore,
    ShardStore,
    dumps_index,
    loads_index,
)
from repro.serve.supervisor import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    SHARD_FAILED,
    SHARD_OK,
    SHARD_SKIPPED,
    CircuitBreaker,
    PartialResult,
    RetryPolicy,
    ShardFailedError,
    ShardStatus,
    SupervisorConfig,
)

__all__ = [
    "AggregateStats",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "DEFAULT_SHARDS",
    "DurableShardLog",
    "DurableStore",
    "EXECUTORS",
    "EpochOracle",
    "Executor",
    "LOG_OPS",
    "PartialResult",
    "ProcessExecutor",
    "RetryPolicy",
    "SerialExecutor",
    "ServeConfig",
    "SHARD_FAILED",
    "SHARD_OK",
    "SHARD_SKIPPED",
    "ShardFailedError",
    "ShardLog",
    "ShardStatus",
    "ShardStore",
    "ShardedIndex",
    "SnapshotTooOldError",
    "SupervisorConfig",
    "ThreadExecutor",
    "VersionedShard",
    "dumps_index",
    "loads_index",
    "make_executor",
]
