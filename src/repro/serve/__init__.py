"""Sharded serving layer: fan moving-object indexes across worker shards.

The package turns the single-index replay stack into a serving topology: a
:class:`ShardedIndex` hash-partitions objects across N independent index
shards (any of the standard index families underneath, each with its own
buffer pool and I/O statistics), routes updates to the owning shard, fans
queries out to every shard on a thread pool, and merges the per-shard
answers into exactly the answer the unsharded index would have given.

Every shard call runs under a supervisor: transient storage faults are
retried with bounded exponential backoff, per-shard circuit breakers stop
calling shards that keep failing, failed mutations trigger automatic shard
recovery by replaying the shard's write-ahead :class:`ShardLog`, and
queries can opt into degraded :class:`PartialResult` answers from the
healthy shards instead of raising.  See ``docs/robustness.md``.
"""

from repro.serve.config import ServeConfig
from repro.serve.executor import (
    EXECUTORS,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
)
from repro.serve.shard_log import LOG_OPS, DurableShardLog, ShardLog
from repro.serve.sharded_index import (
    DEFAULT_SHARDS,
    AggregateStats,
    ShardedIndex,
    shard_of,
)
from repro.serve.durable_store import (
    DurableStore,
    ShardStore,
    dumps_index,
    loads_index,
)
from repro.serve.supervisor import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    SHARD_FAILED,
    SHARD_OK,
    SHARD_SKIPPED,
    CircuitBreaker,
    PartialResult,
    RetryPolicy,
    ShardFailedError,
    ShardStatus,
    SupervisorConfig,
)

__all__ = [
    "AggregateStats",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "DEFAULT_SHARDS",
    "DurableShardLog",
    "DurableStore",
    "EXECUTORS",
    "Executor",
    "LOG_OPS",
    "PartialResult",
    "ProcessExecutor",
    "RetryPolicy",
    "SerialExecutor",
    "ServeConfig",
    "SHARD_FAILED",
    "SHARD_OK",
    "SHARD_SKIPPED",
    "ShardFailedError",
    "ShardLog",
    "ShardStatus",
    "ShardStore",
    "ShardedIndex",
    "SupervisorConfig",
    "ThreadExecutor",
    "dumps_index",
    "loads_index",
    "make_executor",
]
