"""Shard supervision policies: retry/backoff, circuit breakers, statuses.

The serving layer's failure model (see ``docs/robustness.md``) separates
*policy* — how often to retry, how long to back off, when to stop calling
a failing shard — from the fan-out *mechanism* in
:mod:`repro.serve.sharded_index`.  This module holds the policy objects:

* :class:`RetryPolicy` — bounded attempts with exponential backoff and
  deterministic, seeded jitter;
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine over an injectable clock, one per shard;
* :class:`SupervisorConfig` — the bundle a :class:`ShardedIndex` is
  configured with (retry policy, breaker thresholds, per-call timeouts,
  and the clock/sleep pair that makes every timing decision testable
  under a fake clock);
* :class:`ShardStatus` / :class:`PartialResult` — the per-shard outcome
  record and the degraded-answer wrapper returned by ``partial=True``
  queries;
* :class:`ShardFailedError` — what strict-mode callers see when a shard
  stays failed after the policy is exhausted.

Everything here is deliberately free of threads and I/O so the chaos
suite can unit-test the policies exhaustively with fake clocks.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence


class ShardFailedError(RuntimeError):
    """A shard operation failed after the supervision policy was exhausted.

    Attributes:
        shard_id: the failing shard.
        cause: the final underlying failure (an
            :class:`~repro.storage.faults.InjectedFault`, a timeout, or a
            recovery error), also chained as ``__cause__``.
    """

    def __init__(self, shard_id: int, cause: Optional[BaseException] = None) -> None:
        detail = f": {cause}" if cause is not None else ""
        super().__init__(f"shard {shard_id} failed{detail}")
        self.shard_id = shard_id
        self.cause = cause


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    The delay before retry attempt *n* (0-based) is::

        min(base_delay_s * multiplier**n, max_delay_s) * (1 + jitter * u)

    with ``u`` drawn uniformly from [0, 1) by the caller-supplied RNG —
    the supervisor keeps one seeded RNG per shard, so the full backoff
    schedule of a run is a pure function of (policy, seed, failure
    sequence) and chaos tests can assert it exactly.

    Attributes:
        max_attempts: total attempts per operation (1 = no retry).
        base_delay_s: delay before the first retry.
        multiplier: exponential growth factor between retries.
        max_delay_s: cap on the un-jittered delay.
        jitter: fractional jitter added on top (0 disables it).
    """

    max_attempts: int = 3
    base_delay_s: float = 0.005
    multiplier: float = 2.0
    max_delay_s: float = 0.25
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.base_delay_s < 0 or self.max_delay_s < 0 or self.jitter < 0:
            raise ValueError("delays and jitter must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be at least 1")

    def backoff_delay(self, retry_index: int, rng: random.Random) -> float:
        """Delay before the ``retry_index``-th retry (0-based), jittered."""
        delay = min(self.base_delay_s * self.multiplier**retry_index, self.max_delay_s)
        if self.jitter:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


#: Circuit-breaker states (plain strings so reports serialize directly).
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-shard circuit breaker (closed → open → half-open → closed).

    * **closed** — calls flow; ``failure_threshold`` *consecutive*
      failures trip the breaker open.
    * **open** — calls are refused (:meth:`allow` is False) until
      ``reset_timeout_s`` has elapsed on the injected clock, at which
      point the breaker moves to half-open.
    * **half-open** — exactly one probe call is allowed through; its
      success closes the breaker, its failure re-opens it (and restarts
      the cool-down).

    The breaker itself is not locked: in the serving layer every
    transition happens either under the owning shard's lock or from the
    fan-out coordinator recording a timeout, and the worst race is a
    duplicate probe — a liveness detail, never a correctness one.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if reset_timeout_s < 0:
            raise ValueError("reset_timeout_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0

    @property
    def state(self) -> str:
        """Current state, with the open → half-open timeout applied."""
        if (
            self._state == BREAKER_OPEN
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = BREAKER_HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """Whether a call may proceed; a half-open breaker admits one probe."""
        state = self.state
        if state == BREAKER_CLOSED:
            return True
        if state == BREAKER_HALF_OPEN:
            # Re-open provisionally so concurrent callers are refused while
            # the single probe is in flight; the probe's outcome decides.
            self._state = BREAKER_OPEN
            self._opened_at = self._clock()
            return True
        return False

    def record_success(self) -> None:
        """Note a successful call: closes the breaker, clears the streak."""
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0

    def record_failure(self) -> None:
        """Note a failed call; trips the breaker at the threshold."""
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._state = BREAKER_OPEN
            self._opened_at = self._clock()

    def reset(self) -> None:
        """Force-close the breaker (after a successful shard recovery)."""
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0


@dataclass(frozen=True)
class SupervisorConfig:
    """Everything the shard supervisor needs to make timing decisions.

    Attributes:
        retry: the per-operation retry/backoff policy.
        failure_threshold: consecutive failures that open a shard's
            breaker.
        reset_timeout_s: breaker cool-down before a half-open probe.
        query_timeout_s: per-shard wall-clock budget of one fanned-out
            query call (None disables the timeout).  A timed-out worker
            cannot be interrupted — Python threads are not cancellable —
            so the call is *abandoned*: its shard is marked failed for
            this batch and the breaker records the failure, while the
            worker finishes in the background under the shard lock.
        update_timeout_s: same budget for routed mutation calls.
        seed: seed of the per-shard jitter RNGs.
        clock: time source for breaker cool-downs (fake-clock friendly).
        sleep: delay delivery for backoff (fake-sleep friendly).
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    failure_threshold: int = 3
    reset_timeout_s: float = 1.0
    query_timeout_s: Optional[float] = None
    update_timeout_s: Optional[float] = None
    seed: int = 0
    clock: Callable[[], float] = time.monotonic
    sleep: Callable[[float], None] = time.sleep


#: Per-shard outcome states of one supervised call.
SHARD_OK = "ok"
SHARD_FAILED = "failed"
SHARD_SKIPPED = "skipped"


@dataclass
class ShardStatus:
    """Outcome of one shard's part of a fanned-out call.

    Attributes:
        shard_id: the shard this status describes.
        state: ``"ok"``, ``"failed"`` (the call errored or timed out), or
            ``"skipped"`` (the shard's breaker was open and the call was
            never attempted).
        attempts: how many attempts were made (0 for skipped shards).
        error: compact description of the final failure, if any.
    """

    shard_id: int
    state: str = SHARD_OK
    attempts: int = 0
    error: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the shard answered."""
        return self.state == SHARD_OK


class PartialResult(Sequence):
    """A degraded query answer: merged results from the healthy shards.

    Returned by ``range_query_batch`` / ``knn_query_batch`` when
    ``partial=True`` and behaves like the plain list of per-query answers
    (indexing, iteration, equality), so downstream result-counting code
    works unchanged — plus the failure metadata a caller needs to decide
    whether the degraded answer is acceptable:

    * :attr:`complete` — True iff *no* shard failed or was skipped, i.e.
      the answer is exactly what strict mode would have returned;
    * :attr:`failed_shards` — ids of shards whose objects are missing
      from the answer;
    * :attr:`statuses` — the per-shard :class:`ShardStatus` records;
    * :attr:`epoch` — the snapshot epoch the answer was pinned at
      (``None`` when the index serves without snapshots).

    Answers from healthy shards are exact for those shards' objects, so a
    partial range answer is a *subset* of the true answer and a partial
    kNN answer ranks only candidates from healthy shards (distances are
    exact, membership may miss better candidates on failed shards).
    """

    def __init__(
        self,
        results: List[object],
        statuses: Sequence[ShardStatus],
        epoch: Optional[int] = None,
    ) -> None:
        self.results = results
        self.statuses = list(statuses)
        self.epoch = epoch

    @property
    def failed_shards(self) -> List[int]:
        """Shards whose answers are missing (failed or skipped)."""
        return [status.shard_id for status in self.statuses if not status.ok]

    @property
    def complete(self) -> bool:
        """True iff every shard answered (the result equals strict mode)."""
        return not self.failed_shards

    def __getitem__(self, item):
        return self.results[item]

    def __len__(self) -> int:
        return len(self.results)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, PartialResult):
            return self.results == other.results and self.statuses == other.statuses
        if isinstance(other, list):
            return self.results == other
        return NotImplemented

    def __repr__(self) -> str:
        return (
            f"PartialResult(complete={self.complete}, epoch={self.epoch}, "
            f"failed_shards={self.failed_shards}, results={self.results!r})"
        )


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "PartialResult",
    "RetryPolicy",
    "SHARD_FAILED",
    "SHARD_OK",
    "SHARD_SKIPPED",
    "ShardFailedError",
    "ShardStatus",
    "SupervisorConfig",
]
