"""Epoch-versioned shard overlay: snapshot reads above a live index.

The serving layer's queries historically assumed quiescence: a query
batch that overlapped an update batch could observe a *torn cut* — some
shards answering before the update, some after.  This module provides
the per-shard half of the fix.  :class:`VersionedShard` wraps one shard
index and keeps, next to the live structure, a bounded **undo log** of
epoch deltas: for every mutation applied at epoch ``e`` it records each
touched object's state *before* the mutation (``None`` for objects that
did not exist).  A query pinned at epoch ``E`` is then answered as

``state(E) = live state, with every object touched after E mapped back
to its first recorded prior state above E``

so the shard can serve any retained historical epoch while updates keep
streaming in.  The sharded layer above assigns epochs (one per applied
update batch, globally serialized) and threads the pinned epoch through
every executor — including the process backend, where the wrapper
travels to the worker whole and reconciles worker-side.

Why reconciliation is *exact* (bit-identical to a quiescent twin):

* Exact range answers are a pure function of index **contents** — the
  shard-count-invariance suite pins this.  Objects untouched since the
  pinned epoch are answered by the live traversal; touched objects are
  removed and re-qualified from their recorded epoch-``E`` state with
  :meth:`RangeQuery.matches`, the documented ground-truth predicate.
* kNN answers are a pure function of (contents, ``k``, space-diagonal
  cap): the expanding search retires a probe only when its circle
  provably holds the ``k`` nearest or the radius hit the cap.  The live
  index is over-fetched by the number of touched objects, touched oids
  are dropped, and the touched objects' epoch-``E`` states are ranked
  through the **same** vectorized distance kernel the index uses
  (:func:`repro.objects.knn._rank_distances`), so merged distances are
  bit-identical, then merged by ``(distance, oid)`` and truncated.

The overlay trusts the repo-wide mutation contract (``delete``/``update``
receive the object's current stored snapshot; ``insert``/``bulk_load``
receive objects not currently present) — the same contract WAL replay
already relies on for determinism.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.objects.knn import AdaptiveRadius, KNNQuery, _rank_distances
from repro.objects.moving_object import MovingObject
from repro.objects.queries import RangeQuery

__all__ = ["SnapshotTooOldError", "VersionedShard"]

#: Prior-state record: ``(oid, state-before-the-mutation-or-None)``.
PriorState = Tuple[int, Optional[MovingObject]]


class SnapshotTooOldError(LookupError):
    """The pinned epoch's deltas were garbage-collected.

    Raised when a query pins an epoch below the shard's reconstruction
    floor — the overlay prunes deltas at or below the oldest epoch any
    live pin still needs, so this only happens for epochs obtained
    outside :meth:`ShardedIndex.pin` (which registers the pin and keeps
    its deltas alive).
    """


class VersionedShard:
    """One shard index plus its epoch undo-log overlay.

    The wrapper exposes the shard's full mutation/query surface; every
    mutation additionally accepts ``epoch`` (the batch's global epoch)
    and ``gc_floor`` (the oldest epoch any reader still needs — deltas
    at or below it are pruned), and every exact query additionally
    accepts ``epoch`` to answer at a pinned historical epoch.  Unknown
    attributes (``buffer``, ``name``, ``compact``, …) delegate to the
    wrapped index, so the wrapper drops into every call site that held a
    bare shard — including pickling into a worker process.
    """

    def __init__(self, base: object, epoch: int = 0) -> None:
        self.base = base
        #: Highest epoch whose mutations this shard has applied.
        self.epoch = int(epoch)
        #: Oldest epoch whose snapshot is still reconstructible.
        self.floor = int(epoch)
        #: Ascending ``(epoch, {oid: prior state})`` undo deltas.
        self._deltas: List[Tuple[int, Dict[int, Optional[MovingObject]]]] = []

    # -- delegation ----------------------------------------------------
    def __getattr__(self, name: str):
        if name.startswith("__"):
            raise AttributeError(name)
        base = self.__dict__.get("base")
        if base is None:
            raise AttributeError(name)
        return getattr(base, name)

    def __len__(self) -> int:
        return len(self.base)

    # -- overlay bookkeeping -------------------------------------------
    def _record(self, epoch: Optional[int], priors: Sequence[PriorState]) -> None:
        """Fold prior states into the delta of ``epoch`` and advance."""
        if epoch is None:
            return
        if priors:
            if not self._deltas or self._deltas[-1][0] != epoch:
                self._deltas.append((epoch, {}))
            delta = self._deltas[-1][1]
            for oid, prior in priors:
                # First prior wins: it is the state the epoch started from.
                delta.setdefault(oid, prior)
        if epoch > self.epoch:
            self.epoch = epoch

    def _prune(self, gc_floor: Optional[int]) -> None:
        """Drop deltas no reader can still pin (epochs ``<= gc_floor``)."""
        if gc_floor is None or gc_floor <= self.floor:
            return
        deltas = self._deltas
        while deltas and deltas[0][0] <= gc_floor:
            deltas.pop(0)
        self.floor = gc_floor

    def delta_epochs(self) -> List[int]:
        """Epochs currently retained in the overlay (oldest first)."""
        return [epoch for epoch, _ in self._deltas]

    def states_at(self, epoch: int) -> Dict[int, Optional[MovingObject]]:
        """Epoch-``epoch`` states of every object touched after it.

        ``None`` values mark objects that did not exist at the pinned
        epoch (they were inserted later).  Objects absent from the map
        are untouched since the pinned epoch — their live state *is*
        their pinned state.
        """
        if epoch < self.floor:
            raise SnapshotTooOldError(
                f"epoch {epoch} is below this shard's reconstruction floor "
                f"{self.floor} (its deltas were pruned; pin epochs via "
                "ShardedIndex.pin() to keep them alive)"
            )
        states: Dict[int, Optional[MovingObject]] = {}
        for delta_epoch, prior in self._deltas:
            if delta_epoch <= epoch:
                continue
            for oid, state in prior.items():
                # Ascending deltas: the first one above ``epoch`` holds
                # the state the object had at ``epoch``.
                states.setdefault(oid, state)
        return states

    # -- mutations (undo-logged) ---------------------------------------
    def insert(
        self,
        obj: MovingObject,
        epoch: Optional[int] = None,
        gc_floor: Optional[int] = None,
    ):
        result = self.base.insert(obj)
        self._record(epoch, [(obj.oid, None)])
        self._prune(gc_floor)
        return result

    def delete(
        self,
        obj: MovingObject,
        epoch: Optional[int] = None,
        gc_floor: Optional[int] = None,
    ) -> bool:
        removed = self.base.delete(obj)
        self._record(epoch, [(obj.oid, obj)] if removed else [])
        self._prune(gc_floor)
        return removed

    def update(
        self,
        old: MovingObject,
        new: MovingObject,
        epoch: Optional[int] = None,
        gc_floor: Optional[int] = None,
    ) -> bool:
        existed = self.base.update(old, new)
        self._record(epoch, [(old.oid, old if existed else None)])
        self._prune(gc_floor)
        return existed

    def insert_batch(
        self,
        objects: Sequence[MovingObject],
        epoch: Optional[int] = None,
        gc_floor: Optional[int] = None,
    ):
        objects = list(objects)
        result = self.base.insert_batch(objects)
        self._record(epoch, [(obj.oid, None) for obj in objects])
        self._prune(gc_floor)
        return result

    def delete_batch(
        self,
        objects: Sequence[MovingObject],
        epoch: Optional[int] = None,
        gc_floor: Optional[int] = None,
    ) -> List[bool]:
        objects = list(objects)
        flags = self.base.delete_batch(objects)
        self._record(
            epoch, [(obj.oid, obj) for obj, flag in zip(objects, flags) if flag]
        )
        self._prune(gc_floor)
        return flags

    def update_batch(
        self,
        pairs: Sequence[Tuple[MovingObject, MovingObject]],
        epoch: Optional[int] = None,
        gc_floor: Optional[int] = None,
    ) -> int:
        pairs = list(pairs)
        count = self.base.update_batch(pairs)
        self._record(epoch, [(old.oid, old) for old, _ in pairs])
        self._prune(gc_floor)
        return count

    def bulk_load(
        self,
        objects: Sequence[MovingObject],
        strategy: Optional[str] = None,
        epoch: Optional[int] = None,
        gc_floor: Optional[int] = None,
    ):
        from repro.bulk import loader_accepts

        objects = list(objects)
        loader = self.base.bulk_load
        if strategy is not None and loader_accepts(loader, "strategy"):
            result = loader(objects, strategy=strategy)
        else:
            result = loader(objects)
        self._record(epoch, [(obj.oid, None) for obj in objects])
        self._prune(gc_floor)
        return result

    def apply_logged(self, op: str, payload, epoch: Optional[int] = None):
        """Replay one WAL record, rebuilding overlay state and epoch.

        This is the recovery entry point: :meth:`ShardLog.replay` routes
        records here when the target shard is versioned, so a shard
        rebuilt from a baseline/image plus its WAL tail ends at the same
        epoch — and the same retained overlay — as the one it replaces.
        """
        if op == "bulk_load":
            objects, strategy = payload
            return self.bulk_load(list(objects), strategy=strategy, epoch=epoch)
        if op == "insert":
            return self.insert(payload, epoch=epoch)
        if op == "insert_batch":
            return self.insert_batch(list(payload), epoch=epoch)
        if op == "delete":
            return self.delete(payload, epoch=epoch)
        if op == "delete_batch":
            return self.delete_batch(list(payload), epoch=epoch)
        if op == "update":
            old, new = payload
            return self.update(old, new, epoch=epoch)
        if op == "update_batch":
            return self.update_batch(list(payload), epoch=epoch)
        raise ValueError(f"unknown logged operation {op!r}")

    # -- queries (epoch-reconciled) ------------------------------------
    def range_query(
        self,
        query: RangeQuery,
        exact: bool = True,
        epoch: Optional[int] = None,
    ) -> List[int]:
        return self.range_query_batch([query], exact=exact, epoch=epoch)[0]

    def range_query_batch(
        self,
        queries: Sequence[RangeQuery],
        exact: bool = True,
        epoch: Optional[int] = None,
    ) -> List[List[int]]:
        """Per-query qualifying oids, reconciled to ``epoch`` when pinned.

        Touched oids are removed from the live answer and re-qualified
        from their recorded epoch states with :meth:`RangeQuery.matches`
        — the predicate the index answers are defined against — so the
        reconciled answer set equals a quiescent evaluation at ``epoch``.
        """
        if epoch is not None and not exact:
            raise ValueError("epoch-pinned range queries require exact=True")
        queries = list(queries)
        answers = self.base.range_query_batch(queries, exact=exact)
        if epoch is None or epoch >= self.epoch:
            return answers
        states = self.states_at(epoch)
        if not states:
            return answers
        reconciled: List[List[int]] = []
        for query, answer in zip(queries, answers):
            merged = [oid for oid in answer if oid not in states]
            merged.extend(
                oid
                for oid, state in states.items()
                if state is not None and query.matches(state)
            )
            merged.sort()
            reconciled.append(merged)
        return reconciled

    def knn_query(
        self,
        center: Point,
        k: int,
        query_time: float,
        issue_time: float = 0.0,
        space: Optional[Rect] = None,
        radius_state: Optional[AdaptiveRadius] = None,
        epoch: Optional[int] = None,
    ) -> List[Tuple[int, float]]:
        probe = KNNQuery(center=center, k=k, query_time=query_time, issue_time=issue_time)
        return self.knn_query_batch(
            [probe], space=space, radius_state=radius_state, epoch=epoch
        )[0]

    def knn_query_batch(
        self,
        queries: Sequence[KNNQuery],
        space: Optional[Rect] = None,
        radius_state: Optional[AdaptiveRadius] = None,
        epoch: Optional[int] = None,
    ) -> List[List[Tuple[int, float]]]:
        """Per-probe ``(oid, distance)`` rankings at the pinned ``epoch``.

        The live index is asked for ``k + touched`` neighbours (touched
        oids can displace at most ``touched`` true answers), touched oids
        are dropped, and the touched objects' epoch states are ranked by
        the same vectorized kernel the index itself uses before the final
        ``(distance, oid)`` merge — keeping every distance bit-identical
        to a quiescent evaluation at ``epoch``.
        """
        queries = list(queries)
        if epoch is None or epoch >= self.epoch:
            return self.base.knn_query_batch(
                queries, space=space, radius_state=radius_state
            )
        states = self.states_at(epoch)
        if not states:
            return self.base.knn_query_batch(
                queries, space=space, radius_state=radius_state
            )
        overfetch = len(states)
        widened = [
            replace(query, k=query.k + overfetch) if query.k > 0 else query
            for query in queries
        ]
        raw = self.base.knn_query_batch(
            widened, space=space, radius_state=radius_state
        )
        pool = {
            oid: (
                oid,
                state.position.x,
                state.position.y,
                state.velocity.vx,
                state.velocity.vy,
                state.reference_time,
            )
            for oid, state in states.items()
            if state is not None
        }
        # The expanding search never returns candidates beyond the space
        # diagonal; the brute-forced epoch states honour the same cap.
        cap = math.hypot(space.width, space.height) if space is not None else None
        reconciled: List[List[Tuple[int, float]]] = []
        for query, ranked in zip(queries, raw):
            if query.k <= 0:
                reconciled.append([])
                continue
            merged = [pair for pair in ranked if pair[0] not in states]
            if pool:
                oids, distances = _rank_distances(pool, query.center, query.query_time)
                merged.extend(
                    (int(oid), float(distance))
                    for oid, distance in zip(oids, distances)
                    if cap is None or distance <= cap
                )
            merged.sort(key=lambda pair: (pair[1], pair[0]))
            reconciled.append(merged[: query.k])
        return reconciled
