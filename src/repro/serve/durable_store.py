"""Durable checkpoint/WAL store behind the sharded serving layer.

This module makes a :class:`~repro.serve.ShardedIndex` outlive its
process.  Each shard gets a directory holding:

* ``pages.db`` — the live :class:`~repro.storage.FileDiskManager` page
  file (CRC'd slots, double-write torn-page protection);
* ``pages.<G>.ckpt`` — the generation-``G`` checkpoint image: a byte copy
  of ``pages.db`` taken after a full buffer flush + fsync, plus nothing
  else — the only version of the page file recovery ever trusts;
* ``wal.<G>.log`` — the :class:`~repro.serve.shard_log.DurableShardLog`
  of every mutation since checkpoint ``G``;
* ``checkpoint.meta`` — a CRC-framed record naming the current generation
  and carrying the pickled index metadata (tree shape, capacities, root
  page id) with its buffer/disk/stats externalized.

**Why an image, not in-place replay.**  The serving layer's WAL is
*logical* (operation-level).  Between checkpoints the buffer keeps
evicting dirty pages into ``pages.db``, so the live page file holds a
state strictly *newer* than the checkpoint — replaying the WAL tail onto
it would apply every operation twice.  Recovery therefore always restores
``pages.db`` from the generation image first, then replays the tail onto
that exact checkpoint state.  The double-write/CRC machinery still earns
its keep underneath: it keeps every *individual* file mutation atomic, so
the image copy never snapshots a half-written page and a reopened store
never reads one.

**Checkpoint commit protocol** (per shard, crash-safe at every step):

1. flush the buffer and ``sync()`` the disk — ``pages.db`` now holds the
   complete shard state, durably;
2. write ``pages.<G+1>.ckpt`` (copy to a temp file, fsync, rename);
3. create an empty ``wal.<G+1>.log`` (fsync'd);
4. **commit point**: atomically replace ``checkpoint.meta`` with a record
   naming generation ``G+1``;
5. switch the live log to ``wal.<G+1>.log`` and delete generation-``G``
   files.

A crash before step 4 recovers at generation ``G`` (its image and WAL are
untouched; stray ``G+1`` files are garbage-collected on open).  A crash
after step 4 recovers at ``G+1`` with an empty WAL — the new image
already contains everything the old WAL held.

Index *metadata* is pickled with the storage objects cut out: a custom
pickler replaces the index's :class:`~repro.storage.BufferManager` (and
any disk/stats reference) with persistent ids, and unpickling binds them
to a fresh buffer over the restored page file.  Every standard family —
Bx, TPR/TPR*, B+ and the ``VPIndex`` variants (their velocity-partition
factories are consumed at construction, not retained) — round-trips;
an index that genuinely cannot be pickled fails checkpointing with a
clear :class:`~repro.storage.durable.DurabilityError`.
"""

from __future__ import annotations

import io
import json
import os
import pickle
import struct
import zlib
from typing import Any, Callable, List, Optional

from repro.geometry.rect import Rect
from repro.serve.config import ServeConfig
from repro.serve.shard_log import DurableShardLog, ShardLog
from repro.serve.sharded_index import ShardedIndex
from repro.serve.supervisor import SupervisorConfig
from repro.storage.buffer_manager import DEFAULT_BUFFER_PAGES, BufferManager
from repro.storage.disk_manager import DiskManager
from repro.storage.durable import (
    DEFAULT_SLOT_BYTES,
    DurabilityError,
    FileDiskManager,
)
from repro.storage.faults import FaultInjectingDiskManager
from repro.storage.stats import IOStats

_META_HEADER = struct.Struct("<II")
_MANIFEST = "MANIFEST.json"
_MANIFEST_VERSION = 1


# ----------------------------------------------------------------------
# fsync'd file helpers
# ----------------------------------------------------------------------
def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: str, data: bytes, fsync: bool) -> None:
    """Write ``data`` to ``path`` via temp file + rename (all-or-nothing)."""
    tmp = path + ".tmp"
    with open(tmp, "wb") as handle:
        handle.write(data)
        if fsync:
            handle.flush()
            os.fsync(handle.fileno())
    os.replace(tmp, path)
    if fsync:
        _fsync_dir(os.path.dirname(path) or ".")


def _copy_file(src: str, dst: str, fsync: bool) -> None:
    with open(src, "rb") as handle:
        _atomic_write(dst, handle.read(), fsync)


# ----------------------------------------------------------------------
# Index metadata pickling (storage objects externalized)
# ----------------------------------------------------------------------
class _IndexPickler(pickle.Pickler):
    """Pickles an index with buffer/disk/stats replaced by persistent ids."""

    def persistent_id(self, obj: Any) -> Optional[str]:
        if isinstance(obj, BufferManager):
            return "buffer"
        if isinstance(obj, (DiskManager, FileDiskManager, FaultInjectingDiskManager)):
            return "disk"
        if isinstance(obj, IOStats):
            return "stats"
        return None


class _IndexUnpickler(pickle.Unpickler):
    def __init__(self, stream: io.BytesIO, buffer: BufferManager) -> None:
        super().__init__(stream)
        self._buffer = buffer

    def persistent_load(self, pid: str) -> Any:
        if pid == "buffer":
            return self._buffer
        if pid == "disk":
            return self._buffer.disk
        if pid == "stats":
            return self._buffer.stats
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def dumps_index(index: Any) -> bytes:
    """Pickle an index's metadata with its storage objects cut out."""
    stream = io.BytesIO()
    try:
        _IndexPickler(stream, protocol=pickle.HIGHEST_PROTOCOL).dump(index)
    except (pickle.PicklingError, AttributeError, TypeError) as error:
        raise DurabilityError(
            f"index {type(index).__name__} cannot be checkpointed: {error} "
            "(the index holds something pickle cannot serialize — every "
            "standard family, VP variants included, round-trips cleanly)"
        ) from error
    return stream.getvalue()


def loads_index(blob: bytes, buffer: BufferManager) -> Any:
    """Rebuild an index from :func:`dumps_index` bytes over ``buffer``."""
    return _IndexUnpickler(io.BytesIO(blob), buffer).load()


# ----------------------------------------------------------------------
# Per-shard store
# ----------------------------------------------------------------------
class ShardStore:
    """Checkpoint/WAL persistence of one shard (see module docstring).

    After :meth:`create` or :meth:`open`, the store owns the shard's live
    :class:`FileDiskManager` (:attr:`disk`) and durable WAL (:attr:`log`);
    the :class:`~repro.serve.ShardedIndex` above calls :meth:`checkpoint`
    to commit a new generation and :meth:`restore_image` to rebuild the
    shard during recovery.
    """

    def __init__(
        self,
        root: str,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        fsync: bool = True,
        crash_hook: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.root = str(root)
        self.buffer_pages = buffer_pages
        self.slot_bytes = slot_bytes
        self._fsync = fsync
        self._crash_hook = crash_hook
        self.generation = -1
        self.disk: Optional[FileDiskManager] = None
        self.log: Optional[DurableShardLog] = None
        #: WAL records replayed by the last :meth:`open` (the bounded
        #: recovery tail; 0 after a clean shutdown).
        self.replayed_on_open = 0
        self._blob: Optional[bytes] = None

    # -- paths ---------------------------------------------------------
    def _pages_path(self) -> str:
        return os.path.join(self.root, "pages.db")

    def _image_path(self, generation: int) -> str:
        return os.path.join(self.root, f"pages.{generation}.ckpt")

    def _wal_path(self, generation: int) -> str:
        return os.path.join(self.root, f"wal.{generation}.log")

    def _meta_path(self) -> str:
        return os.path.join(self.root, "checkpoint.meta")

    # -- meta records --------------------------------------------------
    def _write_meta(self, meta: dict) -> None:
        body = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
        framed = _META_HEADER.pack(len(body), zlib.crc32(body)) + body
        _atomic_write(self._meta_path(), framed, self._fsync)

    def _read_meta(self) -> dict:
        try:
            with open(self._meta_path(), "rb") as handle:
                data = handle.read()
        except FileNotFoundError:
            raise DurabilityError(
                f"{self.root}: no checkpoint.meta (not a shard store, or its "
                "creating checkpoint never committed)"
            ) from None
        if len(data) < _META_HEADER.size:
            raise DurabilityError(f"{self.root}: checkpoint.meta is truncated")
        length, crc = _META_HEADER.unpack_from(data)
        body = data[_META_HEADER.size : _META_HEADER.size + length]
        if len(body) < length or zlib.crc32(body) != crc:
            raise DurabilityError(f"{self.root}: checkpoint.meta failed its checksum")
        return pickle.loads(body)

    def _gc(self, keep: int) -> None:
        """Remove images/WALs of every generation except ``keep``."""
        try:
            names = os.listdir(self.root)
        except FileNotFoundError:
            return
        for name in names:
            for prefix, suffix in (("pages.", ".ckpt"), ("wal.", ".log")):
                if not (name.startswith(prefix) and name.endswith(suffix)):
                    continue
                middle = name[len(prefix) : -len(suffix)]
                if middle.isdigit() and int(middle) != keep:
                    os.unlink(os.path.join(self.root, name))

    # -- lifecycle -----------------------------------------------------
    def _open_disk(self) -> BufferManager:
        self.disk = FileDiskManager(
            self._pages_path(),
            slot_bytes=self.slot_bytes,
            fsync=self._fsync,
            crash_hook=self._crash_hook,
        )
        return BufferManager(disk=self.disk, capacity=self.buffer_pages)

    def create(self, factory: Callable[[BufferManager], Any]) -> Any:
        """Build a fresh shard and commit its generation-0 checkpoint."""
        if os.path.exists(self._meta_path()):
            raise DurabilityError(f"{self.root}: shard store already exists; open() it")
        os.makedirs(self.root, exist_ok=True)
        buffer = self._open_disk()
        index = factory(buffer)
        self.log = DurableShardLog(
            self._wal_path(0), fsync=self._fsync, crash_hook=self._crash_hook
        )
        self.checkpoint(index, self.log)
        return index

    def open(self) -> Any:
        """Recover the shard: restore the checkpoint image, replay the WAL.

        Returns the recovered index; :attr:`replayed_on_open` holds the
        WAL-tail length that was replayed (bounded by construction — the
        tail only covers mutations since the last committed checkpoint).
        The log keeps its records after replay so callers can inspect the
        tail; an explicit checkpoint compacts it.
        """
        meta = self._read_meta()
        self.generation = meta["generation"]
        self.slot_bytes = meta["slot_bytes"]
        self.buffer_pages = meta["buffer_pages"]
        self._blob = meta["blob"]
        self._gc(keep=self.generation)
        index = self.restore_image()
        self.log = DurableShardLog(
            self._wal_path(self.generation),
            fsync=self._fsync,
            crash_hook=self._crash_hook,
        )
        self.replayed_on_open = len(self.log)
        self.log.replay(index)
        return index

    def restore_image(self) -> Any:
        """A fresh shard at exactly the current checkpoint's state.

        Replaces ``pages.db`` with the generation image and rebuilds the
        index metadata over a fresh buffer.  The WAL is untouched: the
        caller replays whatever tail it needs (recovery replays all of
        it).
        """
        if self.generation < 0 or self._blob is None:
            raise DurabilityError(f"{self.root}: no committed checkpoint to restore")
        if self.disk is not None:
            self.disk.close()
            self.disk = None
        _copy_file(self._image_path(self.generation), self._pages_path(), self._fsync)
        buffer = self._open_disk()
        return loads_index(self._blob, buffer)

    def checkpoint(self, index: Any, log: ShardLog) -> None:
        """Commit a new checkpoint generation (the 5-step protocol above)."""
        new_generation = self.generation + 1
        blob = dumps_index(index)
        index.buffer.flush()
        self.disk.sync()
        _copy_file(self._pages_path(), self._image_path(new_generation), self._fsync)
        wal_path = self._wal_path(new_generation)
        rotate = log.path != wal_path
        if rotate:
            with open(wal_path, "wb") as handle:
                if self._fsync:
                    os.fsync(handle.fileno())
        self._write_meta(
            {
                "generation": new_generation,
                "slot_bytes": self.slot_bytes,
                "buffer_pages": self.buffer_pages,
                "blob": blob,
            }
        )
        if rotate and isinstance(log, DurableShardLog):
            log.rotate(wal_path)
        else:
            log.truncate()
        self.generation = new_generation
        self._blob = blob
        self._gc(keep=new_generation)

    def close(self) -> None:
        """Sync and close the shard's disk and WAL (idempotent)."""
        if self.disk is not None:
            self.disk.close()
            self.disk = None
        if self.log is not None:
            self.log.close()


# ----------------------------------------------------------------------
# Whole-index store
# ----------------------------------------------------------------------
class DurableStore:
    """A directory of shard stores plus a manifest: one durable index.

    ``create()`` builds a new durable :class:`ShardedIndex` (each shard
    over its own :class:`FileDiskManager` + :class:`DurableShardLog`);
    ``open()`` recovers one after a clean shutdown *or* a crash — same
    code path, the only difference is how long the replayed WAL tails
    are.  The manifest (JSON) records the topology so ``open()`` needs no
    arguments beyond policy knobs.
    """

    def __init__(
        self,
        root: str,
        fsync: bool = True,
        crash_hook: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.root = str(root)
        self._fsync = fsync
        self._crash_hook = crash_hook
        #: Per-shard WAL-tail lengths replayed by the last :meth:`open`.
        self.replayed_on_open: List[int] = []

    @property
    def exists(self) -> bool:
        """Whether a manifest is already committed at :attr:`root`."""
        return os.path.exists(os.path.join(self.root, _MANIFEST))

    def _shard_root(self, shard_id: int) -> str:
        return os.path.join(self.root, f"shard-{shard_id:03d}")

    def _stores(self, manifest: dict) -> List[ShardStore]:
        return [
            ShardStore(
                self._shard_root(shard_id),
                buffer_pages=manifest["buffer_pages"],
                slot_bytes=manifest["slot_bytes"],
                fsync=self._fsync,
                crash_hook=self._crash_hook,
            )
            for shard_id in range(manifest["num_shards"])
        ]

    def _assemble(
        self,
        shards: List[Any],
        stores: List[ShardStore],
        manifest: dict,
        config: Optional[ServeConfig],
    ) -> ShardedIndex:
        space = manifest.get("space")
        base = config if config is not None else ServeConfig()
        # The store's logs/stores always win (they are the durable state);
        # the manifest supplies name/space defaults the config can override.
        resolved = ServeConfig(
            name=base.name or manifest.get("name"),
            space=base.space if base.space is not None else (
                None if space is None else Rect(*space)
            ),
            executor=base.executor,
            max_workers=base.max_workers,
            shard_factory=base.shard_factory,
            supervisor=base.supervisor,
            logs=[store.log for store in stores],
            stores=stores,
            snapshots=base.snapshots,
        )
        return ShardedIndex(shards, config=resolved)

    def create(
        self,
        shard_factory: Callable[[BufferManager], Any],
        num_shards: int = 1,
        name: Optional[str] = None,
        space: Optional[Rect] = None,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
        slot_bytes: int = DEFAULT_SLOT_BYTES,
        max_workers: Optional[int] = None,
        supervisor: Optional[SupervisorConfig] = None,
        config: Optional[ServeConfig] = None,
    ) -> ShardedIndex:
        """Create a new durable sharded index at :attr:`root`.

        ``shard_factory`` takes the shard's :class:`BufferManager` and
        returns an empty index over it — unlike the in-memory
        ``shard_factory`` of :class:`ShardedIndex`, which allocates its
        own storage, a durable shard's storage is owned by its store.
        ``config`` carries the serving-policy fields (supervisor, fan-out
        width, executor — which must stay in-process for durable shards);
        ``max_workers``/``supervisor`` remain as store-level shorthands.
        """
        if self.exists:
            raise DurabilityError(f"{self.root}: store already exists; open() it")
        if num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        os.makedirs(self.root, exist_ok=True)
        manifest = {
            "version": _MANIFEST_VERSION,
            "num_shards": num_shards,
            "name": name,
            "buffer_pages": buffer_pages,
            "slot_bytes": slot_bytes,
            "space": None
            if space is None
            else [space.x_min, space.y_min, space.x_max, space.y_max],
        }
        stores = self._stores(manifest)
        shards = [store.create(shard_factory) for store in stores]
        # Commit the manifest last: a crash mid-create leaves a directory
        # without one, which open() rejects cleanly.
        _atomic_write(
            os.path.join(self.root, _MANIFEST),
            json.dumps(manifest, indent=2).encode("utf-8"),
            self._fsync,
        )
        resolved = (config if config is not None else ServeConfig()).merged(
            max_workers=max_workers, supervisor=supervisor
        )
        return self._assemble(shards, stores, manifest, resolved)

    def open(
        self,
        max_workers: Optional[int] = None,
        supervisor: Optional[SupervisorConfig] = None,
        config: Optional[ServeConfig] = None,
    ) -> ShardedIndex:
        """Recover the durable index (checkpoint images + WAL-tail replay)."""
        try:
            with open(os.path.join(self.root, _MANIFEST), "r", encoding="utf-8") as f:
                manifest = json.load(f)
        except FileNotFoundError:
            raise DurabilityError(
                f"{self.root}: no manifest (not a durable store, or create() "
                "crashed before committing one)"
            ) from None
        if manifest.get("version") != _MANIFEST_VERSION:
            raise DurabilityError(
                f"{self.root}: manifest version {manifest.get('version')} "
                f"(this build reads {_MANIFEST_VERSION})"
            )
        stores = self._stores(manifest)
        shards = [store.open() for store in stores]
        self.replayed_on_open = [store.replayed_on_open for store in stores]
        resolved = (config if config is not None else ServeConfig()).merged(
            max_workers=max_workers, supervisor=supervisor
        )
        return self._assemble(shards, stores, manifest, resolved)


__all__ = [
    "DurableStore",
    "ShardStore",
    "dumps_index",
    "loads_index",
]
