"""Pluggable shard executors: where a shard's operations actually run.

The :class:`~repro.serve.ShardedIndex` above this module decides *what*
runs on each shard (routing, supervision, WAL, merge); an
:class:`Executor` decides *where*:

* :class:`SerialExecutor` — every shard call runs inline on the calling
  thread, one shard after another.  No threads, no processes: the
  deterministic reference backend (and the fastest one for tiny
  workloads, where fan-out overhead dominates).
* :class:`ThreadExecutor` — shard calls fan out on a thread pool.  This
  is the historical default: updates scale (they route to one shard
  each) but query fan-out shares one GIL, so per-query latency *loses*
  at higher shard counts (measured in ``BENCH_speed.json``'s scale
  entries).
* :class:`ProcessExecutor` — each shard lives in its own worker process
  and the serving layer talks to it through a :class:`_ProcessShard`
  proxy speaking a compact message protocol over a pipe.  Queries cross
  as one batched message per shard, replies carry the worker's I/O
  counters so the parent-side aggregate stays exact, and a dead worker
  surfaces as :class:`~repro.storage.faults.ShardDownError` — which the
  supervisor already treats as "rebuild from the WAL", so process death
  recovers through the exact machinery shard faults do.

**Handles.**  ``attach(shards)`` returns one *handle* per shard and the
serving layer only ever talks to handles.  For the in-process executors
the handle *is* the index; for the process executor it is a proxy with
the same method surface (``insert`` … ``knn_query_batch``, ``buffer``
with live ``stats``), so the supervision/merge code upstairs is executor
agnostic.

**Message protocol** (process mode).  Parent → worker messages are
``(op, args, kwargs)`` tuples, pickled by the pipe; ``op`` is an index
method name (``"update_batch"``, ``"range_query_batch"``, …) or one of
the double-underscore control verbs (``"__len__"``, ``"__flush__"``,
``"__snapshot__"``, ``"__hints_get__"``, ``"__hints_set__"``,
``"__close__"``).  Worker → parent replies are ``(ok, payload, stats)``
where ``payload`` is the return value (or the raised exception) and
``stats`` is the worker's cumulative six-counter I/O state
``(physical r/w, logical r/w, buffer hit/miss)``, copied into the
parent's per-shard mirror :class:`~repro.storage.stats.IOStats` on every
reply — aggregate accounting is therefore exact, not sampled, at one
message per shard per batch.  See ``docs/serving.md``.
"""

from __future__ import annotations

import copy
import multiprocessing
import os
import threading
import warnings
import weakref
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.storage.faults import ShardDownError
from repro.storage.stats import IOStats

#: Control verbs of the process-mode message protocol (everything else is
#: dispatched as an index method by name).
CONTROL_VERBS = (
    "__len__",
    "__flush__",
    "__snapshot__",
    "__hints_get__",
    "__hints_set__",
    "__close__",
)


class Executor:
    """Where shard operations run (see the module docstring).

    An executor is single-use: it binds to one :class:`ShardedIndex` via
    :meth:`attach` and is torn down by that index's ``close()``.  The
    serving layer holds the per-shard locks and the supervision policy;
    the executor only provides placement (inline / thread / process) and
    the handle objects the supervised calls run against.

    Attributes:
        kind: short name (``"serial"`` / ``"thread"`` / ``"process"``).
        parallel: whether fanned-out calls should run on the fan-out
            pool (False = the serving layer loops inline, which is what
            makes :class:`SerialExecutor` deterministic).
    """

    kind = "base"
    parallel = False

    def __init__(self) -> None:
        self._attached = False
        self._closed = False
        self._max_workers = 1
        self._fan_out_pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------
    def attach(self, shards: Sequence[Any], max_workers: Optional[int] = None) -> List[Any]:
        """Bind the executor to ``shards``; returns one handle per shard."""
        if self._attached:
            raise RuntimeError(
                f"{type(self).__name__} is already attached to a ShardedIndex "
                "(executors are single-use; build a fresh one per index)"
            )
        if self._closed:
            raise RuntimeError(f"{type(self).__name__} is closed")
        self._attached = True
        self._max_workers = max_workers or len(shards) or 1
        return self._attach(list(shards))

    def _attach(self, shards: List[Any]) -> List[Any]:
        return shards

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def pool(self) -> ThreadPoolExecutor:
        """The fan-out thread pool (created lazily; parallel modes only)."""
        with self._pool_lock:
            if self._closed:
                raise RuntimeError(f"{type(self).__name__} is closed")
            if self._fan_out_pool is None:
                self._fan_out_pool = ThreadPoolExecutor(
                    max_workers=self._max_workers,
                    thread_name_prefix=f"shard-{self.kind}",
                )
                # GC backstop only: a leaked index must not leak threads.
                # The supported teardown path is ShardedIndex.close().
                weakref.finalize(self, self._fan_out_pool.shutdown, wait=False)
            return self._fan_out_pool

    def quiesce(self) -> None:
        """Stop the fan-out pool (waits for in-flight calls to finish)."""
        with self._pool_lock:
            pool, self._fan_out_pool = self._fan_out_pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def close(self) -> None:
        """Tear the executor down (idempotent at this level)."""
        self.quiesce()
        self._closed = True

    # -- shard plumbing ------------------------------------------------
    def replace(self, shard_id: int, fresh: Any) -> Any:
        """Swap in a recovered shard; returns the replacement handle."""
        raise NotImplementedError

    def snapshot(self, shard_id: int) -> Any:
        """A parent-side deep copy of the shard's current state.

        Used as the in-memory checkpoint baseline: replaying the WAL tail
        into (a deepcopy of) the snapshot must reproduce the live shard.
        The caller flushes the shard's buffer first and holds its lock.
        """
        raise NotImplementedError


class SerialExecutor(Executor):
    """Deterministic reference backend: every shard call runs inline.

    Fan-out order is always ascending shard id on the calling thread, so
    a run's interleaving is reproducible operation for operation.  Per-
    call timeouts cannot be enforced without a second thread and are
    ignored (documented in ``docs/serving.md``).
    """

    kind = "serial"
    parallel = False

    def _attach(self, shards: List[Any]) -> List[Any]:
        self._shards = shards
        return shards

    def replace(self, shard_id: int, fresh: Any) -> Any:
        self._shards[shard_id] = fresh
        return fresh

    def snapshot(self, shard_id: int) -> Any:
        return copy.deepcopy(self._shards[shard_id])


class ThreadExecutor(SerialExecutor):
    """The historical backend: shard calls fan out on a thread pool.

    Handles are the index instances themselves; parallelism is capped by
    ``max_workers`` (default: the shard count) and, in CPython, by the
    GIL — which is exactly the limitation :class:`ProcessExecutor`
    removes.
    """

    kind = "thread"
    parallel = True


# ----------------------------------------------------------------------
# Process mode
# ----------------------------------------------------------------------
def _stats_tuple(stats: IOStats) -> Tuple[int, int, int, int, int, int]:
    return (
        stats.physical.reads,
        stats.physical.writes,
        stats.logical.reads,
        stats.logical.writes,
        stats.buffer.hits,
        stats.buffer.misses,
    )


def _apply_stats(mirror: IOStats, values: Tuple[int, int, int, int, int, int]) -> None:
    (
        mirror.physical.reads,
        mirror.physical.writes,
        mirror.logical.reads,
        mirror.logical.writes,
        mirror.buffer.hits,
        mirror.buffer.misses,
    ) = values


def _shard_worker_main(conn, index: Any) -> None:
    """Worker-process loop: execute messages against the hosted shard.

    Runs until a ``__close__`` verb or a closed pipe.  Every reply —
    success or failure — carries the shard's cumulative I/O counters so
    the parent's mirror stays exact without extra round trips.
    """
    from repro.bulk import loader_accepts

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op, args, kwargs = message
        try:
            if op == "__close__":
                conn.send((True, None, _stats_tuple(index.buffer.stats)))
                break
            if op == "__len__":
                value: Any = len(index)
            elif op == "__flush__":
                value = index.buffer.flush()
            elif op == "__snapshot__":
                value = index
            elif op == "__hints_get__":
                value = index.buffer.batch_hints_enabled
            elif op == "__hints_set__":
                index.buffer.batch_hints_enabled = args[0]
                value = None
            elif op == "bulk_load":
                objects, strategy = args
                loader = index.bulk_load
                if strategy is not None and loader_accepts(loader, "strategy"):
                    value = loader(objects, strategy=strategy, **kwargs)
                else:
                    value = loader(objects, **kwargs)
            else:
                value = getattr(index, op)(*args, **kwargs)
            reply = (True, value, _stats_tuple(index.buffer.stats))
        except BaseException as error:  # noqa: BLE001 - forwarded to the parent
            reply = (False, error, _stats_tuple(index.buffer.stats))
        try:
            conn.send(reply)
        except Exception:
            # Unpicklable payload (or a vanished parent): degrade to a
            # picklable error so the parent is never left blocked.
            try:
                conn.send(
                    (
                        False,
                        RuntimeError(f"shard worker could not send a {op!r} reply"),
                        _stats_tuple(index.buffer.stats),
                    )
                )
            except Exception:
                break
    conn.close()


class _ProcessBuffer:
    """The ``buffer`` facade of a :class:`_ProcessShard` handle.

    ``stats`` is the parent-side mirror — a plain :class:`IOStats`
    refreshed from every worker reply, so reads are local and exact as
    of the last completed call.  ``flush`` and the batch-hints toggle
    cross the pipe.
    """

    def __init__(self, owner: "ProcessExecutor", shard_id: int, stats: IOStats) -> None:
        self._owner = owner
        self._shard_id = shard_id
        self.stats = stats

    def flush(self) -> None:
        self._owner._call(self._shard_id, "__flush__", (), {})

    @property
    def batch_hints_enabled(self) -> bool:
        return self._owner._call(self._shard_id, "__hints_get__", (), {})

    @batch_hints_enabled.setter
    def batch_hints_enabled(self, enabled: bool) -> None:
        self._owner._call(self._shard_id, "__hints_set__", (bool(enabled),), {})


class _ProcessShard:
    """Parent-side proxy of one worker-hosted shard.

    Exposes the same method surface as the index it fronts, so the
    supervision and merge code of :class:`~repro.serve.ShardedIndex`
    is identical across executors.  Every method is one message over the
    shard's pipe; batched calls therefore cost one round trip per shard
    per batch regardless of batch size.
    """

    def __init__(self, owner: "ProcessExecutor", shard_id: int, name: str, stats: IOStats) -> None:
        self._owner = owner
        self._shard_id = shard_id
        self.name = name
        self.buffer = _ProcessBuffer(owner, shard_id, stats)

    def _call(self, op: str, *args, **kwargs) -> Any:
        return self._owner._call(self._shard_id, op, args, kwargs)

    # -- mutations -----------------------------------------------------
    # Mutations forward **kwargs so the serving layer's snapshot plumbing
    # (``epoch=…, gc_floor=…``) crosses the pipe to the versioned shard
    # hosted in the worker; without snapshots the kwargs are simply empty.
    def insert(self, obj, **kwargs) -> None:
        return self._call("insert", obj, **kwargs)

    def delete(self, obj, **kwargs) -> bool:
        return self._call("delete", obj, **kwargs)

    def update(self, old, new, **kwargs) -> bool:
        return self._call("update", old, new, **kwargs)

    def insert_batch(self, objects, **kwargs) -> None:
        return self._call("insert_batch", list(objects), **kwargs)

    def delete_batch(self, objects, **kwargs) -> List[bool]:
        return self._call("delete_batch", list(objects), **kwargs)

    def update_batch(self, pairs, **kwargs) -> int:
        return self._call("update_batch", list(pairs), **kwargs)

    def bulk_load(self, objects, strategy: Optional[str] = None, **kwargs) -> None:
        # The worker re-checks whether the hosted loader accepts a
        # strategy, so this proxy can always advertise the parameter.
        return self._owner._call(
            self._shard_id, "bulk_load", (list(objects), strategy), kwargs
        )

    # -- queries -------------------------------------------------------
    # ``epoch`` crosses the pipe only when pinned: an unversioned hosted
    # shard (snapshots disabled) does not accept the parameter.
    def range_query(self, query, exact: bool = True, epoch=None) -> List[int]:
        extra = {} if epoch is None else {"epoch": epoch}
        return self._call("range_query", query, exact=exact, **extra)

    def range_query_batch(self, queries, exact: bool = True, epoch=None) -> List[List[int]]:
        extra = {} if epoch is None else {"epoch": epoch}
        return self._call("range_query_batch", list(queries), exact=exact, **extra)

    def knn_query(
        self, center, k, query_time, issue_time=0.0, space=None, radius_state=None, epoch=None
    ):
        extra = {} if epoch is None else {"epoch": epoch}
        return self._call(
            "knn_query",
            center,
            k,
            query_time,
            issue_time=issue_time,
            space=space,
            radius_state=radius_state,
            **extra,
        )

    def knn_query_batch(self, queries, space=None, radius_state=None, epoch=None):
        # radius_state crosses as a pickled copy: the worker still shares
        # radii *within* the batch, but cross-shard adaptation is cut —
        # a pure perf hint either way (answers are radius independent).
        extra = {} if epoch is None else {"epoch": epoch}
        return self._call(
            "knn_query_batch",
            list(queries),
            space=space,
            radius_state=radius_state,
            **extra,
        )

    def __len__(self) -> int:
        return self._call("__len__")


class _Worker:
    """One worker process plus its pipe and per-shard bookkeeping."""

    __slots__ = ("process", "conn", "lock", "dead")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.lock = threading.Lock()
        self.dead = False


def _terminate_workers(workers: Dict[int, _Worker], owner_pid: int) -> None:
    """GC/atexit backstop: reap worker processes without waiting.

    Holds the worker table, never the executor, so the finalizer cannot
    keep a leaked index alive.  The supported path is ``close()``; this
    exists so an index dropped without one cannot leak processes.

    The ``owner_pid`` guard matters under the fork start method: a worker
    forked while earlier workers already existed inherits this finalizer
    and would run it at its own interpreter shutdown — against processes
    it does not own (``multiprocessing`` asserts on exactly that).  Only
    the registering process reaps.
    """
    if os.getpid() != owner_pid:
        return
    for worker in workers.values():
        try:
            worker.conn.close()
        except Exception:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
    for worker in workers.values():
        worker.process.join(timeout=5)


class ProcessExecutor(Executor):
    """Host each shard in its own worker process (GIL-free fan-out).

    Shards are shipped to their workers by pickle at attach time (every
    standard family round-trips; the PR 7 codec work made the storage
    objects plain data).  Shard state then lives *only* in the worker:
    the parent talks through :class:`_ProcessShard` proxies and keeps a
    per-shard mirror of the worker's I/O counters, refreshed on every
    reply.

    Worker death (crash, ``SIGKILL``) raises
    :class:`~repro.storage.faults.ShardDownError` on the next touched
    call, which routes into the serving layer's WAL-replay recovery; the
    recovered shard is shipped to a respawned worker by
    :meth:`replace`.

    Args:
        max_workers: fan-out thread width (these threads only block on
            pipes; default: the shard count).
        start_method: ``multiprocessing`` start method.  Defaults to
            ``"fork"`` where available (no interpreter re-import per
            worker) and ``"spawn"`` elsewhere.
    """

    kind = "process"
    parallel = True

    def __init__(
        self, max_workers: Optional[int] = None, start_method: Optional[str] = None
    ) -> None:
        super().__init__()
        self._requested_workers = max_workers
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self._workers: Dict[int, _Worker] = {}
        self._mirrors: List[IOStats] = []
        self._handles: List[_ProcessShard] = []

    def _attach(self, shards: List[Any]) -> List[Any]:
        if self._requested_workers is not None:
            self._max_workers = self._requested_workers
        for shard_id, shard in enumerate(shards):
            self._mirrors.append(IOStats())
            self._handles.append(self._spawn(shard_id, shard))
        # GC backstop: terminate leaked workers (close() is the real path).
        weakref.finalize(self, _terminate_workers, self._workers, os.getpid())
        return list(self._handles)

    def _spawn(self, shard_id: int, index: Any) -> _ProcessShard:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, index),
            name=f"shard-worker-{shard_id}",
            daemon=True,
        )
        with warnings.catch_warnings():
            # Respawns after recovery fork from a parent whose fan-out
            # threads exist; the child only ever runs the worker loop
            # (no inherited locks are taken), so the 3.12+ fork-with-
            # threads DeprecationWarning does not apply to this use.
            warnings.simplefilter("ignore", DeprecationWarning)
            process.start()
        child_conn.close()
        self._workers[shard_id] = _Worker(process, parent_conn)
        mirror = self._mirrors[shard_id]
        _apply_stats(mirror, _stats_tuple(index.buffer.stats))
        name = getattr(index, "name", type(index).__name__)
        return _ProcessShard(self, shard_id, name, mirror)

    def _down(self, shard_id: int, worker: _Worker) -> ShardDownError:
        worker.dead = True
        try:
            worker.conn.close()
        except Exception:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5)
        code = worker.process.exitcode
        return ShardDownError(
            f"shard {shard_id} worker process died (exit code {code})"
        )

    def _call(self, shard_id: int, op: str, args: tuple, kwargs: dict) -> Any:
        worker = self._workers[shard_id]
        with worker.lock:
            if worker.dead:
                raise ShardDownError(
                    f"shard {shard_id} worker process is down (awaiting recovery)"
                )
            try:
                worker.conn.send((op, args, kwargs))
                ok, payload, stats = worker.conn.recv()
            except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as error:
                raise self._down(shard_id, worker) from error
            _apply_stats(self._mirrors[shard_id], stats)
        if ok:
            return payload
        raise payload

    def replace(self, shard_id: int, fresh: Any) -> Any:
        """Ship a recovered shard to a fresh worker process."""
        old = self._workers.get(shard_id)
        if old is not None:
            if not old.dead:
                try:
                    old.conn.send(("__close__", (), {}))
                    old.conn.recv()
                except Exception:
                    pass
            try:
                old.conn.close()
            except Exception:
                pass
            if old.process.is_alive():
                old.process.terminate()
            old.process.join(timeout=5)
        handle = self._spawn(shard_id, fresh)
        self._handles[shard_id] = handle
        return handle

    def snapshot(self, shard_id: int) -> Any:
        """Materialize the worker's live index in the parent (pickled)."""
        return self._call(shard_id, "__snapshot__", (), {})

    def worker_pid(self, shard_id: int) -> Optional[int]:
        """OS pid of the shard's worker (tests and chaos tooling)."""
        return self._workers[shard_id].process.pid

    def worker_alive(self, shard_id: int) -> bool:
        """Whether the shard's worker process is currently alive."""
        worker = self._workers[shard_id]
        return not worker.dead and worker.process.is_alive()

    def close(self) -> None:
        """Quiesce the fan-out pool, then stop every worker process."""
        self.quiesce()
        for shard_id, worker in self._workers.items():
            with worker.lock:
                if not worker.dead:
                    try:
                        worker.conn.send(("__close__", (), {}))
                        worker.conn.recv()
                    except Exception:
                        pass
                try:
                    worker.conn.close()
                except Exception:
                    pass
            worker.process.join(timeout=5)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=5)
            worker.dead = True
        self._closed = True


#: Executor registry of the string spellings accepted by ServeConfig.
EXECUTORS = {
    "serial": SerialExecutor,
    "thread": ThreadExecutor,
    "process": ProcessExecutor,
}


def make_executor(spec: Any, max_workers: Optional[int] = None) -> Executor:
    """Resolve an executor spec: None, a kind name, a class, or an instance.

    ``None`` resolves to the historical default (:class:`ThreadExecutor`);
    a string must be one of :data:`EXECUTORS`; an :class:`Executor`
    instance passes through (it must not be attached or closed yet).
    """
    if spec is None:
        return ThreadExecutor()
    if isinstance(spec, str):
        try:
            factory = EXECUTORS[spec]
        except KeyError:
            raise ValueError(
                f"unknown executor {spec!r} (choose from {sorted(EXECUTORS)})"
            ) from None
        if factory is ProcessExecutor:
            return ProcessExecutor(max_workers=max_workers)
        return factory()
    if isinstance(spec, type) and issubclass(spec, Executor):
        return spec()
    if isinstance(spec, Executor):
        return spec
    raise TypeError(f"executor must be None, a name, or an Executor (got {type(spec).__name__})")


__all__ = [
    "CONTROL_VERBS",
    "EXECUTORS",
    "Executor",
    "ProcessExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "make_executor",
]
