"""Serving-layer configuration: one dataclass instead of eight kwargs.

:class:`ServeConfig` consolidates the loosely coupled keyword arguments
that :class:`~repro.serve.ShardedIndex` historically took one by one
(``name``/``space``/``max_workers``/``shard_factory``/``supervisor``/
``logs``/``stores``) and adds the executor choice introduced with the
pluggable-executor redesign.  The old keyword spellings still work on the
constructor — they fold into a config and emit a ``DeprecationWarning``
(see the migration note in ``docs/sharding.md``).

Typical use::

    from repro.serve import ServeConfig, ShardedIndex

    index = ShardedIndex(
        shards,
        config=ServeConfig(name="Bx", space=space, executor="process"),
    )

or, end to end, :meth:`ShardedIndex.build`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Callable, Optional, Sequence


@dataclass(frozen=True)
class ServeConfig:
    """Everything a :class:`~repro.serve.ShardedIndex` needs beyond its shards.

    Attributes:
        name: display name used in reprs, logs and benchmark rows.
        space: default query-space rectangle forwarded to per-shard kNN
            calls that do not pass their own.
        executor: where shard operations run — ``"serial"``, ``"thread"``
            (the default when ``None``), ``"process"``, or a pre-built
            (unattached) :class:`~repro.serve.Executor` instance.
        max_workers: fan-out width for the parallel executors (default:
            the shard count).
        shard_factory: zero-argument callable building one empty shard;
            arms WAL-replay recovery for in-memory deployments.
        supervisor: retry/breaker/timeout policy
            (:class:`~repro.serve.SupervisorConfig`).
        logs: pre-existing write-ahead logs, one per shard (used by
            :class:`~repro.serve.DurableStore` when reopening).
        stores: per-shard durable page stores (ditto).
        snapshots: epoch-based snapshot isolation (see ``docs/htap.md``).
            When true (the default) every applied update batch advances a
            global epoch, queries pin a consistent cross-shard epoch, and
            shards keep the undo deltas readers still need.  ``False``
            restores the quiescent-read contract with zero overlay
            overhead (and makes epoch pinning raise).
        key_store: Bx key-store backend for *factory-built* shards —
            ``"btree"`` (the paged default when ``None``) or ``"flat"``
            (the vectorized sorted array), or a backend class; see
            ``docs/backends.md``.  A name or class, never an instance:
            each shard needs its own store.  Pre-built shards passed to
            the constructor keep whatever backend they were built with.
    """

    name: Optional[str] = None
    space: Optional[Any] = None
    executor: Optional[Any] = None
    max_workers: Optional[int] = None
    shard_factory: Optional[Callable[[], Any]] = None
    supervisor: Optional[Any] = None
    logs: Optional[Sequence[Any]] = field(default=None, repr=False)
    stores: Optional[Sequence[Any]] = field(default=None, repr=False)
    snapshots: bool = True
    key_store: Optional[Any] = None

    def merged(self, **overrides: Any) -> "ServeConfig":
        """A copy with every non-``None`` override applied."""
        values = {f.name: getattr(self, f.name) for f in fields(self)}
        for key, value in overrides.items():
            if key not in values:
                raise TypeError(f"ServeConfig has no field {key!r}")
            if value is not None:
                values[key] = value
        return ServeConfig(**values)


__all__ = ["ServeConfig"]
