"""Figure 24: predictive-time sweep with rectangular range queries.

The paper repeats the Figure 23 experiment with 1000 m x 1000 m rectangular
windows and reports "almost the same" results as for circular ranges; the
benchmark checks the same qualitative ordering under rectangular queries.
"""

import pytest

from bench_utils import print_figure, run_once, series

from repro.bench import experiments

#: Figure replays take seconds to minutes; the fast CI tier skips them.
pytestmark = pytest.mark.slow

TIMES = (20.0, 60.0, 120.0)


def test_fig24_rectangular_predictive_time(benchmark, sweep_params):
    rows = run_once(
        benchmark,
        experiments.fig24_predictive_time_rectangular,
        "SA",
        sweep_params,
        times=TIMES,
    )
    print_figure("Figure 24 — rectangular range queries (SA)", rows)

    bx = series(rows, "Bx", "predictive_time")
    bx_vp = series(rows, "Bx(VP)", "predictive_time")
    tpr = series(rows, "TPR*", "predictive_time")
    tpr_vp = series(rows, "TPR*(VP)", "predictive_time")

    # Same ordering as the circular-query experiment at the far end.
    assert bx_vp[-1] < bx[-1]
    assert tpr_vp[-1] <= tpr[-1] * 1.05
    # The unpartitioned Bx-tree still degrades with predictive time.
    assert bx[-1] > bx[0]
