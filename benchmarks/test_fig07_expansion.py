"""Figure 7: search-space expansion, unpartitioned versus partitioned indexes.

The paper shows that on the Chicago data set the leaf MBRs of an
unpartitioned TPR*-tree (and the enlarged query windows of an unpartitioned
Bx-tree) expand in a 2-D space, while their VP-partitioned counterparts
expand in a near 1-D space.  The benchmark reports, per index, the mean
expansion rate along and across the index's primary axis and the resulting
anisotropy; the VP indexes must be markedly more anisotropic.
"""

import pytest

from bench_utils import by_index, print_figure, run_once

from repro.bench import experiments

#: Figure replays take seconds to minutes; the fast CI tier skips them.
pytestmark = pytest.mark.slow


def test_fig07_search_space_expansion(benchmark, bench_params):
    rows = run_once(
        benchmark, experiments.fig07_search_space_expansion, "CH", bench_params
    )
    print_figure("Figure 7 — search space expansion on CH", rows)
    grouped = by_index(rows)

    # The partitioned TPR*-tree's leaves expand mostly along the DVA: the
    # across-DVA rate must be far smaller than the along-DVA rate, while the
    # unpartitioned tree expands on both axes at comparable rates.
    assert grouped["TPR*(VP)"]["anisotropy"] > grouped["TPR*"]["anisotropy"]
    assert grouped["TPR*(VP)"]["mean_across"] < grouped["TPR*"]["mean_across"]

    # Same story for the Bx-tree's query enlargement.
    assert grouped["Bx(VP)"]["anisotropy"] > grouped["Bx"]["anisotropy"]
    assert grouped["Bx(VP)"]["mean_across"] < grouped["Bx"]["mean_across"]
