"""Figure 20: effect of the number of objects on range-query cost.

The paper varies the cardinality from 100K to 500K and finds that query cost
grows roughly linearly for every index while the VP variants stay below
their unpartitioned counterparts.  The scaled-down sweep checks the same two
properties: monotone growth with data size and a persistent VP advantage.
"""

import pytest

from bench_utils import print_figure, run_once, series

from repro.bench import experiments

#: Figure replays take seconds to minutes; the fast CI tier skips them.
pytestmark = pytest.mark.slow

SIZES = (500, 1_000, 1_500, 2_000)


def test_fig20_effect_of_data_size(benchmark, sweep_params):
    rows = run_once(
        benchmark, experiments.fig20_data_size, "SA", sweep_params, sizes=SIZES
    )
    print_figure("Figure 20 — effect of data size (SA)", rows)

    for index_name in ("Bx", "Bx(VP)", "TPR*", "TPR*(VP)"):
        io = series(rows, index_name, "num_objects")
        assert len(io) == len(SIZES)
        # Query cost grows with cardinality (compare smallest and largest).
        assert io[-1] >= io[0]

    bx = series(rows, "Bx", "num_objects")
    bx_vp = series(rows, "Bx(VP)", "num_objects")
    tpr = series(rows, "TPR*", "num_objects")
    tpr_vp = series(rows, "TPR*(VP)", "num_objects")
    # At the largest size the VP variants must hold their advantage.
    assert bx_vp[-1] <= bx[-1] * 1.05
    assert tpr_vp[-1] <= tpr[-1] * 1.05
