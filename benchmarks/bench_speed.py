"""Build/query wall-clock micro-harness tracking the perf trajectory.

Runs the figure-19/20-style build + replay pipeline at bench scale and
writes ``BENCH_speed.json`` with, per index, the wall-clock seconds of

* the **incremental** build (N root-to-leaf insertions — what the harness
  did before bulk loading existed),
* the **bulk** build (:func:`bulk_load` bottom-up packing), and
* the replay phase (average per-query / per-update milliseconds),

so future PRs can diff the numbers instead of guessing.  Run it directly::

    PYTHONPATH=src python benchmarks/bench_speed.py            # bench scale
    PYTHONPATH=src python benchmarks/bench_speed.py --quick    # CI smoke run

``test_speed_harness.py`` invokes the quick mode as part of the test run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List, Optional, Sequence

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

from repro.bench.harness import (  # noqa: E402
    STANDARD_INDEXES,
    ExperimentRunner,
    build_standard_indexes,
)
from repro.workload.generator import build_workload  # noqa: E402
from repro.workload.parameters import WorkloadParameters  # noqa: E402

#: Where the results land unless --output overrides it (the repo root).
DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_speed.json"
)

#: Bench scale: the figure-19/20 comparison settings of benchmarks/conftest.py.
BENCH_PARAMS = dict(num_objects=2_000, time_duration=120.0, num_queries=40)

#: Quick scale for the in-suite smoke invocation.
QUICK_PARAMS = dict(num_objects=400, time_duration=40.0, num_queries=10)


def measure(
    dataset: str = "SA",
    params: Optional[WorkloadParameters] = None,
    which: Sequence[str] = STANDARD_INDEXES,
) -> Dict[str, object]:
    """Build every index both ways and replay the event stream once."""
    if params is None:
        params = WorkloadParameters(**BENCH_PARAMS)
    workload = build_workload(dataset, params)

    results: Dict[str, Dict[str, float]] = {}

    # Incremental ("before") builds: one root-to-leaf insertion per object.
    for name, index in build_standard_indexes(workload, params, which=which).items():
        started = time.perf_counter()
        for obj in workload.initial_objects:
            index.insert(obj)
        results[name] = {"build_incremental_s": time.perf_counter() - started}

    # Bulk ("after") builds plus the full replay for query/update timings.
    runner = ExperimentRunner(workload)
    for name, index in build_standard_indexes(workload, params, which=which).items():
        metrics = runner.run(index, name=name)
        row = results[name]
        row["build_bulk_s"] = metrics.build_time
        row["build_speedup"] = (
            row["build_incremental_s"] / metrics.build_time
            if metrics.build_time > 0.0
            else float("inf")
        )
        row["query_ms"] = metrics.avg_query_time_ms
        row["update_ms"] = metrics.avg_update_time_ms
        row["query_io"] = metrics.avg_query_io
        row["update_io"] = metrics.avg_update_io
    return {
        "dataset": dataset,
        "params": {
            "num_objects": params.num_objects,
            "time_duration": params.time_duration,
            "num_queries": params.num_queries,
            "buffer_pages": params.buffer_pages,
            "page_size": params.page_size,
        },
        "indexes": {
            name: {key: round(value, 4) for key, value in row.items()}
            for name, row in results.items()
        },
    }


def run(
    quick: bool = False,
    output: str = DEFAULT_OUTPUT,
    dataset: str = "SA",
    which: Sequence[str] = STANDARD_INDEXES,
) -> Dict[str, object]:
    """Measure, write ``output``, and return the report."""
    overrides = QUICK_PARAMS if quick else BENCH_PARAMS
    params = WorkloadParameters(**overrides)
    started = time.perf_counter()
    report = measure(dataset=dataset, params=params, which=which)
    report["mode"] = "quick" if quick else "bench"
    report["total_wall_s"] = round(time.perf_counter() - started, 2)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small smoke-run scale")
    parser.add_argument("--dataset", default="SA", help="workload dataset (default SA)")
    parser.add_argument("--output", default=DEFAULT_OUTPUT, help="JSON output path")
    args = parser.parse_args(argv)
    report = run(quick=args.quick, output=args.output, dataset=args.dataset)
    for name, row in report["indexes"].items():
        print(
            f"{name:10s} build {row['build_incremental_s']:8.3f}s -> "
            f"{row['build_bulk_s']:7.3f}s ({row['build_speedup']:5.1f}x)  "
            f"query {row['query_ms']:7.3f}ms  update {row['update_ms']:7.3f}ms"
        )
    print(f"wrote {args.output} ({report['total_wall_s']}s total)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
