"""Build/replay wall-clock micro-harness tracking the perf trajectory.

Runs the figure-19/20-style build + replay pipeline at bench scale and
appends an entry to the ``BENCH_speed.json`` **history** with, per index,

* the **incremental** build (N root-to-leaf insertions — what the harness
  did before bulk loading existed) versus the **bulk** build
  (:func:`bulk_load` bottom-up packing), and
* the **per-event** replay (one ``update`` / ``range_query`` call per
  event) versus the **batched** replay (grouped same-window batches through
  ``update_batch`` / ``range_query_batch``), with per-operation
  milliseconds, physical I/O and the derived speedups side by side.

Earlier runs are retained in the history list so PR-over-PR regressions are
visible instead of being overwritten.  Run it directly::

    PYTHONPATH=src python benchmarks/bench_speed.py            # bench scale
    PYTHONPATH=src python benchmarks/bench_speed.py --quick    # CI smoke run
    PYTHONPATH=src python benchmarks/bench_speed.py scale      # sharded serving
    PYTHONPATH=src python benchmarks/bench_speed.py scale --quick   # CI scale job
    PYTHONPATH=src python benchmarks/bench_speed.py serve --quick   # CI serve job

The non-default modes are subcommands sharing the common options
(``--quick``, ``--dataset``, ``--output``):

* ``scale`` replays the serving-layer workload (20k objects, 4 KB pages)
  through :class:`repro.serve.ShardedIndex` at several shard counts
  (``--shards 1,2,4``) and records per-shard-count ``update_ms`` /
  ``query_ms`` / ``knn_ms`` rows plus answers-match flags against the
  unsharded baseline row;
* ``faults`` kills 1 of 4 shards mid-stream and records recovery time
  and degraded-answer recall;
* ``persist`` measures the durable (file-backed checkpoint/WAL) store
  lifecycle: crash-simulated reopen, cold-vs-warm queries, clean reopen;
* ``serve`` runs the scale workload at serving buffer pressure under a
  chosen shard *executor* (``--executor process`` hosts every shard in
  its own worker process) and adds a ``latency`` section: per-op-type
  p50/p95/p99 from the open-loop Poisson driver in ``load_driver.py``.

The pre-subcommand flag spellings (``--scale``, ``--faults``,
``--persist``) are kept as hidden aliases.

``test_speed_harness.py`` invokes the quick mode as part of the test run
and asserts the two headline claims — bulk loading beats incremental
building, and batched replay does not lose to per-event replay.
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from typing import Dict, List, Optional, Sequence

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

from repro.bench.harness import (  # noqa: E402
    STANDARD_INDEXES,
    ExperimentRunner,
    build_standard_indexes,
    knn_queries_from_workload,
    run_knn,
)
from repro.bxtree.bx_tree import BxTree  # noqa: E402
from repro.objects.knn import AdaptiveRadius  # noqa: E402
from repro.serve import DurableStore, RetryPolicy, SupervisorConfig  # noqa: E402
from repro.storage import fault_wrap  # noqa: E402
from repro.storage.faults import FaultProfile  # noqa: E402
from repro.workload.events import UpdateEvent  # noqa: E402
from repro.workload.generator import build_workload  # noqa: E402
from repro.workload.parameters import WorkloadParameters  # noqa: E402

#: Where the results land unless --output overrides it (the repo root).
DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "BENCH_speed.json"
)

#: Bench scale: the figure-19/20 comparison settings of benchmarks/conftest.py.
BENCH_PARAMS = dict(num_objects=2_000, time_duration=120.0, num_queries=40)

#: Quick scale for the in-suite smoke invocation.
QUICK_PARAMS = dict(num_objects=400, time_duration=40.0, num_queries=10)

#: The serving-layer scale workload: an order of magnitude more objects
#: than the figure benchmarks, at the paper's 4 KB page and 50-page buffer
#: (per shard — the shared-nothing model gives every worker its own RAM).
SCALE_PARAMS = dict(
    num_objects=20_000,
    time_duration=60.0,
    num_queries=40,
    buffer_pages=50,
    page_size=4096,
)

#: Quick scale for the CI `scale` job's smoke run.
SCALE_QUICK_PARAMS = dict(
    num_objects=2_500,
    time_duration=30.0,
    num_queries=10,
    buffer_pages=50,
    page_size=4096,
)

#: Shard counts of the scale sweep (1 is the unsharded baseline row).
SCALE_SHARD_COUNTS = (1, 2, 4)

#: The serve mode: the scale workload at serving buffer pressure.  The
#: pool is sized so one box's RAM no longer holds the working set but a
#: quarter of it per shard does — a serving deployment shards precisely
#: at that point, and it is the regime where per-shard buffer pools
#: (N * buffer_pages pages over N-times-smaller trees) pay for the
#: per-request fan-out.
SERVE_PARAMS = dict(
    num_objects=20_000,
    time_duration=60.0,
    num_queries=40,
    buffer_pages=300,
    page_size=2048,
)

#: Quick scale for the CI `serve` job's smoke run (the ~120-page tree
#: thrashes a 40-page pool unsharded; a 4-shard slice fits).
SERVE_QUICK_PARAMS = dict(
    num_objects=2_500,
    time_duration=30.0,
    num_queries=30,
    buffer_pages=40,
    page_size=2048,
)

#: The serve device model: every physical page read pays an SSD-class
#: latency (injected by the storage layer's fault injector, which ships
#: into worker processes with the shard).  Without it a simulated read
#: costs only its decode CPU, which no real serving deployment enjoys;
#: with it, shards that fit their buffer pool skip the waits entirely
#: and worker processes overlap the ones that remain.
SERVE_READ_LATENCY_S = 150e-6

#: Shard counts of the serve sweep (1 is the unsharded baseline row).
SERVE_SHARD_COUNTS = (1, 2, 4)

#: Index families measured by the serve mode (the latency driver replays
#: the stream once per family and loop mode, so one representative).
#: TPR*, not Bx: a Bx kNN round pays a curve-interval decomposition per
#: shard whose cost does not shrink with shard size, so sharding cannot
#: help its kNN path on one box — TPR*'s traversal-bound kNN does shrink.
SERVE_INDEXES = ("TPR*",)

#: Default shard executor of the serve mode (the serving claim under
#: measurement is the process-per-shard deployment).
SERVE_EXECUTOR = "process"

#: Closed-loop client threads of the latency driver.
SERVE_CLIENTS = 2

#: Fault-injection run: kill 1 of 4 shards mid-stream, measure recovery
#: time and degraded-answer recall (see docs/robustness.md).
#: Rectangular queries wide enough that every query returns ids from
#: every shard — otherwise the degraded-recall metric is trivially 1.0.
FAULT_PARAMS = dict(
    num_objects=5_000,
    time_duration=60.0,
    num_queries=40,
    buffer_pages=50,
    page_size=4096,
    rectangular_queries=True,
    rectangle_side=10_000.0,
)

#: Quick scale for the CI `chaos` job's fault-injection smoke run.
FAULT_QUICK_PARAMS = dict(
    num_objects=800,
    time_duration=30.0,
    num_queries=10,
    buffer_pages=10,
    page_size=1024,
    rectangular_queries=True,
    rectangle_side=15_000.0,
)

#: Shard count and victim of the fault-injection run.
FAULT_SHARDS = 4
FAULT_KILLED_SHARD = 2

#: Persistence run: durable (file-backed, checkpoint/WAL) serving store.
PERSIST_PARAMS = dict(
    num_objects=2_000,
    time_duration=60.0,
    num_queries=20,
    buffer_pages=50,
    page_size=4096,
)

#: Quick scale for the CI `durability` job's smoke run.
PERSIST_QUICK_PARAMS = dict(
    num_objects=400,
    time_duration=30.0,
    num_queries=10,
    buffer_pages=20,
    page_size=1024,
)

#: Shard count and index families of the persistence run (durability
#: currently covers the picklable families; Bx is the representative).
PERSIST_SHARDS = 2
PERSIST_INDEXES = ("Bx",)

#: Index families measured by the fault-injection run.
FAULT_INDEXES = ("Bx",)

#: HTAP (mixed-workload) run: one updater thread streams update batches
#: while query threads answer epoch-pinned range/kNN batches, and every
#: answer is checked bit for bit against the consistency oracle's
#: quiescent twin (docs/htap.md).
HTAP_PARAMS = dict(
    num_objects=10_000,
    time_duration=60.0,
    num_queries=40,
    buffer_pages=50,
    page_size=4096,
)

#: Quick scale for the CI `htap` job's smoke run.
HTAP_QUICK_PARAMS = dict(
    num_objects=1_500,
    time_duration=30.0,
    num_queries=10,
    buffer_pages=50,
    page_size=4096,
)

#: Shard count, executor, query threads and families of the HTAP run.
#: The thread executor is the default: the consistency claim is about
#: concurrent readers, which need a parallel backend to contend at all.
HTAP_SHARDS = 4
HTAP_EXECUTOR = "thread"
HTAP_QUERY_CLIENTS = 2
HTAP_INDEXES = ("Bx", "TPR*")

#: Index families measured by the scale sweep: one representative per
#: family keeps the pure-Python replay tractable at 20k objects.
SCALE_INDEXES = ("Bx", "TPR*")

#: Key-store backends of the `backend` comparison mode; the paged B+-tree
#: row is measured first and is the answers baseline the flat rows are
#: pinned against (see docs/backends.md).
BACKENDS = ("btree", "flat")

#: Index families of the backend comparison: the Bx-tree is the family
#: with a pluggable 1-D key store (the TPR family has none).
BACKEND_INDEXES = ("Bx",)

#: Probes per kNN batch (the concurrent-users model of the kNN replay).
KNN_BATCH_SIZE = 10

#: Repetitions of the (read-only) kNN replay; the fastest rep per mode is
#: recorded.  A replay is only a few hundred milliseconds of wall-clock, so
#: scheduler noise would otherwise dominate the per-probe figure.
KNN_REPS = 3


def measure_knn(index, probes, space):
    """Per-event versus batched kNN replay on one (already replayed) index.

    The two modes alternate rep by rep on the same index, so both sample the
    same buffer state and the same few hundred milliseconds of machine load
    — measuring them in separate phases made the ratio hostage to load
    drift between the phases.  The fastest rep per mode is kept; answers
    are asserted identical across modes and reps.
    """
    per_event = []
    batched = []
    for _ in range(KNN_REPS):
        per_event.append(run_knn(index, probes, space=space, batch=False))
        batched.append(
            run_knn(
                index,
                probes,
                space=space,
                batch=True,
                batch_size=KNN_BATCH_SIZE,
                radius_state=AdaptiveRadius(),
            )
        )
    best_pe = min(per_event, key=lambda metrics: metrics.avg_time_ms)
    best_bat = min(batched, key=lambda metrics: metrics.avg_time_ms)
    results_match = all(m.results == per_event[0].results for m in per_event + batched)
    return best_pe, best_bat, results_match


def measure(
    dataset: str = "SA",
    params: Optional[WorkloadParameters] = None,
    which: Sequence[str] = STANDARD_INDEXES,
) -> Dict[str, object]:
    """Build every index both ways and replay the event stream both ways."""
    if params is None:
        params = WorkloadParameters(**BENCH_PARAMS)
    workload = build_workload(dataset, params)

    # Warm the process-wide Hilbert encode table so its one-time build cost
    # does not land inside whichever replay happens to run first.
    import numpy as np

    from repro.bxtree.bx_tree import DEFAULT_CURVE_ORDER
    from repro.bxtree.spacefill import HilbertCurve

    HilbertCurve(DEFAULT_CURVE_ORDER).encode_many(
        np.zeros(1, dtype=np.int64), np.zeros(1, dtype=np.int64)
    )

    results: Dict[str, Dict[str, float]] = {}

    # Incremental ("before") builds: one root-to-leaf insertion per object.
    for name, index in build_standard_indexes(workload, params, which=which).items():
        started = time.perf_counter()
        for obj in workload.initial_objects:
            index.insert(obj)
        results[name] = {"build_incremental_s": time.perf_counter() - started}

    # The kNN replay probes one kNN query per range-query event.
    knn_probes = knn_queries_from_workload(workload)

    # Per-event replay: the pre-batching execution model.
    per_event = ExperimentRunner(workload, batch=False)
    for name, index in build_standard_indexes(workload, params, which=which).items():
        metrics = per_event.run(index, name=name)
        row = results[name]
        row["per_event_query_ms"] = metrics.avg_query_time_ms
        row["per_event_update_ms"] = metrics.avg_update_time_ms
        row["per_event_query_io"] = metrics.avg_query_io
        row["per_event_update_io"] = metrics.avg_update_io
        row["per_event_update_nodes"] = metrics.avg_update_node_accesses
        row["per_event_results"] = metrics.results_returned

    # Batched replay (grouped batches through the batch execution path),
    # which also provides the bulk-build timing.
    batched = ExperimentRunner(workload, batch=True)
    for name, index in build_standard_indexes(workload, params, which=which).items():
        metrics = batched.run(index, name=name)
        row = results[name]
        row["build_bulk_s"] = metrics.build_time
        row["build_speedup"] = (
            row["build_incremental_s"] / metrics.build_time
            if metrics.build_time > 0.0
            else float("inf")
        )
        row["query_ms"] = metrics.avg_query_time_ms
        row["update_ms"] = metrics.avg_update_time_ms
        row["query_io"] = metrics.avg_query_io
        row["update_io"] = metrics.avg_update_io
        row["update_nodes"] = metrics.avg_update_node_accesses
        row["results"] = metrics.results_returned
        row["update_speedup"] = (
            row["per_event_update_ms"] / metrics.avg_update_time_ms
            if metrics.avg_update_time_ms > 0.0
            else float("inf")
        )
        row["query_speedup"] = (
            row["per_event_query_ms"] / metrics.avg_query_time_ms
            if metrics.avg_query_time_ms > 0.0
            else float("inf")
        )
        row["results_match"] = float(row["results"] == row["per_event_results"])
        row["update_hit_ratio"] = metrics.update_buffer_hit_ratio
        row["query_hit_ratio"] = metrics.query_buffer_hit_ratio
        # kNN replay on the replayed index: per-probe versus batched
        # (shared expanding-range rounds, adaptive initial radii seeded
        # batch to batch), alternating rep by rep so both modes sample the
        # same machine-load window.
        knn_pe, knn_bat, knn_match = measure_knn(index, knn_probes, params.space)
        row["per_event_knn_ms"] = knn_pe.avg_time_ms
        row["per_event_knn_io"] = knn_pe.avg_io
        row["knn_ms"] = knn_bat.avg_time_ms
        row["knn_io"] = knn_bat.avg_io
        row["knn_speedup"] = (
            knn_pe.avg_time_ms / knn_bat.avg_time_ms
            if knn_bat.avg_time_ms > 0.0
            else float("inf")
        )
        row["knn_results_match"] = float(knn_match)
    return {
        "dataset": dataset,
        "params": {
            "num_objects": params.num_objects,
            "time_duration": params.time_duration,
            "num_queries": params.num_queries,
            "buffer_pages": params.buffer_pages,
            "page_size": params.page_size,
        },
        "indexes": {
            name: {key: round(value, 4) for key, value in row.items()}
            for name, row in results.items()
        },
    }


def measure_packing(
    params: Optional[WorkloadParameters] = None,
    datasets: Sequence[str] = ("SA", "CH"),
    which: Sequence[str] = ("TPR*", "TPR*(VP)"),
) -> Dict[str, object]:
    """Compare bulk-packing strategies on replayed workloads.

    For every dataset and index, the tree is bulk-built once per strategy
    (midpoint STR versus velocity-binned STR) and the full event stream is
    replayed on top, so the numbers reflect packing quality *under churn* —
    the regime ROADMAP.md flagged as the hard one for velocity-aware
    packing — not just the freshly built tree.
    """
    if params is None:
        params = WorkloadParameters(**BENCH_PARAMS)
    report: Dict[str, object] = {}
    for dataset in datasets:
        workload = build_workload(dataset, params)
        per_dataset: Dict[str, Dict[str, Dict[str, float]]] = {}
        for strategy in ("midpoint_str", "velocity_str"):
            runner = ExperimentRunner(workload, bulk_strategy=strategy)
            for name, index in build_standard_indexes(workload, params, which=which).items():
                metrics = runner.run(index, name=name)
                per_dataset.setdefault(name, {})[strategy] = {
                    "build_s": round(metrics.build_time, 4),
                    "query_io": round(metrics.avg_query_io, 4),
                    "query_ms": round(metrics.avg_query_time_ms, 4),
                    "update_io": round(metrics.avg_update_io, 4),
                    "results": metrics.results_returned,
                }
        report[dataset] = per_dataset
    return report


def measure_scale(
    dataset: str = "SA",
    params: Optional[WorkloadParameters] = None,
    shard_counts: Sequence[int] = SCALE_SHARD_COUNTS,
    which: Sequence[str] = SCALE_INDEXES,
) -> Dict[str, object]:
    """Shard-count sweep of the serving layer on the scale workload.

    For every shard count, each index family is built sharded
    (``build_standard_indexes(shards=N)``; ``N == 1`` is the plain
    unsharded index), the full event stream is replayed through the batch
    surface, and the batched kNN replay runs on top.  Per-row equivalence
    flags compare every sharded row's answers against the unsharded
    baseline row: range answers via the total result count, kNN answers
    exactly (the serving layer's ``(distance, oid)`` merge must reproduce
    the unsharded ranking bit for bit).  The unsharded row *is* that
    baseline, so shard count 1 is always added to the sweep and the
    sweep runs in ascending order.
    """
    if params is None:
        params = WorkloadParameters(**SCALE_PARAMS)
    workload = build_workload(dataset, params)
    probes = knn_queries_from_workload(workload)
    shard_rows: Dict[str, Dict[str, Dict[str, float]]] = {}
    baselines: Dict[str, Dict[str, object]] = {}
    for count in sorted(set(shard_counts) | {1}):
        indexes = build_standard_indexes(workload, params, which=which, shards=count)
        runner = ExperimentRunner(workload, batch=True)
        for name, index in indexes.items():
            metrics = runner.run(index, name=name)
            knn = run_knn(
                index,
                probes,
                space=params.space,
                batch=True,
                batch_size=KNN_BATCH_SIZE,
                radius_state=AdaptiveRadius(),
            )
            row = {
                "build_s": metrics.build_time,
                "update_ms": metrics.avg_update_time_ms,
                "query_ms": metrics.avg_query_time_ms,
                "knn_ms": knn.avg_time_ms,
                "update_io": metrics.avg_update_io,
                "query_io": metrics.avg_query_io,
                "knn_io": knn.avg_io,
                "results": metrics.results_returned,
            }
            baseline = baselines.setdefault(
                name, {"results": metrics.results_returned, "knn": knn.results}
            )
            row["results_match"] = float(metrics.results_returned == baseline["results"])
            row["knn_results_match"] = float(knn.results == baseline["knn"])
            shard_rows.setdefault(str(count), {})[name] = {
                key: round(value, 4) for key, value in row.items()
            }
    return {
        "dataset": dataset,
        "params": {
            "num_objects": params.num_objects,
            "time_duration": params.time_duration,
            "num_queries": params.num_queries,
            "buffer_pages": params.buffer_pages,
            "page_size": params.page_size,
        },
        "shards": shard_rows,
    }


def measure_backend(
    dataset: str = "SA",
    params: Optional[WorkloadParameters] = None,
    backends: Sequence[str] = BACKENDS,
    which: Sequence[str] = BACKEND_INDEXES,
) -> Dict[str, object]:
    """Key-store backend comparison on the scale workload.

    Each index family is built once per backend
    (``build_standard_indexes(key_store=...)``), the full event stream is
    replayed through the batch surface, and the batched kNN replay runs
    on top — the same replay as :func:`measure_scale`, so the rows are
    comparable across modes.  The first backend's row (the paged B+-tree,
    the paper's I/O-model reference) is the answers baseline: every other
    backend must reproduce its range result count and its exact kNN
    ``(oid, distance)`` rankings (``results_match``/``knn_results_match``),
    and its rows carry ``update_speedup``/``query_speedup``/``knn_speedup``
    ratios against that baseline.  The flat backend does no paged I/O, so
    its io columns reading 0 is the expected shape, not a bug.
    """
    if params is None:
        params = WorkloadParameters(**SCALE_PARAMS)
    workload = build_workload(dataset, params)
    probes = knn_queries_from_workload(workload)
    backend_rows: Dict[str, Dict[str, Dict[str, float]]] = {}
    baselines: Dict[str, Dict[str, object]] = {}
    for backend in backends:
        indexes = build_standard_indexes(
            workload, params, which=which, key_store=backend
        )
        runner = ExperimentRunner(workload, batch=True)
        for name, index in indexes.items():
            metrics = runner.run(index, name=name)
            knn = run_knn(
                index,
                probes,
                space=params.space,
                batch=True,
                batch_size=KNN_BATCH_SIZE,
                radius_state=AdaptiveRadius(),
            )
            row = {
                "build_s": metrics.build_time,
                "update_ms": metrics.avg_update_time_ms,
                "query_ms": metrics.avg_query_time_ms,
                "knn_ms": knn.avg_time_ms,
                "update_io": metrics.avg_update_io,
                "query_io": metrics.avg_query_io,
                "knn_io": knn.avg_io,
                "results": metrics.results_returned,
            }
            baseline = baselines.setdefault(
                name,
                {
                    "results": metrics.results_returned,
                    "knn": knn.results,
                    "update_ms": metrics.avg_update_time_ms,
                    "query_ms": metrics.avg_query_time_ms,
                    "knn_ms": knn.avg_time_ms,
                },
            )
            row["results_match"] = float(metrics.results_returned == baseline["results"])
            row["knn_results_match"] = float(knn.results == baseline["knn"])
            for metric in ("update_ms", "query_ms", "knn_ms"):
                if row[metric] > 0:
                    row[metric.replace("_ms", "_speedup")] = (
                        baseline[metric] / row[metric]
                    )
            backend_rows.setdefault(backend, {})[name] = {
                key: round(value, 4) for key, value in row.items()
            }
    return {
        "dataset": dataset,
        "params": {
            "num_objects": params.num_objects,
            "time_duration": params.time_duration,
            "num_queries": params.num_queries,
            "buffer_pages": params.buffer_pages,
            "page_size": params.page_size,
        },
        "backend": backend_rows,
    }


def measure_serve(
    dataset: str = "SA",
    params: Optional[WorkloadParameters] = None,
    shard_counts: Sequence[int] = SERVE_SHARD_COUNTS,
    which: Sequence[str] = SERVE_INDEXES,
    executor: str = SERVE_EXECUTOR,
    workers: Optional[int] = None,
    clients: int = SERVE_CLIENTS,
    rate_ops_s: Optional[float] = None,
    read_latency_s: float = SERVE_READ_LATENCY_S,
) -> Dict[str, object]:
    """Shard-count sweep under a chosen executor, plus request latency.

    The sweep mirrors :func:`measure_scale` — batched replay and batched
    kNN per shard count, every row's answers checked against the
    unsharded (1-shard) baseline row — but the sharded rows run under
    ``executor`` (``process`` hosts every shard in a worker process;
    queries cross as one batched message per shard per call), and every
    instance (the unsharded baseline included) runs under the serve
    device model: each physical page read pays ``read_latency_s``.  The
    1-shard row is always the plain in-process index: it *is* the
    baseline the serving deployment is judged against.

    On top, ``load_driver.drive`` replays the mixed update/range/kNN
    request stream against a fresh index at the largest shard count:
    closed-loop saturation first, then open-loop Poisson arrivals at
    ~70% of it (or ``rate_ops_s``), recording per-op-type p50/p95/p99
    into the report's ``latency`` section.
    """
    import load_driver

    if params is None:
        params = WorkloadParameters(**SERVE_PARAMS)
    disk_profile = (
        FaultProfile(read_latency_s=read_latency_s) if read_latency_s > 0.0 else None
    )
    workload = build_workload(dataset, params)
    probes = knn_queries_from_workload(workload)
    counts = sorted(set(shard_counts) | {1})
    shard_rows: Dict[str, Dict[str, Dict[str, float]]] = {}
    baselines: Dict[str, Dict[str, object]] = {}
    for count in counts:
        indexes = build_standard_indexes(
            workload,
            params,
            which=which,
            shards=count,
            executor=executor if count > 1 else None,
            max_workers=workers,
            disk_profile=disk_profile,
        )
        runner = ExperimentRunner(workload, batch=True)
        for name, index in indexes.items():
            metrics = runner.run(index, name=name)
            knn = run_knn(
                index,
                probes,
                space=params.space,
                batch=True,
                batch_size=KNN_BATCH_SIZE,
                radius_state=AdaptiveRadius(),
            )
            row = {
                "build_s": metrics.build_time,
                "update_ms": metrics.avg_update_time_ms,
                "query_ms": metrics.avg_query_time_ms,
                "knn_ms": knn.avg_time_ms,
                "update_io": metrics.avg_update_io,
                "query_io": metrics.avg_query_io,
                "knn_io": knn.avg_io,
                "results": metrics.results_returned,
            }
            baseline = baselines.setdefault(
                name, {"results": metrics.results_returned, "knn": knn.results}
            )
            row["results_match"] = float(metrics.results_returned == baseline["results"])
            row["knn_results_match"] = float(knn.results == baseline["knn"])
            shard_rows.setdefault(str(count), {})[name] = {
                key: round(value, 4) for key, value in row.items()
            }
            if hasattr(index, "close"):
                index.close()

    # Request latency at the largest shard count under the executor.
    name = which[0]
    top = max(counts)

    def make_index():
        index = build_standard_indexes(
            workload,
            params,
            which=(name,),
            shards=top,
            executor=executor if top > 1 else None,
            max_workers=workers,
            disk_profile=disk_profile,
        )[name]
        index.bulk_load(workload.initial_objects)
        return index

    operations = load_driver.build_operations(workload, probes)
    latency = load_driver.drive(
        make_index,
        operations,
        clients=clients,
        rate_ops_s=rate_ops_s,
        space=params.space,
    )
    latency["index"] = name
    latency["shards"] = top
    latency["operations"] = len(operations)
    return {
        "dataset": dataset,
        "params": {
            "num_objects": params.num_objects,
            "time_duration": params.time_duration,
            "num_queries": params.num_queries,
            "buffer_pages": params.buffer_pages,
            "page_size": params.page_size,
            "executor": executor,
            "workers": workers,
            "read_latency_us": round(read_latency_s * 1e6, 1),
        },
        "serve": shard_rows,
        "latency": latency,
    }


def measure_htap(
    dataset: str = "SA",
    params: Optional[WorkloadParameters] = None,
    which: Sequence[str] = HTAP_INDEXES,
    shards: int = HTAP_SHARDS,
    executor: str = HTAP_EXECUTOR,
    query_clients: int = HTAP_QUERY_CLIENTS,
    seed: int = 0,
) -> Dict[str, object]:
    """Mixed update/query workload under epoch-pinned snapshot serving.

    For every index family a sharded index is bulk-loaded and then
    hammered by :func:`load_driver.run_htap`: one updater thread streams
    the workload's update batches flat out while ``query_clients``
    threads answer epoch-pinned range/kNN batches.  Every mutation and
    every answer is recorded into an :class:`~repro.serve.EpochOracle`,
    whose quiescent twin re-evaluates each answer at its pinned epoch —
    the row's ``answers_consistent`` flag is 1.0 only if every
    concurrent answer was bit-identical.  ``update_throughput_ops`` is
    the sustained update rate under that concurrent read load, and
    ``epoch_lag_max`` bounds how far behind the published epoch any
    pinned answer ran.
    """
    import load_driver

    from repro.serve import EpochOracle

    if params is None:
        params = WorkloadParameters(**HTAP_PARAMS)
    workload = build_workload(dataset, params)
    probes = knn_queries_from_workload(workload)
    batches = workload.grouped_events(window=1.0)
    update_batches = [
        [(event.old, event.new) for event in batch]
        for batch in batches
        if isinstance(batch[0], UpdateEvent)
    ]
    queries = [e.query for b in batches if not isinstance(b[0], UpdateEvent) for e in b]
    rows: Dict[str, Dict[str, object]] = {}
    for name in which:
        index = build_standard_indexes(
            workload, params, which=(name,), shards=shards, executor=executor
        )[name]
        oracle = EpochOracle(
            num_shards=shards, shard_factory=index.shard_factory, space=params.space
        )
        try:
            index.bulk_load(workload.initial_objects)
            oracle.record_mutation(
                index.epoch, "bulk_load", (workload.initial_objects, None)
            )
            report = load_driver.run_htap(
                index,
                oracle,
                update_batches,
                queries,
                probes,
                query_clients=query_clients,
                space=params.space,
                seed=seed,
            )
        finally:
            oracle.close()
            index.close()
        rows[name] = report
    return {
        "dataset": dataset,
        "params": {
            "num_objects": params.num_objects,
            "time_duration": params.time_duration,
            "num_queries": params.num_queries,
            "buffer_pages": params.buffer_pages,
            "page_size": params.page_size,
            "shards": shards,
            "executor": executor,
            "query_clients": query_clients,
            "seed": seed,
        },
        "htap": rows,
    }


def measure_faults(
    dataset: str = "SA",
    params: Optional[WorkloadParameters] = None,
    which: Sequence[str] = FAULT_INDEXES,
    shards: int = FAULT_SHARDS,
    killed_shard: int = FAULT_KILLED_SHARD,
) -> Dict[str, object]:
    """Kill one shard mid-stream; measure recovery and degraded answers.

    Two sharded indexes replay the same event stream in lockstep: a
    never-failed *reference* and a *faulted* twin whose shard
    ``killed_shard`` is killed (cold cache, kill switch) halfway through
    the update batches.  During the outage the faulted index answers the
    full query set with ``partial=True`` — the recorded *degraded recall*
    is the fraction of the reference's result ids (and of its kNN result
    pairs) the healthy shards still returned.  The second half of the
    stream flows into both; the first mutation routed to the dead shard
    triggers WAL-replay recovery (time recorded as ``recovery_ms``), and
    the run ends by asserting the recovered index's strict range and kNN
    answers match the reference's exactly (the ``post_recovery_*_match``
    flags).
    """
    if params is None:
        params = WorkloadParameters(**FAULT_PARAMS)
    workload = build_workload(dataset, params)
    probes = knn_queries_from_workload(workload)
    batches = workload.grouped_events(window=1.0)
    update_batches = [b for b in batches if isinstance(b[0], UpdateEvent)]
    queries = [e.query for b in batches if not isinstance(b[0], UpdateEvent) for e in b]
    supervisor = SupervisorConfig(retry=RetryPolicy(base_delay_s=0.001, max_delay_s=0.01))
    rows: Dict[str, Dict[str, float]] = {}
    for name in which:
        reference = build_standard_indexes(workload, params, which=(name,), shards=shards)[
            name
        ]
        faulted = build_standard_indexes(
            workload, params, which=(name,), shards=shards, supervisor=supervisor
        )[name]
        reference.bulk_load(workload.initial_objects)
        faulted.bulk_load(workload.initial_objects)
        mid = len(update_batches) // 2
        for batch in update_batches[:mid]:
            pairs = [(event.old, event.new) for event in batch]
            reference.update_batch(pairs)
            faulted.update_batch(pairs)

        # The outage: cold the victim's cache so queries must touch the
        # (now dead) disk, then throw the kill switch.
        injector = fault_wrap(faulted.shards[killed_shard].buffer)
        faulted.shards[killed_shard].buffer.clear()
        injector.kill()

        strict_mid = reference.range_query_batch(queries)
        started = time.perf_counter()
        degraded = faulted.range_query_batch(queries, partial=True)
        degraded_ms = (time.perf_counter() - started) * 1000.0
        expected_ids = sum(len(ids) for ids in strict_mid)
        returned_ids = sum(len(ids) for ids in degraded)
        recall_range = returned_ids / expected_ids if expected_ids else 1.0
        reference_knn = reference.knn_query_batch(probes)
        degraded_knn = faulted.knn_query_batch(probes, partial=True)
        expected_pairs = sum(len(answer) for answer in reference_knn)
        hit_pairs = sum(
            len(set(full) & set(part))
            for full, part in zip(reference_knn, degraded_knn)
        )
        recall_knn = hit_pairs / expected_pairs if expected_pairs else 1.0

        # Second half: the first mutation routed to the dead shard
        # triggers WAL-replay recovery automatically.
        for batch in update_batches[mid:]:
            pairs = [(event.old, event.new) for event in batch]
            reference.update_batch(pairs)
            faulted.update_batch(pairs)
        recovery_forced = 0.0
        if not faulted.recovery_events:
            faulted.recover_shard(killed_shard)
            recovery_forced = 1.0
        recovery = faulted.recovery_events[0]

        range_match = faulted.range_query_batch(queries) == reference.range_query_batch(
            queries
        )
        knn_match = faulted.knn_query_batch(probes) == reference.knn_query_batch(probes)
        rows[name] = {
            key: round(value, 4)
            for key, value in {
                "killed_shard": float(killed_shard),
                "recovery_ms": recovery["wall_s"] * 1000.0,
                "recovery_attempts": float(recovery["attempts"]),
                "recovery_forced": recovery_forced,
                "replayed_records": float(recovery["replayed_records"]),
                "degraded_query_ms": degraded_ms,
                "degraded_recall_range": recall_range,
                "degraded_recall_knn": recall_knn,
                "degraded_complete": float(degraded.complete),
                "post_recovery_results_match": float(range_match),
                "post_recovery_knn_match": float(knn_match),
            }.items()
        }
        reference.close()
        faulted.close()
    return {
        "dataset": dataset,
        "params": {
            "num_objects": params.num_objects,
            "time_duration": params.time_duration,
            "num_queries": params.num_queries,
            "buffer_pages": params.buffer_pages,
            "page_size": params.page_size,
        },
        "faults": rows,
    }


def measure_persistence(
    dataset: str = "SA",
    params: Optional[WorkloadParameters] = None,
    persist_dir: Optional[str] = None,
    which: Sequence[str] = PERSIST_INDEXES,
    shards: int = PERSIST_SHARDS,
) -> Dict[str, object]:
    """Durable-store lifecycle: build, checkpoint, crash, recover, reopen.

    For every index family a durable :class:`~repro.serve.DurableStore`
    is created under ``persist_dir``, bulk-loaded and checkpointed, then
    driven through the workload's update stream (every mutation lands in
    the per-shard durable WALs).  Three reopen scenarios are measured on
    top:

    * **crash-sim reopen** — the live process state is abandoned without
      a close (dirty buffer pages never reach the page file), and
      ``recovery_ms`` is the wall time of ``DurableStore.open()``:
      checkpoint-image restore plus WAL-tail replay (``wal_tail_records``
      is the bounded tail length).  The recovered answers are compared
      bit for bit against the live index's (the ``recovered_match_*``
      flags — 1.0 means identical range/kNN answers);
    * **cold queries** — the first post-recovery query batch runs on cold
      buffers against checksummed on-disk pages (``cold_query_ms`` versus
      the live index's ``warm_query_ms``);
    * **clean reopen** — after a proper ``close()`` (which checkpoints),
      ``cold_reopen_ms`` is the reopen wall time with an empty WAL
      (``clean_reopen_replayed`` stays 0.0).
    """
    if params is None:
        params = WorkloadParameters(**PERSIST_PARAMS)
    workload = build_workload(dataset, params)
    probes = knn_queries_from_workload(workload)
    batches = workload.grouped_events(window=1.0)
    update_batches = [b for b in batches if isinstance(b[0], UpdateEvent)]
    queries = [e.query for b in batches if not isinstance(b[0], UpdateEvent) for e in b]
    if persist_dir is None:
        persist_dir = tempfile.mkdtemp(prefix="repro_persist_")
    rows: Dict[str, Dict[str, float]] = {}
    for name in which:
        root = os.path.join(persist_dir, name.replace("*", "star").replace("(", "_").replace(")", ""))
        if os.path.exists(root):
            shutil.rmtree(root)

        def factory(buffer, params=params):
            return BxTree(
                buffer=buffer,
                space=params.space,
                max_update_interval=params.max_update_interval,
                page_size=params.page_size,
            )

        started = time.perf_counter()
        index = DurableStore(root).create(
            factory,
            num_shards=shards,
            name=name,
            space=params.space,
            buffer_pages=params.buffer_pages,
            max_workers=1,
        )
        index.bulk_load(workload.initial_objects)
        build_s = time.perf_counter() - started
        started = time.perf_counter()
        index.checkpoint()
        checkpoint_ms = (time.perf_counter() - started) * 1000.0
        num_updates = 0
        started = time.perf_counter()
        for batch in update_batches:
            pairs = [(event.old, event.new) for event in batch]
            index.update_batch(pairs)
            num_updates += len(pairs)
        update_ms = (time.perf_counter() - started) * 1000.0 / max(1, num_updates)
        started = time.perf_counter()
        warm_range = index.range_query_batch(queries)
        warm_query_ms = (time.perf_counter() - started) * 1000.0 / max(1, len(queries))
        warm_knn = index.knn_query_batch(probes)

        # Crash simulation: abandon the live index — no close, no final
        # checkpoint — and recover the store from disk alone.
        started = time.perf_counter()
        crashed = DurableStore(root)
        recovered = crashed.open(max_workers=1)
        recovery_ms = (time.perf_counter() - started) * 1000.0
        started = time.perf_counter()
        cold_range = recovered.range_query_batch(queries)
        cold_query_ms = (time.perf_counter() - started) * 1000.0 / max(1, len(queries))
        cold_knn = recovered.knn_query_batch(probes)
        recovered_match_range = float(cold_range == warm_range)
        recovered_match_knn = float(cold_knn == warm_knn)
        recovered.close()

        # Clean shutdown happened above: the reopen replays nothing.
        started = time.perf_counter()
        clean = DurableStore(root)
        reopened = clean.open(max_workers=1)
        cold_reopen_ms = (time.perf_counter() - started) * 1000.0
        clean_match_range = float(reopened.range_query_batch(queries) == warm_range)
        reopened.close()

        rows[name] = {
            key: round(value, 4)
            for key, value in {
                "build_s": build_s,
                "checkpoint_ms": checkpoint_ms,
                "update_ms": update_ms,
                "warm_query_ms": warm_query_ms,
                "recovery_ms": recovery_ms,
                "wal_tail_records": float(sum(crashed.replayed_on_open)),
                "cold_query_ms": cold_query_ms,
                "recovered_match_range": recovered_match_range,
                "recovered_match_knn": recovered_match_knn,
                "cold_reopen_ms": cold_reopen_ms,
                "clean_reopen_replayed": float(sum(clean.replayed_on_open)),
                "clean_match_range": clean_match_range,
            }.items()
        }
    return {
        "dataset": dataset,
        "params": {
            "num_objects": params.num_objects,
            "time_duration": params.time_duration,
            "num_queries": params.num_queries,
            "buffer_pages": params.buffer_pages,
            "page_size": params.page_size,
        },
        "persistence": rows,
    }


def load_history(path: str) -> List[Dict[str, object]]:
    """Existing run history at ``path`` (empty when absent).

    The pre-history format — a single snapshot dictionary — is migrated by
    treating it as the sole prior entry.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except (FileNotFoundError, json.JSONDecodeError):
        return []
    if isinstance(data, dict) and isinstance(data.get("history"), list):
        return data["history"]
    if isinstance(data, dict) and "indexes" in data:
        return [data]
    return []


def run(
    quick: bool = False,
    output: str = DEFAULT_OUTPUT,
    dataset: str = "SA",
    which: Sequence[str] = STANDARD_INDEXES,
    packing: bool = False,
    scale: bool = False,
    faults: bool = False,
    persist: bool = False,
    serve: bool = False,
    htap: bool = False,
    backend: bool = False,
    persist_dir: Optional[str] = None,
    shard_counts: Sequence[int] = SCALE_SHARD_COUNTS,
    executor: str = SERVE_EXECUTOR,
    workers: Optional[int] = None,
    clients: int = SERVE_CLIENTS,
    rate_ops_s: Optional[float] = None,
    seed: int = 0,
) -> Dict[str, object]:
    """Measure, append to the history at ``output``, and return the report.

    ``scale=True`` runs the serving-layer shard-count sweep
    (:func:`measure_scale`), ``faults=True`` the fault-injection run
    (:func:`measure_faults`), ``persist=True`` the durable-store
    lifecycle run (:func:`measure_persistence`), ``serve=True`` the
    executor-backed sweep plus the open-loop latency driver
    (:func:`measure_serve`), ``htap=True`` the mixed-workload
    snapshot-consistency run (:func:`measure_htap`), and ``backend=True``
    the key-store backend comparison (:func:`measure_backend`) instead of
    the standard build/replay comparison; ``quick`` selects the
    smoke-scale parameter set in every mode.
    """
    started = time.perf_counter()
    if htap:
        overrides = HTAP_QUICK_PARAMS if quick else HTAP_PARAMS
        params = WorkloadParameters(**overrides)
        report = measure_htap(
            dataset=dataset,
            params=params,
            executor=executor,
            query_clients=clients,
            seed=seed,
        )
        report["mode"] = "htap-quick" if quick else "htap"
    elif serve:
        overrides = SERVE_QUICK_PARAMS if quick else SERVE_PARAMS
        params = WorkloadParameters(**overrides)
        report = measure_serve(
            dataset=dataset,
            params=params,
            shard_counts=shard_counts,
            executor=executor,
            workers=workers,
            clients=clients,
            rate_ops_s=rate_ops_s,
        )
        report["mode"] = "serve-quick" if quick else "serve"
    elif persist:
        overrides = PERSIST_QUICK_PARAMS if quick else PERSIST_PARAMS
        params = WorkloadParameters(**overrides)
        report = measure_persistence(
            dataset=dataset, params=params, persist_dir=persist_dir
        )
        report["mode"] = "persist-quick" if quick else "persist"
    elif faults:
        overrides = FAULT_QUICK_PARAMS if quick else FAULT_PARAMS
        params = WorkloadParameters(**overrides)
        report = measure_faults(dataset=dataset, params=params)
        report["mode"] = "faults-quick" if quick else "faults"
    elif backend:
        overrides = SCALE_QUICK_PARAMS if quick else SCALE_PARAMS
        params = WorkloadParameters(**overrides)
        report = measure_backend(dataset=dataset, params=params)
        report["mode"] = "backend-quick" if quick else "backend"
    elif scale:
        overrides = SCALE_QUICK_PARAMS if quick else SCALE_PARAMS
        params = WorkloadParameters(**overrides)
        report = measure_scale(dataset=dataset, params=params, shard_counts=shard_counts)
        report["mode"] = "scale-quick" if quick else "scale"
    else:
        overrides = QUICK_PARAMS if quick else BENCH_PARAMS
        params = WorkloadParameters(**overrides)
        report = measure(dataset=dataset, params=params, which=which)
        if packing:
            report["packing"] = measure_packing(params=params)
        report["mode"] = "quick" if quick else "bench"
    report["total_wall_s"] = round(time.perf_counter() - started, 2)
    history = load_history(output)
    history.append(report)
    with open(output, "w", encoding="utf-8") as handle:
        json.dump({"history": history}, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return report


def _build_parser() -> argparse.ArgumentParser:
    """The subcommand CLI (`scale`/`faults`/`persist`/`serve`).

    The common options live on a shared parent parser so they work both
    before and after the subcommand; their parent-parser defaults are
    ``argparse.SUPPRESS`` because a subparser's defaults would otherwise
    overwrite values already parsed at the top level (``--quick serve``
    must mean the same as ``serve --quick``).  The pre-subcommand mode
    flags (``--scale``/``--faults``/``--persist``) stay as hidden
    aliases, as do the top-level spellings of the per-mode options.
    """
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--quick",
        action="store_true",
        default=argparse.SUPPRESS,
        help="small smoke-run scale",
    )
    common.add_argument(
        "--dataset", default=argparse.SUPPRESS, help="workload dataset (default SA)"
    )
    common.add_argument(
        "--output", default=argparse.SUPPRESS, help="JSON output path"
    )

    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0], parents=[common]
    )
    parser.set_defaults(mode=None)
    parser.add_argument(
        "--packing",
        action="store_true",
        help="also compare bulk-packing strategies (midpoint vs velocity STR) "
        "on replayed SA/CH workloads (default mode only)",
    )
    # Hidden aliases: the pre-subcommand spellings keep working.
    parser.add_argument("--scale", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--faults", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--persist", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--shards", default=argparse.SUPPRESS, help=argparse.SUPPRESS)
    parser.add_argument(
        "--persist-dir", default=argparse.SUPPRESS, help=argparse.SUPPRESS
    )

    subparsers = parser.add_subparsers(
        dest="mode", metavar="{scale,faults,persist,serve,htap,backend}"
    )
    shards_help = (
        "comma-separated shard counts; the unsharded baseline (1) is "
        "always included (default %(default)s)"
    )
    scale = subparsers.add_parser(
        "scale",
        parents=[common],
        help="serving-layer shard-count sweep "
        f"({SCALE_PARAMS['num_objects']} objects)",
    )
    scale.add_argument(
        "--shards",
        default=",".join(str(count) for count in SCALE_SHARD_COUNTS),
        help=shards_help,
    )
    subparsers.add_parser(
        "faults",
        parents=[common],
        help=f"kill 1 of {FAULT_SHARDS} shards mid-stream; record recovery "
        "time and degraded-answer recall",
    )
    persist = subparsers.add_parser(
        "persist",
        parents=[common],
        help="durable-store lifecycle: checkpoint/WAL store, crash-simulated "
        "reopen, cold-vs-warm queries, clean reopen",
    )
    persist.add_argument(
        "--persist-dir",
        default=None,
        help="directory for the store files (default: a fresh temp "
        "directory); kept on disk after the run for inspection",
    )
    serve = subparsers.add_parser(
        "serve",
        parents=[common],
        help="executor-backed shard sweep plus the open-loop latency driver "
        f"({SERVE_PARAMS['num_objects']} objects at serving buffer pressure)",
    )
    serve.add_argument(
        "--shards",
        default=",".join(str(count) for count in SERVE_SHARD_COUNTS),
        help=shards_help,
    )
    serve.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default=SERVE_EXECUTOR,
        help="shard executor backend (default %(default)s)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="fan-out width per call (default: one per shard)",
    )
    serve.add_argument(
        "--clients",
        type=int,
        default=SERVE_CLIENTS,
        help="closed-loop client threads of the latency driver "
        "(default %(default)s)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open-loop arrival rate in ops/s (default: 70%% of the "
        "measured closed-loop throughput)",
    )
    htap = subparsers.add_parser(
        "htap",
        parents=[common],
        help="mixed-workload snapshot-consistency run: stream update "
        "batches while epoch-pinned queries run concurrently, every "
        "answer checked against the consistency oracle",
    )
    htap.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default=HTAP_EXECUTOR,
        help="shard executor backend (default %(default)s)",
    )
    htap.add_argument(
        "--clients",
        type=int,
        default=HTAP_QUERY_CLIENTS,
        help="concurrent query threads (default %(default)s)",
    )
    htap.add_argument(
        "--seed",
        type=int,
        default=0,
        help="seed of the query threads' sampling (default %(default)s); "
        "the published stress matrix runs the seeds in "
        "load_driver.HTAP_SEEDS",
    )
    subparsers.add_parser(
        "backend",
        parents=[common],
        help="key-store backend comparison: the Bx replay under the paged "
        f"B+-tree vs the flat vectorized array "
        f"({SCALE_PARAMS['num_objects']} objects), answers pinned identical",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    mode = args.mode
    if mode is None:
        if getattr(args, "scale", False):
            mode = "scale"
        elif getattr(args, "faults", False):
            mode = "faults"
        elif getattr(args, "persist", False):
            mode = "persist"
    default_counts = SERVE_SHARD_COUNTS if mode == "serve" else SCALE_SHARD_COUNTS
    shards_spec = getattr(
        args, "shards", ",".join(str(count) for count in default_counts)
    )
    shard_counts = tuple(int(part) for part in shards_spec.split(",") if part)
    output = getattr(args, "output", DEFAULT_OUTPUT)
    report = run(
        quick=getattr(args, "quick", False),
        output=output,
        dataset=getattr(args, "dataset", "SA"),
        packing=getattr(args, "packing", False),
        scale=mode == "scale",
        faults=mode == "faults",
        persist=mode == "persist",
        serve=mode == "serve",
        htap=mode == "htap",
        backend=mode == "backend",
        persist_dir=getattr(args, "persist_dir", None),
        shard_counts=shard_counts,
        executor=getattr(
            args, "executor", HTAP_EXECUTOR if mode == "htap" else SERVE_EXECUTOR
        ),
        workers=getattr(args, "workers", None),
        clients=getattr(args, "clients", SERVE_CLIENTS),
        rate_ops_s=getattr(args, "rate", None),
        seed=getattr(args, "seed", 0),
    )
    for name, row in report.get("persistence", {}).items():
        print(
            f"persist {name:10s} recovery {row['recovery_ms']:8.2f}ms "
            f"({row['wal_tail_records']:.0f} WAL records)  "
            f"clean reopen {row['cold_reopen_ms']:8.2f}ms "
            f"({row['clean_reopen_replayed']:.0f} replayed)  "
            f"query warm {row['warm_query_ms']:7.3f} -> cold "
            f"{row['cold_query_ms']:7.3f}ms  "
            f"recovered match {row['recovered_match_range']:.0f}/"
            f"{row['recovered_match_knn']:.0f}"
        )
    for name, row in report.get("htap", {}).items():
        print(
            f"htap {name:10s} updates {row['update_throughput_ops']:9.1f} ops/s "
            f"({row['updates_applied']} over {row['wall_s']:.1f}s)  "
            f"epoch {row['final_epoch']} "
            f"lag mean {row['epoch_lag_mean']:.2f} max {row['epoch_lag_max']:.0f}  "
            f"answers {row['answers_checked']} "
            f"consistent {row['answers_consistent']:.0f}"
        )
    for name, row in report.get("faults", {}).items():
        print(
            f"faults {name:10s} recovery {row['recovery_ms']:8.2f}ms "
            f"({row['replayed_records']:.0f} records, "
            f"{row['recovery_attempts']:.0f} attempt(s))  "
            f"degraded recall range {row['degraded_recall_range']:.3f} / "
            f"knn {row['degraded_recall_knn']:.3f}  "
            f"post-recovery match {row['post_recovery_results_match']:.0f}/"
            f"{row['post_recovery_knn_match']:.0f}"
        )
    for count, rows in sorted(report.get("serve", {}).items(), key=lambda item: int(item[0])):
        for name, row in rows.items():
            print(
                f"serve shards={count} {name:6s} "
                f"update {row['update_ms']:7.4f}ms  "
                f"query {row['query_ms']:7.3f}ms  "
                f"knn {row['knn_ms']:7.3f}ms  "
                f"io(u/q/k) {row['update_io']:.1f}/{row['query_io']:.1f}/"
                f"{row['knn_io']:.1f}  "
                f"match {row['results_match']:.0f}/{row['knn_results_match']:.0f}"
            )
    latency = report.get("latency", {})
    for loop in ("closed", "open"):
        section = latency.get(loop)
        if not section:
            continue
        rate = f" @ {section['rate_ops_s']:.1f} ops/s" if "rate_ops_s" in section else ""
        print(
            f"latency {loop}{rate}: {section['throughput_ops']:.1f} ops/s "
            f"over {section['wall_s']:.1f}s"
        )
        for kind in ("update", "range", "knn"):
            row = section.get(kind)
            if not row:
                continue
            print(
                f"  {kind:6s} n={row['count']:<5d} "
                f"p50 {row['p50_ms']:8.3f}ms  p95 {row['p95_ms']:8.3f}ms  "
                f"p99 {row['p99_ms']:8.3f}ms  mean {row['mean_ms']:8.3f}ms"
            )
    for backend_name, rows in report.get("backend", {}).items():
        for name, row in rows.items():
            speedup = (
                f"  speedup(u/q/k) {row['update_speedup']:.2f}/"
                f"{row['query_speedup']:.2f}/{row['knn_speedup']:.2f}x"
                if "update_speedup" in row
                else ""
            )
            print(
                f"backend={backend_name:5s} {name:6s} "
                f"update {row['update_ms']:7.4f}ms  "
                f"query {row['query_ms']:7.3f}ms  "
                f"knn {row['knn_ms']:7.3f}ms  "
                f"io(u/q/k) {row['update_io']:.1f}/{row['query_io']:.1f}/"
                f"{row['knn_io']:.1f}  "
                f"match {row['results_match']:.0f}/{row['knn_results_match']:.0f}"
                f"{speedup}"
            )
    for count, rows in sorted(report.get("shards", {}).items(), key=lambda item: int(item[0])):
        for name, row in rows.items():
            print(
                f"shards={count} {name:10s} "
                f"update {row['update_ms']:7.4f}ms  "
                f"query {row['query_ms']:7.3f}ms  "
                f"knn {row['knn_ms']:7.3f}ms  "
                f"io(u/q/k) {row['update_io']:.1f}/{row['query_io']:.1f}/"
                f"{row['knn_io']:.1f}  "
                f"match {row['results_match']:.0f}/{row['knn_results_match']:.0f}"
            )
    for name, row in report.get("indexes", {}).items():
        print(
            f"{name:10s} build {row['build_incremental_s']:7.3f}s -> "
            f"{row['build_bulk_s']:6.3f}s ({row['build_speedup']:5.1f}x)  "
            f"update {row['per_event_update_ms']:7.4f} -> {row['update_ms']:7.4f}ms "
            f"({row['update_speedup']:4.2f}x)  "
            f"query {row['per_event_query_ms']:7.3f} -> {row['query_ms']:7.3f}ms "
            f"({row['query_speedup']:4.2f}x)  "
            f"knn {row['per_event_knn_ms']:7.3f} -> {row['knn_ms']:7.3f}ms "
            f"({row['knn_speedup']:4.2f}x)"
        )
    for dataset, indexes in report.get("packing", {}).items():
        for name, strategies in indexes.items():
            mid = strategies["midpoint_str"]
            vel = strategies["velocity_str"]
            print(
                f"packing {dataset} {name:10s} query_io "
                f"{mid['query_io']:6.2f} (midpoint) vs {vel['query_io']:6.2f} "
                f"(velocity)  update_io {mid['update_io']:5.2f} vs "
                f"{vel['update_io']:5.2f}"
            )
    print(f"wrote {output} ({report['total_wall_s']}s total)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
