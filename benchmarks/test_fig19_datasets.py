"""Figure 19: query and update cost of the four indexes across the data sets.

The paper's headline result: the VP variants consistently beat their
unpartitioned counterparts on the road-network data sets (largest gain on
the most velocity-skewed network, CH), while on the uniform data set the VP
technique brings no benefit (and may cost a little).
"""

import pytest

from bench_utils import by_index, print_figure, run_once

from repro.bench import experiments
from repro.workload.generator import DATASETS

#: Figure replays take seconds to minutes; the fast CI tier skips them.
pytestmark = pytest.mark.slow


def test_fig19_effect_of_datasets(benchmark, bench_params):
    rows = run_once(benchmark, experiments.fig19_datasets, tuple(DATASETS), bench_params)
    print_figure("Figure 19 — effect of varying data sets", rows)
    grouped = by_index(rows, sweep_key="dataset")

    # (a)/(b): on every road network the VP indexes answer queries with no
    # more I/O than the unpartitioned ones, and on the most skewed network
    # (CH) the improvement is substantial.
    for dataset in ("CH", "SA", "MEL", "NY"):
        assert grouped[("Bx(VP)", dataset)]["query_io"] <= grouped[("Bx", dataset)]["query_io"] * 1.10, dataset
        assert grouped[("TPR*(VP)", dataset)]["query_io"] <= grouped[("TPR*", dataset)]["query_io"] * 1.10, dataset

    ch_bx_gain = grouped[("Bx", "CH")]["query_io"] / max(grouped[("Bx(VP)", "CH")]["query_io"], 1e-9)
    ch_tpr_gain = grouped[("TPR*", "CH")]["query_io"] / max(grouped[("TPR*(VP)", "CH")]["query_io"], 1e-9)
    assert ch_bx_gain > 1.3
    assert ch_tpr_gain > 1.3

    # On uniform data there are no DVAs to exploit: the VP index must not be
    # dramatically better (its small overhead may even make it worse).
    uniform_gain = grouped[("Bx", "uniform")]["query_io"] / max(
        grouped[("Bx(VP)", "uniform")]["query_io"], 1e-9
    )
    assert uniform_gain < ch_bx_gain

    # Every index returns the same answers on the same workload.
    for dataset in DATASETS:
        counts = {grouped[(name, dataset)]["results"] for name in ("Bx", "Bx(VP)", "TPR*", "TPR*(VP)")}
        assert len(counts) == 1, f"result mismatch on {dataset}: {counts}"
