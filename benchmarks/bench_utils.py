"""Helpers shared by the per-figure benchmark modules."""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

from repro.bench.reporting import format_table  # noqa: E402


def run_once(benchmark, func, *args, **kwargs):
    """Run an experiment driver exactly once under pytest-benchmark timing.

    The experiment itself already averages over many queries and updates, so
    repeating it would only multiply the runtime without tightening the
    estimate.
    """
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def print_figure(title: str, rows) -> None:
    """Print a figure's table and persist it under ``benchmarks/results/``.

    pytest captures stdout of passing tests, so the persisted copy is what
    survives a quiet benchmark run; EXPERIMENTS.md points at these files.
    """
    table = format_table(rows, title=title)
    print()
    print(table)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    slug = (
        title.split("—")[0]
        .strip()
        .lower()
        .replace(" ", "_")
        .replace("/", "-")
    )
    with open(os.path.join(RESULTS_DIR, f"{slug}.txt"), "w", encoding="utf-8") as handle:
        handle.write(table)


def by_index(rows, sweep_key=None):
    """Group rows by index name (and optionally a sweep key) for assertions."""
    grouped = {}
    for row in rows:
        key = (row["index"], row[sweep_key]) if sweep_key else row["index"]
        grouped[key] = row
    return grouped


def series(rows, index_name, sweep_key, value_key="query_io"):
    """Extract one index's series over a swept parameter, sorted by the sweep value."""
    points = [
        (row[sweep_key], row[value_key]) for row in rows if row["index"] == index_name
    ]
    return [value for _, value in sorted(points)]
