"""Bench-smoke regression gate for CI.

Compares a fresh ``bench_speed.py`` report against the committed
``BENCH_speed.json`` history and fails (exit code 1) when a watched batched
metric regresses by more than the allowed fraction: the standard entries'
Bx ``update_ms`` / ``knn_ms``, plus — for serving-layer scale entries —
every ``(shard count, index)`` row's ``update_ms`` / ``knn_ms``, plus — for
serve entries — every row's batched per-op times (answers-match flags as
floors) and the ``latency`` section's per-op-type p95s (closed-loop
throughput as a floor), plus — for fault-injection entries —
``recovery_ms`` (latency, gated upward) and the degraded-answer recalls
(quality, gated as floors), plus — for HTAP mixed-workload entries — the
update throughput under concurrent readers and the consistency-oracle
verdict (floors) and the observed epoch lag (ceiling), plus — for
key-store backend entries — every (backend, index) row's batched per-op
times (with the bit-identity flags against the paged reference as
floors).  The baseline is the
most recent history entry with the *same* mode, dataset and workload
parameters — quick-mode smoke runs are never judged against full
bench-scale entries, whose absolute per-operation times differ by an order
of magnitude.  A section new to the fresh report (no counterpart in the
baseline entry) is skipped with a notice, never a crash.

Usage (what ci.yml runs)::

    python benchmarks/bench_speed.py --quick --output /tmp/bench_new.json
    python benchmarks/check_regression.py /tmp/bench_new.json \
        --history BENCH_speed.json --max-regression 0.25

A missing comparable baseline is reported and passes: the first run on a new
parameter set has nothing to regress against.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List, Optional

#: Metrics the gate enforces, per watched index (the headline batched-update
#: and batched-kNN claims).  A metric absent from the baseline entry is
#: skipped: history entries predating a metric have nothing to regress
#: against.
METRICS = ("update_ms", "knn_ms")

#: Latency metrics gated on fault-injection entries (higher = regression).
FAULT_METRICS = ("recovery_ms",)

#: Quality floors gated on fault-injection entries (lower = regression):
#: degraded-answer recall during the outage must not erode.
FAULT_FLOORS = ("degraded_recall_range", "degraded_recall_knn")

#: Latency metrics gated on durable-store persistence entries (higher =
#: regression): crash recovery and clean cold reopen must not slow down.
PERSIST_METRICS = ("recovery_ms", "cold_reopen_ms")

#: Correctness floors gated on persistence entries: the crash-recovered
#: index's range/kNN answers must stay bit-identical to the live ones
#: (these are 0/1 flags, so *any* mismatch erodes the floor and fails).
PERSIST_FLOORS = ("recovered_match_range", "recovered_match_knn")

#: Batched per-operation metrics gated on serve entries (higher =
#: regression), for every (shard count, index) row.
SERVE_METRICS = ("update_ms", "query_ms", "knn_ms")

#: Correctness floors gated on serve entries: every row's answers must
#: stay identical to the unsharded baseline row's (0/1 flags — *any*
#: mismatch erodes the floor and fails).
SERVE_FLOORS = ("results_match", "knn_results_match")

#: Latency-distribution metrics gated on the serve entries' ``latency``
#: section, per loop mode ("open"/"closed") and op type (higher =
#: regression).  p95 only: tail-of-tail percentiles at smoke scale are
#: scheduler noise, and the p50 is already covered by the serve rows'
#: batched per-op times.
LATENCY_METRICS = ("p95_ms",)

#: Loop modes of the latency section the gate walks.
LATENCY_LOOPS = ("closed", "open")

#: Op types of the latency section the gate walks.
LATENCY_KINDS = ("update", "range", "knn")

#: Throughput/correctness floors gated on HTAP (mixed-workload) entries
#: (lower = regression): the sustained update rate under concurrent
#: epoch-pinned readers, and the consistency oracle's verdict — a 0/1
#: flag, so a single inconsistent answer erodes the floor and fails.
HTAP_FLOORS = ("update_throughput_ops", "answers_consistent")

#: Lag ceiling gated on HTAP entries (higher = regression): how far
#: behind the published epoch pinned answers ran on average.  The
#: *mean* is gated, not the max — the max is a single scheduling
#: outlier away from tripling at smoke scale — with 1 epoch of absolute
#: slack on top of the fractional limit so a near-zero baseline (a
#: quiescent smoke run) does not turn one epoch of noise into a
#: failure.
HTAP_LAG_METRIC = "epoch_lag_mean"

#: Batched per-operation metrics gated on key-store backend entries
#: (higher = regression), for every (backend, index) row — this is what
#: keeps the flat backend's measured advantage from silently eroding.
BACKEND_METRICS = ("update_ms", "query_ms", "knn_ms")

#: Correctness floors gated on backend entries: every backend's answers
#: must stay bit-identical to the paged reference row's (0/1 flags — a
#: single mismatch erodes the floor and fails).
BACKEND_FLOORS = ("results_match", "knn_results_match")

#: Indexes the gate watches.
WATCHED_INDEXES = ("Bx",)

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_HISTORY = os.path.join(_REPO_ROOT, "BENCH_speed.json")


def _entries(path: str) -> List[Dict[str, object]]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if isinstance(data, dict) and isinstance(data.get("history"), list):
        return data["history"]
    if isinstance(data, dict) and "indexes" in data:
        return [data]
    raise SystemExit(f"{path}: not a bench_speed report or history")


def _comparable(entry: Dict[str, object], report: Dict[str, object]) -> bool:
    return (
        entry.get("mode") == report.get("mode")
        and entry.get("dataset") == report.get("dataset")
        and entry.get("params") == report.get("params")
    )


def find_baseline(
    history: List[Dict[str, object]], report: Dict[str, object]
) -> Optional[Dict[str, object]]:
    """Most recent history entry measured under the report's settings."""
    for entry in reversed(history):
        if _comparable(entry, report):
            return entry
    return None


def _check_row(
    label: str,
    new_row: Dict[str, object],
    old_row: Dict[str, object],
    max_regression: float,
    failures: List[str],
    metrics: tuple = METRICS,
) -> None:
    """Gate one (new, baseline) row pair on every watched metric."""
    for metric in metrics:
        if metric not in old_row:
            # Baselines predating the metric have nothing to regress
            # against; newer baselines re-arm the gate automatically.
            continue
        if metric not in new_row:
            # The baseline records the metric but the fresh report does
            # not: the harness stopped emitting it, which would silently
            # disarm the gate — fail loudly instead.
            failures.append(
                f"{label} {metric} missing from the fresh report (present "
                "in the baseline); the regression gate would be disarmed"
            )
            continue
        new_value = float(new_row[metric])
        old_value = float(old_row[metric])
        if old_value <= 0.0:
            continue
        regression = new_value / old_value - 1.0
        status = "ok" if regression <= max_regression else "REGRESSION"
        print(
            f"{label} {metric}: {old_value:.4f} -> {new_value:.4f} "
            f"({regression:+.1%}, limit +{max_regression:.0%}) {status}"
        )
        if regression > max_regression:
            failures.append(
                f"{label} batched {metric} regressed {regression:+.1%} "
                f"(limit +{max_regression:.0%})"
            )


def _check_floor(
    label: str,
    metric: str,
    new_row: Dict[str, object],
    old_row: Dict[str, object],
    max_regression: float,
    failures: List[str],
) -> None:
    """Gate a quality metric where *lower* values are the regression."""
    if metric not in old_row or metric not in new_row:
        return
    new_value = float(new_row[metric])
    old_value = float(old_row[metric])
    if old_value <= 0.0:
        return
    erosion = 1.0 - new_value / old_value
    status = "ok" if erosion <= max_regression else "REGRESSION"
    print(
        f"{label} {metric}: {old_value:.4f} -> {new_value:.4f} "
        f"({-erosion:+.1%}, floor -{max_regression:.0%}) {status}"
    )
    if erosion > max_regression:
        failures.append(
            f"{label} {metric} eroded {erosion:+.1%} (floor -{max_regression:.0%})"
        )


def _check_ceiling_with_slack(
    label: str,
    metric: str,
    new_row: Dict[str, object],
    old_row: Dict[str, object],
    max_regression: float,
    failures: List[str],
    slack: float = 1.0,
) -> None:
    """Gate an upward-bounded metric whose baseline may legitimately be 0.

    The allowed value is ``(1 + max_regression) * max(old, slack)``: the
    fractional band of :func:`_check_row` plus an absolute floor of
    ``slack`` so a zero/near-zero baseline (a quiescent smoke run that
    observed no lag) does not turn one unit of noise into a failure.
    """
    if metric not in old_row or metric not in new_row:
        return
    new_value = float(new_row[metric])
    old_value = float(old_row[metric])
    allowed = (1.0 + max_regression) * max(old_value, slack)
    status = "ok" if new_value <= allowed else "REGRESSION"
    print(
        f"{label} {metric}: {old_value:.4f} -> {new_value:.4f} "
        f"(ceiling {allowed:.4f}) {status}"
    )
    if new_value > allowed:
        failures.append(
            f"{label} {metric} rose to {new_value:.4f} "
            f"(ceiling {allowed:.4f} from baseline {old_value:.4f})"
        )


def _section_has_baseline(
    section: str, report: Dict[str, object], baseline: Dict[str, object]
) -> bool:
    """Whether a report section can be gated; prints a notice when not.

    A brand-new bench section (present in the fresh report, absent from
    every comparable baseline entry) has nothing to regress against — the
    gate skips it with a notice instead of crashing, and the next
    committed history entry arms it automatically.
    """
    if not report.get(section):
        return False
    if not baseline.get(section):
        print(
            f"notice: section {section!r} has no counterpart in the baseline "
            "entry; skipping its gate (it arms once this report is committed "
            "to the history)"
        )
        return False
    return True


def check(
    report: Dict[str, object],
    baseline: Optional[Dict[str, object]],
    max_regression: float,
) -> List[str]:
    """Regression messages (empty when the gate passes)."""
    if baseline is None:
        return []
    failures: List[str] = []
    if _section_has_baseline("indexes", report, baseline):
        for name in WATCHED_INDEXES:
            new_row = report.get("indexes", {}).get(name)
            old_row = baseline.get("indexes", {}).get(name)
            if not new_row or not old_row:
                continue
            _check_row(name, new_row, old_row, max_regression, failures)
    # Sharded scale entries: gate every (shard count, index) row present
    # in both the fresh report and the baseline.
    if _section_has_baseline("shards", report, baseline):
        new_shards = report.get("shards") or {}
    else:
        new_shards = {}
    old_shards = baseline.get("shards") or {}
    for count in sorted(set(new_shards) & set(old_shards), key=int):
        new_rows = new_shards[count]
        old_rows = old_shards[count]
        for name in sorted(set(new_rows) & set(old_rows)):
            _check_row(
                f"{name}[shards={count}]",
                new_rows[name],
                old_rows[name],
                max_regression,
                failures,
            )
    # Serve entries: every (shard count, index) row's batched per-op
    # times gated upward, answers-match flags gated as (0/1) floors.
    if _section_has_baseline("serve", report, baseline):
        new_serve = report.get("serve") or {}
        old_serve = baseline.get("serve") or {}
        for count in sorted(set(new_serve) & set(old_serve), key=int):
            new_rows = new_serve[count]
            old_rows = old_serve[count]
            for name in sorted(set(new_rows) & set(old_rows)):
                _check_row(
                    f"{name}[serve={count}]",
                    new_rows[name],
                    old_rows[name],
                    max_regression,
                    failures,
                    metrics=SERVE_METRICS,
                )
                for metric in SERVE_FLOORS:
                    _check_floor(
                        f"{name}[serve={count}]",
                        metric,
                        new_rows[name],
                        old_rows[name],
                        max_regression,
                        failures,
                    )
    # The serve latency section: per-loop, per-op-type p95 gated upward,
    # plus the closed-loop saturation throughput as a floor.
    if _section_has_baseline("latency", report, baseline):
        new_latency = report.get("latency") or {}
        old_latency = baseline.get("latency") or {}
        for loop in LATENCY_LOOPS:
            new_loop = new_latency.get(loop) or {}
            old_loop = old_latency.get(loop) or {}
            for kind in LATENCY_KINDS:
                if kind in new_loop and kind in old_loop:
                    _check_row(
                        f"latency[{loop}:{kind}]",
                        new_loop[kind],
                        old_loop[kind],
                        max_regression,
                        failures,
                        metrics=LATENCY_METRICS,
                    )
            if loop == "closed":
                _check_floor(
                    f"latency[{loop}]",
                    "throughput_ops",
                    new_loop,
                    old_loop,
                    max_regression,
                    failures,
                )
    # Key-store backend entries: every (backend, index) row's batched
    # per-op times gated upward, bit-identity flags gated as (0/1)
    # floors against the paged reference.
    if _section_has_baseline("backend", report, baseline):
        new_backend = report.get("backend") or {}
        old_backend = baseline.get("backend") or {}
        for store in sorted(set(new_backend) & set(old_backend)):
            new_rows = new_backend[store]
            old_rows = old_backend[store]
            for name in sorted(set(new_rows) & set(old_rows)):
                _check_row(
                    f"{name}[store={store}]",
                    new_rows[name],
                    old_rows[name],
                    max_regression,
                    failures,
                    metrics=BACKEND_METRICS,
                )
                for metric in BACKEND_FLOORS:
                    _check_floor(
                        f"{name}[store={store}]",
                        metric,
                        new_rows[name],
                        old_rows[name],
                        max_regression,
                        failures,
                    )
    # HTAP entries: update throughput under concurrent readers and the
    # oracle's consistency verdict gated as floors, the observed epoch
    # lag gated as a (slack-padded) ceiling.
    if _section_has_baseline("htap", report, baseline):
        new_htap = report.get("htap") or {}
        old_htap = baseline.get("htap") or {}
        for name in sorted(set(new_htap) & set(old_htap)):
            for metric in HTAP_FLOORS:
                _check_floor(
                    f"{name}[htap]",
                    metric,
                    new_htap[name],
                    old_htap[name],
                    max_regression,
                    failures,
                )
            _check_ceiling_with_slack(
                f"{name}[htap]",
                HTAP_LAG_METRIC,
                new_htap[name],
                old_htap[name],
                max_regression,
                failures,
            )
    # Fault-injection entries: recovery latency is gated like any other
    # latency; degraded-answer recall is gated as a floor.
    if _section_has_baseline("faults", report, baseline):
        new_faults = report.get("faults") or {}
        old_faults = baseline.get("faults") or {}
        for name in sorted(set(new_faults) & set(old_faults)):
            _check_row(
                f"{name}[faults]",
                new_faults[name],
                old_faults[name],
                max_regression,
                failures,
                metrics=FAULT_METRICS,
            )
            for metric in FAULT_FLOORS:
                _check_floor(
                    f"{name}[faults]",
                    metric,
                    new_faults[name],
                    old_faults[name],
                    max_regression,
                    failures,
                )
    # Durable-store persistence entries: recovery/reopen latency gated
    # upward, recovered-answer equality gated as a (0/1) floor.
    if _section_has_baseline("persistence", report, baseline):
        new_persist = report.get("persistence") or {}
        old_persist = baseline.get("persistence") or {}
        for name in sorted(set(new_persist) & set(old_persist)):
            _check_row(
                f"{name}[persist]",
                new_persist[name],
                old_persist[name],
                max_regression,
                failures,
                metrics=PERSIST_METRICS,
            )
            for metric in PERSIST_FLOORS:
                _check_floor(
                    f"{name}[persist]",
                    metric,
                    new_persist[name],
                    old_persist[name],
                    max_regression,
                    failures,
                )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="fresh bench_speed JSON (file or history)")
    parser.add_argument("--history", default=DEFAULT_HISTORY, help="baseline history")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional slowdown (default 0.25 = +25%%)",
    )
    args = parser.parse_args(argv)
    report = _entries(args.report)[-1]
    baseline = find_baseline(_entries(args.history), report)
    if baseline is None:
        print(f"no comparable baseline (same mode/dataset/params) in {args.history}; passing")
        return 0
    failures = check(report, baseline, args.max_regression)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
