"""Figure 18: overhead of the velocity analyzer.

The paper reports 50-97 ms to analyze a 10,000-point velocity sample across
the five data sets.  The benchmark measures the analyzer on every data set
and asserts the overhead stays small in absolute terms (well under a second
even in pure Python) and roughly uniform across data sets.
"""

import pytest

from bench_utils import print_figure, run_once

from repro.bench import experiments
from repro.workload.generator import DATASETS

#: Figure replays take seconds to minutes; the fast CI tier skips them.
pytestmark = pytest.mark.slow


def test_fig18_velocity_analyzer_overhead(benchmark, bench_params):
    rows = run_once(
        benchmark,
        experiments.fig18_analyzer_overhead,
        tuple(DATASETS),
        bench_params,
        repetitions=3,
    )
    print_figure("Figure 18 — velocity analyzer overhead", rows)
    assert [row["dataset"] for row in rows] == DATASETS
    times = [row["analyzer_ms"] for row in rows]
    assert all(t > 0.0 for t in times)
    # The analyzer is a preprocessing step: it must stay cheap (the paper
    # reports < 100 ms; allow generous slack for the Python clustering loop).
    assert max(times) < 5_000.0
