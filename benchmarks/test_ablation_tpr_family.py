"""Ablation: TPR-tree versus TPR*-tree versus TPR*(VP)-tree.

The paper builds on the TPR*-tree because its cost-model-driven insertion
already groups objects by direction *locally*; the VP technique adds the
*global* grouping.  This ablation quantifies both steps on the skewed CH
workload: the original TPR-tree (R*-style heuristics on projected MBRs), the
TPR*-tree (sweeping-region heuristics), and the velocity-partitioned
TPR*-tree.
"""

import pytest

from bench_utils import print_figure, run_once

from repro.bench.harness import ExperimentRunner, build_standard_indexes
from repro.workload.generator import build_workload

#: Figure replays take seconds to minutes; the fast CI tier skips them.
pytestmark = pytest.mark.slow


def _run(params):
    workload = build_workload("CH", params)
    indexes = build_standard_indexes(workload, params, which=("TPR", "TPR*", "TPR*(VP)"))
    # The ablation compares the trees' own insertion heuristics, so the
    # indexes are insertion-built (the paper's measurement protocol).
    runner = ExperimentRunner(workload, bulk_build=False)
    return [runner.run(index, name=name).as_row() for name, index in indexes.items()]


def test_ablation_tpr_family(benchmark, sweep_params):
    rows = run_once(benchmark, _run, sweep_params)
    print_figure("Ablation — TPR-tree family on CH", rows)
    by_name = {row["index"]: row for row in rows}

    # All three return identical answers.
    assert len({row["results"] for row in rows}) == 1

    # Each refinement step must not hurt query cost on skewed data, and the
    # full pipeline (TPR* + VP) must clearly beat the original TPR-tree.
    assert by_name["TPR*"]["query_io"] <= by_name["TPR"]["query_io"] * 1.15
    assert by_name["TPR*(VP)"]["query_io"] <= by_name["TPR*"]["query_io"] * 1.05
    assert by_name["TPR*(VP)"]["query_io"] < by_name["TPR"]["query_io"]
