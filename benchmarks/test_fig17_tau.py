"""Figure 17: automatically chosen τ versus a sweep of fixed τ thresholds.

The paper shows (on CH and SA) that the τ picked by the Section 5.2
algorithm gives query I/O close to the best fixed τ of a manual sweep.  The
benchmark runs the same sweep and asserts the automatic τ is within a small
factor of the best fixed setting for both VP indexes.
"""

import pytest

from bench_utils import print_figure, run_once

from repro.bench import experiments

#: Figure replays take seconds to minutes; the fast CI tier skips them.
pytestmark = pytest.mark.slow

#: Allowed slack between the automatic τ and the best fixed τ of the sweep.
TOLERANCE = 1.35


@pytest.mark.parametrize("dataset", ["CH", "SA"])
def test_fig17_tau_threshold(benchmark, sweep_params, dataset):
    rows = run_once(
        benchmark,
        experiments.fig17_tau_threshold,
        dataset,
        sweep_params,
        fixed_taus=(0.0, 2.0, 5.0, 10.0, 20.0, 40.0, 60.0),
    )
    print_figure(f"Figure 17 — τ threshold sweep on {dataset}", rows)
    for index_name in ("Bx(VP)", "TPR*(VP)"):
        auto = [r for r in rows if r["index"] == index_name and r["mode"] == "auto"]
        fixed = [r for r in rows if r["index"] == index_name and r["mode"] == "fixed"]
        assert auto and fixed
        best_fixed = min(r["query_io"] for r in fixed)
        auto_io = auto[0]["query_io"]
        assert auto_io <= best_fixed * TOLERANCE + 1.0, (
            f"{index_name} on {dataset}: automatic τ gives {auto_io} I/O, "
            f"best fixed τ gives {best_fixed}"
        )
