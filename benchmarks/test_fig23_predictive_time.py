"""Figure 23: effect of the query predictive time (circular ranges).

Querying further into the future expands the search space; the paper shows
the Bx-tree degrades fastest and the VP variants degrade most slowly, with
the VP advantage growing with the predictive time.
"""

import pytest

from bench_utils import print_figure, run_once, series

from repro.bench import experiments

#: Figure replays take seconds to minutes; the fast CI tier skips them.
pytestmark = pytest.mark.slow

TIMES = (20.0, 60.0, 90.0, 120.0)


def test_fig23_effect_of_predictive_time(benchmark, sweep_params):
    rows = run_once(
        benchmark, experiments.fig23_predictive_time, "SA", sweep_params, times=TIMES
    )
    print_figure("Figure 23 — effect of query predictive time (SA)", rows)

    bx = series(rows, "Bx", "predictive_time")
    bx_vp = series(rows, "Bx(VP)", "predictive_time")
    tpr = series(rows, "TPR*", "predictive_time")
    tpr_vp = series(rows, "TPR*(VP)", "predictive_time")

    # Looking further ahead costs more for the unpartitioned indexes.
    assert bx[-1] > bx[0]
    assert tpr[-1] >= tpr[0] * 0.9

    # At the longest predictive time the VP variants win.
    assert bx_vp[-1] < bx[-1]
    assert tpr_vp[-1] <= tpr[-1]

    # And the VP curves grow more slowly than the unpartitioned ones.
    assert (bx_vp[-1] - bx_vp[0]) <= (bx[-1] - bx[0])
