"""Shared configuration for the per-figure benchmarks.

Every benchmark module reproduces one figure of the paper's evaluation
(Section 6): it runs the corresponding experiment driver from
:mod:`repro.bench.experiments` exactly once (``benchmark.pedantic`` with one
round — the experiment itself already averages over many queries/updates),
prints the figure's table, and asserts the qualitative shape the paper
reports.

Scale: the drivers run with scaled-down parameters (see EXPERIMENTS.md).
Set ``REPRO_FULL_SCALE=1`` to run closer to the paper's Table 1 settings —
expect hours of runtime under pure Python.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # pragma: no cover - environment dependent
    sys.path.insert(0, _SRC)

from repro.workload.parameters import PAPER_SPACE, WorkloadParameters

FULL_SCALE = os.environ.get("REPRO_FULL_SCALE", "") not in ("", "0")


def pytest_configure(config) -> None:
    # Mirror of the pyproject registration so `pytest benchmarks` works in
    # contexts that do not read the project ini; the figure modules mark
    # themselves slow and the fast CI tier deselects them with -m "not slow".
    config.addinivalue_line(
        "markers", "slow: long replay/figure benchmarks excluded from the fast CI tier"
    )


def _scaled(**overrides) -> WorkloadParameters:
    params = WorkloadParameters(**overrides)
    return params


@pytest.fixture(scope="session")
def bench_params() -> WorkloadParameters:
    """Default parameters used by the heavier (index-comparison) figures."""
    if FULL_SCALE:
        return WorkloadParameters(
            num_objects=100_000,
            space=PAPER_SPACE,
            time_duration=240.0,
            num_queries=200,
            buffer_pages=50,
            page_size=4096,
        )
    return _scaled(num_objects=2_000, time_duration=120.0, num_queries=40)


@pytest.fixture(scope="session")
def sweep_params() -> WorkloadParameters:
    """Lighter parameters for the multi-point parameter sweeps (Figs. 20-24)."""
    if FULL_SCALE:
        return WorkloadParameters(
            num_objects=100_000,
            space=PAPER_SPACE,
            time_duration=240.0,
            num_queries=200,
            buffer_pages=50,
            page_size=4096,
        )
    return _scaled(num_objects=1_500, time_duration=100.0, num_queries=30)


