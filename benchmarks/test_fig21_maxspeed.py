"""Figure 21: effect of the maximum object speed on range-query cost.

The paper's analysis (Section 4) predicts that the unpartitioned search
space grows quadratically with speed while the partitioned one grows nearly
linearly, so the VP advantage must widen as the maximum speed increases.
"""

import pytest

from bench_utils import print_figure, run_once, series

from repro.bench import experiments

#: Figure replays take seconds to minutes; the fast CI tier skips them.
pytestmark = pytest.mark.slow

SPEEDS = (20.0, 60.0, 100.0, 160.0)


def test_fig21_effect_of_max_speed(benchmark, sweep_params):
    rows = run_once(
        benchmark, experiments.fig21_max_speed, "SA", sweep_params, speeds=SPEEDS
    )
    print_figure("Figure 21 — effect of maximum object speed (SA)", rows)

    bx = series(rows, "Bx", "max_speed")
    bx_vp = series(rows, "Bx(VP)", "max_speed")
    tpr = series(rows, "TPR*", "max_speed")
    tpr_vp = series(rows, "TPR*(VP)", "max_speed")

    # The unpartitioned indexes suffer from higher speeds.
    assert bx[-1] > bx[0]
    assert tpr[-1] >= tpr[0]

    # At the highest speed the VP variants clearly win ...
    assert bx_vp[-1] < bx[-1]
    assert tpr_vp[-1] < tpr[-1]

    # ... and the relative gain at the highest speed is at least as large as
    # at the lowest speed (the gap widens with speed).
    bx_gain_low = bx[0] / max(bx_vp[0], 1e-9)
    bx_gain_high = bx[-1] / max(bx_vp[-1], 1e-9)
    assert bx_gain_high >= bx_gain_low * 0.9
