"""Ablations of the VP design choices (Section 5 parameters).

Not a figure of the paper, but DESIGN.md calls out the design knobs the
paper fixes by fiat: the number of DVA partitions k (2 for road networks),
the velocity-sample size (10,000 points), and the space-filling curve of the
underlying Bx-tree (Hilbert).  These benchmarks quantify how sensitive the
results are to each choice.
"""

import pytest

from bench_utils import print_figure, run_once

from repro.bench import experiments

#: Figure replays take seconds to minutes; the fast CI tier skips them.
pytestmark = pytest.mark.slow


def test_ablation_k_and_sample_size(benchmark, sweep_params):
    rows = run_once(
        benchmark,
        experiments.ablation_vp_parameters,
        "CH",
        sweep_params,
        ks=(1, 2, 3),
        sample_sizes=(100, 1_000, 10_000),
    )
    print_figure("Ablation — number of DVAs and velocity sample size (CH)", rows)

    k_rows = {row["value"]: row for row in rows if row["variant"] == "k"}
    # On a two-axis road network, k=2 must not be worse than k=1 (a single
    # averaged axis cannot separate the two traffic directions).
    assert k_rows[2]["query_io"] <= k_rows[1]["query_io"] * 1.05

    sample_rows = {row["value"]: row for row in rows if row["variant"] == "sample_size"}
    # A modest sample is already enough: the 1,000-point analysis should be
    # within ~30% of the 10,000-point analysis.
    assert sample_rows[1_000]["query_io"] <= sample_rows[10_000]["query_io"] * 1.3 + 1.0


def test_ablation_space_filling_curve(benchmark, sweep_params):
    rows = run_once(
        benchmark, experiments.ablation_space_filling_curve, "CH", sweep_params
    )
    print_figure("Ablation — Hilbert versus Z-curve for the Bx-tree (CH)", rows)
    by_curve = {row["curve"]: row for row in rows}
    assert set(by_curve) == {"hilbert", "z"}
    # Both curves answer the same queries; their costs should be in the same
    # ballpark (the Hilbert curve's better locality usually wins slightly).
    assert by_curve["hilbert"]["query_io"] <= by_curve["z"]["query_io"] * 1.5
