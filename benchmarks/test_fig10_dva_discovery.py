"""Figures 10, 11 and 13: quality of DVA discovery.

The paper motivates the PC-distance k-means (Algorithm 2) by showing that
plain PCA produces one averaged axis and that centroid-based k-means groups
points around centroids rather than axes.  The quality metric reported here
is the mean perpendicular speed of each velocity point with respect to its
assigned axis (smaller = partitions closer to 1-D), on the rotated
San Francisco-like network where the standard axes do not coincide with the
dominant directions.
"""

import pytest

from bench_utils import print_figure, run_once

from repro.bench import experiments

#: Figure replays take seconds to minutes; the fast CI tier skips them.
pytestmark = pytest.mark.slow


def test_fig10_dva_discovery(benchmark, bench_params):
    rows = run_once(benchmark, experiments.fig10_dva_discovery, "SA", bench_params)
    print_figure("Figures 10/11 — DVA discovery quality on SA", rows)
    by_method = {row["method"]: row for row in rows}
    ours = by_method["PC-distance k-means (ours)"]["mean_perp_speed"]
    naive_pca = by_method["PCA only (naive I)"]["mean_perp_speed"]
    naive_centroid = by_method["centroid k-means (naive II)"]["mean_perp_speed"]

    # Algorithm 2 must fit the velocity points tighter than both baselines
    # (Figure 11d versus Figures 10a/10b).
    assert ours < naive_pca
    assert ours <= naive_centroid
    # And the fit must really be near-1D: residual well under the max speed.
    assert ours < 0.25 * bench_params.max_speed
