"""Figure 22: effect of the circular range-query radius.

The paper observes that the VP advantage is largest for small query radii
(where velocity-driven enlargement dominates the window size) and shrinks in
relative terms as the radius grows (the query extent starts to dominate).
"""

import pytest

from bench_utils import print_figure, run_once, series

from repro.bench import experiments

#: Figure replays take seconds to minutes; the fast CI tier skips them.
pytestmark = pytest.mark.slow

RADII = (100.0, 300.0, 500.0, 1000.0)


def test_fig22_effect_of_query_radius(benchmark, sweep_params):
    rows = run_once(
        benchmark, experiments.fig22_query_radius, "SA", sweep_params, radii=RADII
    )
    print_figure("Figure 22 — effect of range query radius (SA)", rows)

    for index_name in ("Bx", "Bx(VP)", "TPR*", "TPR*(VP)"):
        io = series(rows, index_name, "query_radius")
        # Larger query windows cannot be cheaper to answer.
        assert io[-1] >= io[0] * 0.9

    bx = series(rows, "Bx", "query_radius")
    bx_vp = series(rows, "Bx(VP)", "query_radius")
    # The VP index keeps an advantage at the small-radius end, where the
    # paper reports the largest factors.
    assert bx_vp[0] <= bx[0]

    # Relative gain at the smallest radius is at least as big as at the
    # largest radius (the advantage shrinks as the extent dominates).
    gain_small = bx[0] / max(bx_vp[0], 1e-9)
    gain_large = bx[-1] / max(bx_vp[-1], 1e-9)
    assert gain_small >= gain_large * 0.8
