"""Quick-mode invocation of the speed micro-harness (satellite of the
bulk-loading PR): keeps ``bench_speed.py`` exercised on every test run and
asserts the headline claim — bulk loading beats incremental building — at
smoke scale.  The bench-scale numbers live in ``BENCH_speed.json`` at the
repo root; regenerate them with ``python benchmarks/bench_speed.py``.
"""

from __future__ import annotations

import json

import bench_speed


def test_quick_mode_writes_report(tmp_path):
    output = tmp_path / "BENCH_speed.json"
    report = bench_speed.run(quick=True, output=str(output))

    on_disk = json.loads(output.read_text(encoding="utf-8"))
    assert on_disk["mode"] == "quick"
    assert on_disk["indexes"] == report["indexes"]

    for name in ("Bx", "Bx(VP)", "TPR*", "TPR*(VP)"):
        row = report["indexes"][name]
        assert row["build_bulk_s"] > 0.0
        assert row["build_incremental_s"] > 0.0
        assert row["build_speedup"] > 0.0
    # The TPR*-tree is the pathological incremental builder (forced
    # reinsertions); bulk loading wins by >10x on a quiet machine, so even
    # with heavy scheduling noise it must at least not lose.
    assert report["indexes"]["TPR*"]["build_speedup"] > 1.0
