"""Quick-mode invocation of the speed micro-harness: keeps
``bench_speed.py`` exercised on every test run and asserts the two headline
perf claims at smoke scale —

* bulk loading beats incremental building (bulk-loading PR), and
* batched replay does not lose to per-event replay, with identical query
  results (batched-execution PR).

The bench-scale numbers live in the ``BENCH_speed.json`` history at the
repo root; regenerate/append with ``python benchmarks/bench_speed.py``.
"""

from __future__ import annotations

import json

import bench_speed


def test_quick_mode_appends_history(tmp_path):
    output = tmp_path / "BENCH_speed.json"
    first = bench_speed.run(quick=True, output=str(output))
    second = bench_speed.run(quick=True, output=str(output))

    on_disk = json.loads(output.read_text(encoding="utf-8"))
    history = on_disk["history"]
    assert len(history) == 2, "each run must append, not overwrite"
    assert history[0]["indexes"] == first["indexes"]
    assert history[1]["indexes"] == second["indexes"]
    assert all(entry["mode"] == "quick" for entry in history)

    for name in ("Bx", "Bx(VP)", "TPR*", "TPR*(VP)"):
        row = second["indexes"][name]
        assert row["build_bulk_s"] > 0.0
        assert row["build_incremental_s"] > 0.0
        assert row["build_speedup"] > 0.0
        # Batched and per-event replay must return the same query answers,
        # and the batched kNN replay the same neighbour rankings.
        assert row["results_match"] == 1.0, name
        assert row["knn_results_match"] == 1.0, name
        assert row["knn_ms"] > 0.0 and row["per_event_knn_ms"] > 0.0, name
        # Batched replay must not collapse: even with scheduler noise at
        # smoke scale it stays within a wide band of the per-event path
        # (the bench-scale history is where the ≥2x Bx-family win lives).
        assert row["update_speedup"] > 0.6, (name, row["update_speedup"])
    # The TPR*-tree is the pathological incremental builder (forced
    # reinsertions); bulk loading wins by >10x on a quiet machine, so even
    # with heavy scheduling noise it must at least not lose.
    assert second["indexes"]["TPR*"]["build_speedup"] > 1.0
    # Deterministic (noise-free) form of "batched replay is not slower":
    # shared descents mean the Bx family touches no more nodes per update
    # than the per-event path.
    for name in ("Bx", "Bx(VP)"):
        row = second["indexes"][name]
        assert row["update_nodes"] <= row["per_event_update_nodes"], name


def test_history_migrates_legacy_snapshot(tmp_path):
    output = tmp_path / "BENCH_speed.json"
    legacy = {"mode": "bench", "indexes": {"Bx": {"update_ms": 1.0}}}
    output.write_text(json.dumps(legacy), encoding="utf-8")
    report = bench_speed.run(quick=True, output=str(output))
    history = json.loads(output.read_text(encoding="utf-8"))["history"]
    assert len(history) == 2
    assert history[0] == legacy
    assert history[1]["indexes"] == report["indexes"]


def _fake_entry(update_ms, mode="quick", dataset="SA", params=None):
    return {
        "mode": mode,
        "dataset": dataset,
        "params": params or {"num_objects": 400},
        "indexes": {"Bx": {"update_ms": update_ms}},
    }


def test_check_regression_gate(tmp_path):
    import check_regression

    history = tmp_path / "history.json"
    report = tmp_path / "report.json"
    history.write_text(json.dumps({"history": [_fake_entry(0.02)]}))

    # Within the limit: passes.
    report.write_text(json.dumps({"history": [_fake_entry(0.024)]}))
    assert (
        check_regression.main([str(report), "--history", str(history)]) == 0
    )

    # Beyond +25%: fails.
    report.write_text(json.dumps({"history": [_fake_entry(0.03)]}))
    assert (
        check_regression.main([str(report), "--history", str(history)]) == 1
    )

    # A looser limit admits the same report.
    assert (
        check_regression.main(
            [str(report), "--history", str(history), "--max-regression", "0.6"]
        )
        == 0
    )


def test_check_regression_covers_knn(tmp_path):
    import check_regression

    def entry(update_ms, knn_ms=None):
        row = {"update_ms": update_ms}
        if knn_ms is not None:
            row["knn_ms"] = knn_ms
        return {
            "mode": "quick",
            "dataset": "SA",
            "params": {"num_objects": 400},
            "indexes": {"Bx": row},
        }

    history = tmp_path / "history.json"
    report = tmp_path / "report.json"
    history.write_text(json.dumps({"history": [entry(0.02, knn_ms=0.5)]}))

    # A stable update time does not excuse a regressed batched kNN time.
    report.write_text(json.dumps({"history": [entry(0.02, knn_ms=0.7)]}))
    assert check_regression.main([str(report), "--history", str(history)]) == 1

    # Baselines predating the knn metric are skipped, not failed.
    history.write_text(json.dumps({"history": [entry(0.02)]}))
    assert check_regression.main([str(report), "--history", str(history)]) == 0

    # The reverse is a failure: a report that stopped emitting a gated
    # metric would silently disarm the gate.
    history.write_text(json.dumps({"history": [entry(0.02, knn_ms=0.5)]}))
    report.write_text(json.dumps({"history": [entry(0.02)]}))
    assert check_regression.main([str(report), "--history", str(history)]) == 1


def test_check_regression_requires_comparable_baseline(tmp_path):
    import check_regression

    history = tmp_path / "history.json"
    report = tmp_path / "report.json"
    # Baseline exists but at bench scale: a quick report must not be judged
    # against it (absolute times differ by an order of magnitude).
    history.write_text(
        json.dumps(
            {"history": [_fake_entry(0.001, mode="bench", params={"num_objects": 2000})]}
        )
    )
    report.write_text(json.dumps({"history": [_fake_entry(0.03)]}))
    assert (
        check_regression.main([str(report), "--history", str(history)]) == 0
    )

    # The most recent comparable entry wins, not the most recent entry.
    history.write_text(
        json.dumps(
            {
                "history": [
                    _fake_entry(0.03),
                    _fake_entry(0.001, mode="bench", params={"num_objects": 2000}),
                ]
            }
        )
    )
    assert (
        check_regression.main([str(report), "--history", str(history)]) == 0
    )


def test_scale_mode_records_shard_rows(tmp_path):
    """The sharded scale sweep: per-shard-count rows with matching answers."""
    output = tmp_path / "BENCH_speed.json"
    report = bench_speed.run(
        quick=True, scale=True, output=str(output), shard_counts=(1, 2)
    )
    assert report["mode"] == "scale-quick"
    assert sorted(report["shards"], key=int) == ["1", "2"]
    for count, rows in report["shards"].items():
        for name in bench_speed.SCALE_INDEXES:
            row = rows[name]
            assert row["update_ms"] > 0.0
            assert row["knn_ms"] > 0.0
            # Every sharded row's answers must match the unsharded (1-shard)
            # baseline row: range via totals, kNN exactly.
            assert row["results_match"] == 1.0, (count, name)
            assert row["knn_results_match"] == 1.0, (count, name)
    on_disk = json.loads(output.read_text(encoding="utf-8"))
    assert on_disk["history"][-1]["shards"] == report["shards"]


def test_check_regression_gates_sharded_rows(tmp_path):
    import check_regression

    def entry(update_ms, knn_ms):
        return {
            "mode": "scale-quick",
            "dataset": "SA",
            "params": {"num_objects": 2500},
            "shards": {
                "1": {"Bx": {"update_ms": update_ms, "knn_ms": knn_ms}},
                "4": {"Bx": {"update_ms": update_ms, "knn_ms": knn_ms}},
            },
        }

    history = tmp_path / "history.json"
    report = tmp_path / "report.json"
    history.write_text(json.dumps({"history": [entry(0.02, 0.5)]}))

    report.write_text(json.dumps({"history": [entry(0.021, 0.51)]}))
    assert check_regression.main([str(report), "--history", str(history)]) == 0

    # A regressed sharded knn_ms fails even with update_ms stable.
    report.write_text(json.dumps({"history": [entry(0.02, 0.9)]}))
    assert check_regression.main([str(report), "--history", str(history)]) == 1


def test_faults_mode_records_recovery_and_recall(tmp_path):
    """The fault-injection run: kill, degrade, recover, match exactly."""
    output = tmp_path / "BENCH_speed.json"
    report = bench_speed.run(quick=True, faults=True, output=str(output))
    assert report["mode"] == "faults-quick"
    row = report["faults"]["Bx"]
    assert row["recovery_ms"] > 0.0
    assert row["replayed_records"] > 0
    # The outage was real: partial answers were incomplete, and the
    # healthy shards still delivered a meaningful fraction of the truth.
    assert row["degraded_complete"] == 0.0
    assert 0.0 < row["degraded_recall_range"] < 1.0
    assert 0.0 < row["degraded_recall_knn"] <= 1.0
    # WAL-replay recovery restores bit-identical answers.
    assert row["post_recovery_results_match"] == 1.0
    assert row["post_recovery_knn_match"] == 1.0
    on_disk = json.loads(output.read_text(encoding="utf-8"))
    assert on_disk["history"][-1]["faults"] == report["faults"]


def test_check_regression_gates_fault_rows(tmp_path):
    import check_regression

    def entry(recovery_ms, recall):
        return {
            "mode": "faults-quick",
            "dataset": "SA",
            "params": {"num_objects": 800},
            "faults": {
                "Bx": {
                    "recovery_ms": recovery_ms,
                    "degraded_recall_range": recall,
                    "degraded_recall_knn": recall,
                }
            },
        }

    history = tmp_path / "history.json"
    report = tmp_path / "report.json"
    history.write_text(json.dumps({"history": [entry(5.0, 0.75)]}))

    report.write_text(json.dumps({"history": [entry(5.5, 0.75)]}))
    assert check_regression.main([str(report), "--history", str(history)]) == 0

    # Slower recovery fails the latency gate.
    report.write_text(json.dumps({"history": [entry(9.0, 0.75)]}))
    assert check_regression.main([str(report), "--history", str(history)]) == 1

    # Eroded degraded recall fails the quality floor, recovery stable.
    report.write_text(json.dumps({"history": [entry(5.0, 0.4)]}))
    assert check_regression.main([str(report), "--history", str(history)]) == 1


def test_serve_mode_records_executor_rows_and_latency(tmp_path):
    """The executor-backed sweep plus the open-loop latency sections."""
    output = tmp_path / "BENCH_speed.json"
    report = bench_speed.run(
        quick=True,
        serve=True,
        output=str(output),
        shard_counts=(1, 2),
        workers=2,
    )
    assert report["mode"] == "serve-quick"
    assert report["params"]["executor"] == bench_speed.SERVE_EXECUTOR
    assert sorted(report["serve"], key=int) == ["1", "2"]
    for count, rows in report["serve"].items():
        for name in bench_speed.SERVE_INDEXES:
            row = rows[name]
            assert row["update_ms"] > 0.0
            assert row["query_ms"] > 0.0
            assert row["knn_ms"] > 0.0
            # Executor-served rows must answer bit-identically to the
            # unsharded baseline row.
            assert row["results_match"] == 1.0, (count, name)
            assert row["knn_results_match"] == 1.0, (count, name)
    latency = report["latency"]
    assert latency["shards"] == 2
    assert latency["operations"] > 0
    for loop in ("closed", "open"):
        section = latency[loop]
        assert section["throughput_ops"] > 0.0
        for kind in ("update", "range", "knn"):
            assert section[kind]["count"] > 0, (loop, kind)
            assert section[kind]["p95_ms"] >= section[kind]["p50_ms"]
    # Open-loop arrivals are calibrated below closed-loop saturation.
    assert latency["open"]["rate_ops_s"] <= latency["closed"]["throughput_ops"]
    on_disk = json.loads(output.read_text(encoding="utf-8"))
    assert on_disk["history"][-1]["latency"] == report["latency"]


def test_check_regression_gates_serve_rows(tmp_path):
    import check_regression

    def entry(query_ms, match=1.0):
        return {
            "mode": "serve-quick",
            "dataset": "SA",
            "params": {"num_objects": 2500, "executor": "process"},
            "serve": {
                "1": {"TPR*": {"query_ms": query_ms, "results_match": match}},
                "4": {"TPR*": {"query_ms": query_ms, "results_match": match}},
            },
        }

    history = tmp_path / "history.json"
    report = tmp_path / "report.json"
    history.write_text(json.dumps({"history": [entry(1.0)]}))

    report.write_text(json.dumps({"history": [entry(1.1)]}))
    assert check_regression.main([str(report), "--history", str(history)]) == 0

    # A regressed served batch-query time fails.
    report.write_text(json.dumps({"history": [entry(2.0)]}))
    assert check_regression.main([str(report), "--history", str(history)]) == 1

    # Answers that stop matching the unsharded baseline fail the floor
    # even with timings stable.
    report.write_text(json.dumps({"history": [entry(1.0, match=0.0)]}))
    assert check_regression.main([str(report), "--history", str(history)]) == 1

    # A different executor is a different experiment, not a baseline.
    changed = entry(9.0)
    changed["params"]["executor"] = "serial"
    report.write_text(json.dumps({"history": [changed]}))
    assert check_regression.main([str(report), "--history", str(history)]) == 0


def test_check_regression_gates_latency_sections(tmp_path):
    import check_regression

    def entry(p95_ms, throughput=1000.0):
        kinds = {
            kind: {"p95_ms": p95_ms} for kind in ("update", "range", "knn")
        }
        return {
            "mode": "serve-quick",
            "dataset": "SA",
            "params": {"num_objects": 2500, "executor": "process"},
            "latency": {
                "closed": {"throughput_ops": throughput, **kinds},
                "open": dict(kinds),
            },
        }

    history = tmp_path / "history.json"
    report = tmp_path / "report.json"
    history.write_text(json.dumps({"history": [entry(5.0)]}))

    report.write_text(json.dumps({"history": [entry(5.5)]}))
    assert check_regression.main([str(report), "--history", str(history)]) == 0

    # A regressed p95 fails.
    report.write_text(json.dumps({"history": [entry(11.0)]}))
    assert check_regression.main([str(report), "--history", str(history)]) == 1

    # Collapsed closed-loop throughput fails the floor, p95s stable.
    report.write_text(json.dumps({"history": [entry(5.0, throughput=100.0)]}))
    assert check_regression.main([str(report), "--history", str(history)]) == 1


def test_check_regression_skips_new_section_with_notice(tmp_path, capsys):
    """A section new to the fresh report passes with a notice, not a crash."""
    import check_regression

    base = {"mode": "faults-quick", "dataset": "SA", "params": {"num_objects": 800}}
    history = tmp_path / "history.json"
    report = tmp_path / "report.json"
    # The comparable baseline entry predates the 'faults' section entirely.
    history.write_text(json.dumps({"history": [dict(base)]}))
    report.write_text(
        json.dumps(
            {"history": [{**base, "faults": {"Bx": {"recovery_ms": 5.0}}}]}
        )
    )
    assert check_regression.main([str(report), "--history", str(history)]) == 0
    assert "notice" in capsys.readouterr().out
