"""Open-loop latency load driver for the sharded serving layer.

``bench_speed.py serve`` measures *batch* cost per operation; this driver
measures what a client actually experiences: per-request latency under a
fixed arrival process.  It replays a mixed update/range/kNN operation
stream against a (usually sharded, usually process-backed) index in two
modes and reports per-op-type percentiles plus throughput:

* **closed loop** — ``clients`` threads issue requests back to back; the
  latency of a request is its service time, and the aggregate throughput
  is the system's saturation rate.  Updates all ride one lane (client 0)
  so their stream order — which the index's update semantics require —
  is preserved; queries fan across the remaining lanes.
* **open loop** — requests arrive on a Poisson process at ``rate_ops_s``
  (self-calibrated to ~70% of the closed-loop throughput when not
  given), and the latency of a request is measured from its *scheduled*
  arrival, not from when the driver got around to issuing it.  A slow
  request therefore also charges the requests queued behind it — the
  coordinated-omission-free number a closed loop cannot produce.

:func:`run_htap` is the third mode, added with the snapshot-serving
work: one updater thread streams update batches flat out while query
threads answer epoch-pinned range/kNN batches concurrently, every
mutation and every answer recorded into an
:class:`~repro.serve.EpochOracle` — the run's headline numbers are the
sustained update throughput, the epoch lag queries observed, and the
oracle's verdict that every concurrent answer was bit-identical to a
quiescent evaluation at its pinned epoch (``docs/htap.md``).

Percentiles are nearest-rank (no interpolation), so a reported p99 is an
actually observed latency.  The driver builds a fresh index per mode
(the update stream is stateful and cannot be replayed twice into the
same index), which is why it takes an index *factory*, not an index.
"""

from __future__ import annotations

import math
import random
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: (kind, payload): kind is "update" (payload ``(old, new)``), "range"
#: (payload a RangeQuery) or "knn" (payload a KNNQuery).
Operation = Tuple[str, object]

#: Open-loop arrival rate as a fraction of the measured closed-loop
#: saturation throughput, when --rate is not given.  Below saturation so
#: the queue drains between bursts; high enough that queueing happens.
CALIBRATION_FRACTION = 0.7

#: Minimum self-calibrated rate: keeps the open loop finite when the
#: closed-loop measurement was degenerate (e.g. a near-empty op list).
MIN_RATE_OPS_S = 1.0


def build_operations(
    workload, probes: Sequence[object], seed: int = 0
) -> List[Operation]:
    """The mixed request stream: every update, range query and kNN probe.

    Updates keep their stream order (the workload's update semantics
    depend on it); queries and probes are interleaved among them at
    seeded-random positions, so the mix — not the workload file's
    event grouping — decides what contends with what.
    """
    lanes: Dict[str, List[Operation]] = {
        "update": [("update", (e.old, e.new)) for e in workload.update_events],
        "range": [("range", e.query) for e in workload.query_events],
        "knn": [("knn", probe) for probe in probes],
    }
    kinds = [kind for kind, ops in lanes.items() for _ in ops]
    random.Random(seed).shuffle(kinds)
    cursors = {kind: iter(ops) for kind, ops in lanes.items()}
    return [next(cursors[kind]) for kind in kinds]


def _issue(index, kind: str, payload, space) -> None:
    """Execute one request against ``index`` (the unit of latency)."""
    if kind == "update":
        old, new = payload
        index.update(old, new)
    elif kind == "range":
        index.range_query_batch([payload])
    else:
        index.knn_query_batch([payload], space=space)


def percentile(sorted_samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sample list."""
    if not sorted_samples:
        return 0.0
    rank = max(1, math.ceil(len(sorted_samples) * fraction))
    return sorted_samples[rank - 1]


def summarize(
    samples: Dict[str, List[float]], wall_s: float
) -> Dict[str, object]:
    """Per-op-type p50/p95/p99 (ms) plus aggregate throughput."""
    total = sum(len(latencies) for latencies in samples.values())
    report: Dict[str, object] = {
        "wall_s": round(wall_s, 3),
        "throughput_ops": round(total / wall_s, 2) if wall_s > 0.0 else 0.0,
    }
    for kind, latencies in sorted(samples.items()):
        ordered = sorted(latencies)
        report[kind] = {
            "count": len(ordered),
            "p50_ms": round(percentile(ordered, 0.50) * 1000.0, 3),
            "p95_ms": round(percentile(ordered, 0.95) * 1000.0, 3),
            "p99_ms": round(percentile(ordered, 0.99) * 1000.0, 3),
            "mean_ms": round(
                sum(ordered) / len(ordered) * 1000.0 if ordered else 0.0, 3
            ),
        }
    return report


def run_closed_loop(
    index, operations: Sequence[Operation], clients: int = 2, space=None
) -> Dict[str, object]:
    """``clients`` threads issue back to back; latency = service time."""
    if clients < 1:
        raise ValueError("clients must be at least 1")
    lanes: List[List[Operation]] = [[] for _ in range(clients)]
    spread = 0
    for operation in operations:
        if operation[0] == "update":
            lanes[0].append(operation)  # one lane keeps the update order
        else:
            lanes[spread % clients].append(operation)
            spread += 1

    samples: Dict[str, List[float]] = {}
    errors: List[BaseException] = []
    merge = threading.Lock()

    def worker(lane: List[Operation]) -> None:
        local: Dict[str, List[float]] = {}
        try:
            for kind, payload in lane:
                issued = time.perf_counter()
                _issue(index, kind, payload, space)
                local.setdefault(kind, []).append(time.perf_counter() - issued)
        except BaseException as error:  # noqa: BLE001 - re-raised below
            errors.append(error)
        with merge:
            for kind, latencies in local.items():
                samples.setdefault(kind, []).extend(latencies)

    threads = [threading.Thread(target=worker, args=(lane,)) for lane in lanes]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]
    return summarize(samples, wall)


def run_open_loop(
    index,
    operations: Sequence[Operation],
    rate_ops_s: float,
    space=None,
    seed: int = 0,
) -> Dict[str, object]:
    """Poisson arrivals at ``rate_ops_s``; latency measured from arrival.

    One dispatch lane serves the arrival queue in order (which also
    preserves the update stream's order).  When the lane falls behind,
    requests are issued immediately but *charged from their scheduled
    arrival* — queue wait is part of the latency, never silently
    dropped (no coordinated omission).
    """
    if rate_ops_s <= 0.0:
        raise ValueError("rate_ops_s must be positive")
    rng = random.Random(seed)
    due, arrivals = 0.0, []
    for _ in operations:
        due += rng.expovariate(rate_ops_s)
        arrivals.append(due)

    samples: Dict[str, List[float]] = {}
    started = time.perf_counter()
    for (kind, payload), scheduled in zip(operations, arrivals):
        ahead = scheduled - (time.perf_counter() - started)
        if ahead > 0.0:
            time.sleep(ahead)
        _issue(index, kind, payload, space)
        samples.setdefault(kind, []).append(
            (time.perf_counter() - started) - scheduled
        )
    wall = time.perf_counter() - started
    report = summarize(samples, wall)
    report["rate_ops_s"] = round(rate_ops_s, 2)
    return report


#: Seeds of the published HTAP stress matrix: every seed is exercised by
#: the CI ``htap`` job and by ``tests/test_htap_stress.py`` (via the
#: ``HTAP_SEED`` environment variable), so a consistency failure is
#: reproducible from the seed alone.
HTAP_SEEDS = (0, 1337, 20260808)


def run_htap(
    index,
    oracle,
    update_batches: Sequence[Sequence[Tuple[object, object]]],
    queries: Sequence[object],
    probes: Sequence[object],
    query_clients: int = 2,
    space=None,
    query_batch_size: int = 4,
    seed: int = 0,
) -> Dict[str, object]:
    """Mixed workload: stream updates while epoch-pinned queries run.

    One updater thread applies ``update_batches`` back to back (updates
    are order-dependent, so they never fan across threads) and records
    each batch with its assigned epoch into ``oracle``.  Concurrently,
    ``query_clients`` threads pin an epoch via ``index.pin()`` and
    answer seeded-random range/kNN batches at it, recording every answer
    — with the epoch it was pinned at and the lag behind the published
    epoch at completion — until the update stream is exhausted.

    The caller is expected to have bulk-loaded ``index`` already (and
    recorded that mutation into ``oracle``); afterwards,
    ``oracle.check()`` replays everything into the quiescent twin.  The
    returned report carries throughput, per-op-type latency percentiles,
    epoch-lag statistics and the oracle verdict as
    ``answers_consistent`` (1.0 = every concurrent answer bit-identical
    to its quiescent twin evaluation).
    """
    if query_clients < 1:
        raise ValueError("query_clients must be at least 1")
    stop = threading.Event()
    errors: List[BaseException] = []
    latencies: Dict[str, List[float]] = {"update": [], "range": [], "knn": []}
    lags: List[int] = []
    merge = threading.Lock()
    updates_applied = 0

    def updater() -> None:
        nonlocal updates_applied
        local: List[float] = []
        applied = 0
        try:
            for pairs in update_batches:
                issued = time.perf_counter()
                index.update_batch(pairs)
                local.append(time.perf_counter() - issued)
                # Single updater: the post-call published epoch is the
                # epoch this batch was assigned.
                oracle.record_mutation(index.epoch, "update_batch", pairs)
                applied += len(pairs)
        except BaseException as error:  # noqa: BLE001 - re-raised below
            errors.append(error)
        finally:
            stop.set()
        with merge:
            latencies["update"].extend(local)
            updates_applied += applied

    def query_worker(worker_id: int) -> None:
        rng = random.Random(seed * 7919 + worker_id)
        local: Dict[str, List[float]] = {"range": [], "knn": []}
        local_lags: List[int] = []
        try:
            while not stop.is_set():
                query_batch = rng.sample(
                    list(queries), min(query_batch_size, len(queries))
                )
                probe_batch = rng.sample(
                    list(probes), min(query_batch_size, len(probes))
                )
                with index.pin() as epoch:
                    if query_batch:
                        issued = time.perf_counter()
                        answer = index.range_query_batch(query_batch, epoch=epoch)
                        local["range"].append(time.perf_counter() - issued)
                        oracle.record_answer(epoch, "range", query_batch, answer)
                    if probe_batch:
                        issued = time.perf_counter()
                        answer = index.knn_query_batch(
                            probe_batch, space=space, epoch=epoch
                        )
                        local["knn"].append(time.perf_counter() - issued)
                        oracle.record_answer(epoch, "knn", probe_batch, answer)
                    local_lags.append(index.epoch - epoch)
        except BaseException as error:  # noqa: BLE001 - re-raised below
            errors.append(error)
            stop.set()
        with merge:
            for kind, values in local.items():
                latencies[kind].extend(values)
            lags.extend(local_lags)

    threads = [threading.Thread(target=updater)]
    threads.extend(
        threading.Thread(target=query_worker, args=(worker_id,))
        for worker_id in range(query_clients)
    )
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    if errors:
        raise errors[0]

    mismatches = oracle.check()
    report = summarize(
        {kind: values for kind, values in latencies.items() if values}, wall
    )
    report["query_clients"] = query_clients
    report["updates_applied"] = updates_applied
    report["update_throughput_ops"] = (
        round(updates_applied / wall, 2) if wall > 0.0 else 0.0
    )
    report["final_epoch"] = index.epoch
    report["epoch_lag_mean"] = (
        round(sum(lags) / len(lags), 3) if lags else 0.0
    )
    report["epoch_lag_max"] = float(max(lags)) if lags else 0.0
    report["answers_checked"] = oracle.answers_recorded
    report["answers_consistent"] = 0.0 if mismatches else 1.0
    if mismatches:
        report["first_mismatch"] = mismatches[0][:500]
    return report


def drive(
    make_index: Callable[[], object],
    operations: Sequence[Operation],
    clients: int = 2,
    rate_ops_s: Optional[float] = None,
    space=None,
    seed: int = 0,
) -> Dict[str, object]:
    """Closed-loop saturation run, then the open-loop latency run.

    ``make_index`` builds (and loads) a fresh index per mode; each index
    is closed afterwards when it has a ``close``.  When ``rate_ops_s``
    is None the open-loop rate is :data:`CALIBRATION_FRACTION` of the
    measured closed-loop throughput.
    """
    index = make_index()
    try:
        closed = run_closed_loop(index, operations, clients=clients, space=space)
    finally:
        if hasattr(index, "close"):
            index.close()
    if rate_ops_s is None:
        rate_ops_s = max(
            MIN_RATE_OPS_S, CALIBRATION_FRACTION * float(closed["throughput_ops"])
        )
    index = make_index()
    try:
        open_loop = run_open_loop(
            index, operations, rate_ops_s, space=space, seed=seed
        )
    finally:
        if hasattr(index, "close"):
            index.close()
    return {"clients": clients, "closed": closed, "open": open_loop}
