#!/usr/bin/env python3
"""Taxi dispatch: continuous "who is near this passenger soon?" queries.

The paper motivates circular range queries with exactly this scenario: "a
taxi driver is interested in potential passengers within 200 meters of
itself".  This example plays the dispatcher's side:

* a fleet of taxis drives on a San Francisco-like road network (a grid whose
  streets are rotated off the coordinate axes — the case where the VP
  technique must *discover* the dominant directions rather than inherit them
  from the coordinate system);
* passengers appear at random street corners and the dispatcher asks, for
  each passenger, which taxis will be within pickup range shortly; and
* the same queries run against a velocity-partitioned TPR*-tree and a plain
  TPR*-tree so the I/O savings are visible per dispatch decision.

Run it with:  python examples/taxi_dispatch.py
"""

import random

from repro import (
    CircularRange,
    TimeSliceRangeQuery,
    VelocityAnalyzer,
    WorkloadParameters,
    make_vp_tprstar_tree,
)
from repro.network.generators import san_francisco_like
from repro.storage.buffer_manager import BufferManager
from repro.tprtree.tprstar_tree import TPRStarTree
from repro.workload.network_workload import NetworkWorkloadGenerator

#: How far ahead the dispatcher looks when matching taxis to passengers (ts).
PICKUP_HORIZON = 30.0

#: Pickup range around the passenger, in meters.
PICKUP_RADIUS = 1_500.0


def main() -> None:
    params = WorkloadParameters(
        num_objects=1_200,
        max_speed=80.0,
        time_duration=120.0,
        num_queries=0,  # dispatch queries are issued by this script instead
        seed=2024,
    )
    network = san_francisco_like(space=params.space)
    workload = NetworkWorkloadGenerator(network, params).generate(include_queries=False)
    print(
        f"fleet of {workload.num_objects} taxis on the {network.name} network "
        f"({network.num_nodes} intersections, {network.num_edges} street segments)"
    )

    # Analyze the fleet's velocity distribution and build both indexes.
    partitioning = VelocityAnalyzer(k=2).analyze(workload.velocity_sample())
    print("dominant travel directions (degrees):",
          [round(d.angle_degrees(), 1) for d in partitioning.dvas])

    vp_index = make_vp_tprstar_tree(
        partitioning, buffer_pages=params.buffer_pages, page_size=params.page_size
    )
    plain_index = TPRStarTree(
        buffer=BufferManager(capacity=params.buffer_pages), page_size=params.page_size
    )

    latest = {}
    for taxi in workload.initial_objects:
        vp_index.insert(taxi)
        plain_index.insert(taxi)
        latest[taxi.oid] = taxi

    # Replay the drive and interleave dispatch decisions.
    rng = random.Random(7)
    dispatches = 0
    vp_io = plain_io = 0
    update_events = workload.update_events
    for i, event in enumerate(update_events):
        vp_index.update(event.old, event.new)
        plain_index.update(event.old, event.new)
        latest[event.new.oid] = event.new

        # Every ~50 fleet updates a passenger requests a ride somewhere.
        if i % 50 != 0:
            continue
        corner = network.position(network.random_node(rng))
        query = TimeSliceRangeQuery(
            CircularRange(center=corner, radius=PICKUP_RADIUS),
            time=event.time + PICKUP_HORIZON,
            issue_time=event.time,
        )
        before = vp_index.buffer.stats.physical.total
        vp_hits = set(vp_index.range_query(query))
        vp_io += vp_index.buffer.stats.physical.total - before

        before = plain_index.buffer.stats.physical.total
        plain_hits = set(plain_index.range_query(query))
        plain_io += plain_index.buffer.stats.physical.total - before

        assert vp_hits == plain_hits, "both indexes must agree on the candidate taxis"
        dispatches += 1
        if dispatches <= 5:
            print(
                f"  t={event.time:6.1f}  passenger at ({corner.x:8.0f}, {corner.y:8.0f})  "
                f"{len(vp_hits):3d} taxis reachable within {PICKUP_HORIZON:.0f} ts"
            )

    print()
    print(f"dispatch decisions: {dispatches}")
    print(f"average I/O per dispatch  —  TPR*: {plain_io / dispatches:6.2f}   "
          f"TPR*(VP): {vp_io / dispatches:6.2f}")
    if vp_io < plain_io:
        print(f"velocity partitioning saved {100 * (1 - vp_io / plain_io):.0f}% of dispatch I/O")


if __name__ == "__main__":
    main()
