#!/usr/bin/env python3
"""Geofence monitoring with moving and time-interval range queries.

The paper's query model (Section 2.1) covers three query types; the
benchmark figures focus on time-slice queries, so this example exercises the
other two on a realistic scenario:

* **time-interval queries** — "which delivery vans will pass through the
  depot geofence at any point in the next 20 timestamps?"; and
* **moving range queries** — "which vans will come near the street-sweeper
  convoy (itself moving along a street) during its next sweep?".

Both are answered on a velocity-partitioned Bx-tree and cross-checked
against exhaustive evaluation, demonstrating that the VP query
transformation (Algorithm 3) preserves every query type the underlying
index supports.

Run it with:  python examples/geofence_monitoring.py
"""

import random

from repro import (
    CircularRange,
    MovingRangeQuery,
    RectangularRange,
    TimeIntervalRangeQuery,
    VelocityAnalyzer,
    Vector,
    WorkloadParameters,
    make_vp_bx_tree,
)
from repro.geometry.rect import Rect
from repro.network.generators import melbourne_like
from repro.workload.network_workload import NetworkWorkloadGenerator


def main() -> None:
    params = WorkloadParameters(
        num_objects=1_000,
        max_speed=70.0,
        time_duration=80.0,
        num_queries=0,
        seed=99,
    )
    network = melbourne_like(space=params.space)
    workload = NetworkWorkloadGenerator(network, params).generate(include_queries=False)
    print(f"{workload.num_objects} delivery vans on the {network.name} network")

    partitioning = VelocityAnalyzer(k=2).analyze(workload.velocity_sample())
    index = make_vp_bx_tree(
        partitioning,
        space=params.space,
        buffer_pages=params.buffer_pages,
        max_update_interval=params.max_update_interval,
        page_size=params.page_size,
    )

    live = {}
    for van in workload.initial_objects:
        index.insert(van)
        live[van.oid] = van
    for event in workload.update_events:
        index.update(event.old, event.new)
        live[event.new.oid] = event.new
    now = max((e.time for e in workload.update_events), default=0.0)
    vans = list(live.values())
    print(f"replayed {len(workload.update_events)} updates; clock is now t={now:.0f}")

    rng = random.Random(5)

    # --- Time-interval geofence around a depot -----------------------------
    depot_center = network.position(network.random_node(rng))
    depot = Rect.from_center(depot_center, 2_000.0, 2_000.0)
    geofence = TimeIntervalRangeQuery(
        RectangularRange(depot), start_time=now, end_time=now + 20.0, issue_time=now
    )
    hits = set(index.range_query(geofence))
    expected = {van.oid for van in vans if geofence.matches(van)}
    assert hits == expected
    print(
        f"depot geofence ({depot.width:.0f} m square): "
        f"{len(hits)} vans will enter within the next 20 ts"
    )

    # --- Moving range around a convoy ---------------------------------------
    convoy_anchor = network.position(network.random_node(rng))
    convoy_velocity = Vector(40.0, 5.0)
    convoy_query = MovingRangeQuery(
        CircularRange(center=convoy_anchor, radius=1_200.0),
        velocity=convoy_velocity,
        start_time=now,
        end_time=now + 15.0,
        issue_time=now,
    )
    hits = set(index.range_query(convoy_query))
    expected = {van.oid for van in vans if convoy_query.matches(van)}
    assert hits == expected
    print(
        f"moving convoy range (1.2 km radius, velocity {convoy_velocity.magnitude:.0f} m/ts): "
        f"{len(hits)} vans will come within range during the sweep"
    )

    sizes = index.partition_sizes()
    print("objects per partition:", {k: v for k, v in sorted(sizes.items())})


if __name__ == "__main__":
    main()
