#!/usr/bin/env python3
"""Quickstart: index a fleet of vehicles and compare VP against no-VP.

This example walks through the full public API in a few dozen lines:

1. generate a road-network workload (vehicles driving on a Chicago-like
   grid, reporting velocity updates, interleaved with predictive range
   queries);
2. run the velocity analyzer to find the dominant velocity axes (DVAs) and
   the outlier threshold τ;
3. build the four indexes the paper compares — Bx, Bx(VP), TPR*, TPR*(VP) —
   and replay the same workload against each; and
4. print the average query/update I/O and latency per index.

Run it with:  python examples/quickstart.py
"""

from repro import (
    ExperimentRunner,
    VelocityAnalyzer,
    WorkloadParameters,
    build_standard_indexes,
    build_workload,
)
from repro.bench.reporting import format_table


def main() -> None:
    # Scaled-down Table 1 defaults: 3,000 vehicles on a 50 km x 50 km space,
    # max speed 100 m/ts, circular queries of radius 500 m looking 60 ts ahead.
    params = WorkloadParameters(num_objects=1_500, num_queries=30, time_duration=90.0)
    workload = build_workload("CH", params)
    print(
        f"workload: {workload.num_objects} vehicles, "
        f"{len(workload.update_events)} updates, "
        f"{len(workload.query_events)} range queries"
    )

    # Peek at what the velocity analyzer finds before running the comparison.
    partitioning = VelocityAnalyzer(k=2).analyze(workload.velocity_sample())
    for i, dva in enumerate(partitioning.dvas):
        print(
            f"  DVA {i}: direction {dva.angle_degrees():6.1f} degrees, "
            f"outlier threshold tau = {dva.tau:.2f} m/ts"
        )
    print(f"  analyzer time: {1000 * partitioning.analysis_time_seconds:.1f} ms")

    # Build and race the four indexes on the identical workload.
    indexes = build_standard_indexes(workload, params)
    runner = ExperimentRunner(workload)
    rows = [runner.run(index, name=name).as_row() for name, index in indexes.items()]
    print()
    print(format_table(rows, title="Bx / Bx(VP) / TPR* / TPR*(VP) on the CH workload"))

    bx = next(r for r in rows if r["index"] == "Bx")
    bx_vp = next(r for r in rows if r["index"] == "Bx(VP)")
    if bx_vp["query_io"] < bx["query_io"]:
        factor = bx["query_io"] / max(bx_vp["query_io"], 1e-9)
        print(f"velocity partitioning cut Bx query I/O by {factor:.1f}x on this workload")


if __name__ == "__main__":
    main()
