#!/usr/bin/env python3
"""Batched k-nearest-neighbour tracking: rank nearest vehicles for many users.

A live tracking service rarely answers one kNN question at a time: every
refresh tick, *all* connected users want their k nearest vehicles at once.
This example shows the batched kNN surface end to end:

1. build a city workload and index the fleet in a Bx-tree and a TPR*(VP)
   index;
2. answer a screenful of kNN probes one at a time (the classic
   expanding-range algorithm per probe) and then as one batch
   (``knn_query_batch``: every expanding-range round is shared by all
   still-unfinished probes, so the index is traversed once per round
   instead of once per probe per round);
3. carry an ``AdaptiveRadius`` across refresh ticks, so each tick starts
   its filter circles at the radius the previous tick discovered instead
   of re-deriving it from scratch.

Answers are identical in all modes — batching and radius seeding only cut
traversals, filter rounds and physical I/O.

Run it with:  python examples/knn_tracking.py
"""

import random

from repro import (
    AdaptiveRadius,
    KNNQuery,
    WorkloadParameters,
    build_standard_indexes,
    build_workload,
)
from repro.geometry.point import Point


def make_probes(rng: random.Random, params: WorkloadParameters, users: int, tick: float):
    """One kNN probe per connected user: "my 10 nearest vehicles, 30 ts ahead"."""
    return [
        KNNQuery(
            center=Point(
                rng.uniform(0.0, params.space.width),
                rng.uniform(0.0, params.space.height),
            ),
            k=10,
            query_time=tick + 30.0,
            issue_time=tick,
        )
        for _ in range(users)
    ]


def main() -> None:
    params = WorkloadParameters(num_objects=1_000, num_queries=10, time_duration=60.0)
    workload = build_workload("CH", params)
    rng = random.Random(42)

    indexes = build_standard_indexes(workload, params, which=("Bx", "TPR*(VP)"))
    for index in indexes.values():
        index.bulk_load(workload.initial_objects)

    print(f"fleet: {workload.num_objects} vehicles; 3 refresh ticks x 25 users\n")
    for name, index in indexes.items():
        stats = index.buffer.stats

        # Per-probe baseline: one expanding-range search per user.
        ticks = [make_probes(rng, params, users=25, tick=t) for t in (0.0, 5.0, 10.0)]
        io_before = stats.physical.total
        per_event = [
            index.knn_query(p.center, p.k, p.query_time, issue_time=p.issue_time,
                            space=params.space)
            for probes in ticks
            for p in probes
        ]
        per_event_io = stats.physical.total - io_before

        # Batched: one call per refresh tick, radii seeded tick to tick.
        radius_state = AdaptiveRadius()
        io_before = stats.physical.total
        batched = []
        for probes in ticks:
            batched.extend(
                index.knn_query_batch(probes, space=params.space, radius_state=radius_state)
            )
        batched_io = stats.physical.total - io_before

        assert batched == per_event, "batching must never change answers"
        print(
            f"{name:9s} physical I/O: {per_event_io:5d} per-probe -> {batched_io:5d} "
            f"batched ({per_event_io / max(batched_io, 1):.1f}x); "
            f"seeded filter radius ~{radius_state.suggest(10):.0f} m"
        )

    name, index = next(iter(indexes.items()))
    probe = make_probes(rng, params, users=1, tick=15.0)[0]
    nearest = index.knn_query(
        probe.center, probe.k, probe.query_time, issue_time=probe.issue_time,
        space=params.space,
    )
    print(f"\nsample answer ({name}, user at {probe.center.x:.0f},{probe.center.y:.0f}):")
    for oid, distance in nearest[:5]:
        print(f"  vehicle {oid:5d} predicted {distance:7.1f} m away")


if __name__ == "__main__":
    main()
