#!/usr/bin/env python3
"""Velocity analysis walkthrough: how the VP technique finds DVAs and τ.

This example reproduces, in text form, the story told by Figures 1, 10, 11
and 13 of the paper:

1. sample the velocity distribution of traffic on two different networks —
   a Chicago-like axis-aligned grid and a San Francisco-like rotated grid —
   plus a uniform (skew-free) control;
2. show why the two naive DVA-finding approaches fail (plain PCA averages
   the axes; centroid k-means clusters around points, not axes);
3. run the paper's PC-distance k-means (Algorithm 2) and report the axes it
   finds, the τ threshold chosen for each partition (Section 5.2), and how
   many objects land in each partition versus the outlier partition; and
4. evaluate the analytic search-space model of Section 4 to show how much
   less space a partitioned index is predicted to search at the default
   predictive time.

Run it with:  python examples/velocity_analysis.py
"""

from repro import VelocityAnalyzer, WorkloadParameters, build_workload
from repro.core.cost_model import compare, crossover_time
from repro.core.pc_kmeans import centroid_kmeans_dvas, find_dvas, pca_only_dva
from repro.bench.reporting import format_table


def describe_axes(label, result, velocities):
    mean_perp = sum(
        v.perpendicular_distance_to_axis(result.axes[a])
        for v, a in zip(velocities, result.assignments)
    ) / len(velocities)
    angles = sorted(round(a, 1) for a in _angles(result.axes))
    return {
        "method": label,
        "axes (deg)": angles,
        "mean perpendicular speed": round(mean_perp, 2),
    }


def _angles(axes):
    import math

    return [math.degrees(axis.angle) % 180.0 for axis in axes]


def main() -> None:
    params = WorkloadParameters(num_objects=2_000, num_queries=0, time_duration=60.0)

    for dataset in ("CH", "SA", "uniform"):
        workload = build_workload(dataset, params, include_queries=False)
        velocities = workload.velocity_sample()
        print(f"=== {dataset}: {len(velocities)} sampled velocity points ===")

        rows = [
            describe_axes("PCA only (naive I)", pca_only_dva(velocities), velocities),
            describe_axes(
                "centroid k-means (naive II)", centroid_kmeans_dvas(velocities, 2), velocities
            ),
            describe_axes("PC-distance k-means (ours)", find_dvas(velocities, 2), velocities),
        ]
        print(format_table(rows))

        partitioning = VelocityAnalyzer(k=2).analyze(velocities)
        assignments = {0: 0, 1: 0, None: 0}
        for velocity in velocities:
            assignments[partitioning.partition_for(velocity)] += 1
        for i, dva in enumerate(partitioning.dvas):
            print(
                f"  partition {i}: axis {dva.angle_degrees():6.1f} deg, "
                f"tau {dva.tau:6.2f} m/ts, {assignments[i]} objects"
            )
        print(f"  outlier partition: {assignments[None]} objects")
        print()

    # The Section 4 closed forms, evaluated at the paper's default settings:
    # node extent ~ the paper's 1000 m query optimization size, speed 100 m/ts.
    d, v = 1_000.0, 100.0
    print("=== analytic model (Section 4, Equations 4-6) ===")
    print(f"crossover predictive time (d={d:.0f} m, v={v:.0f} m/ts): "
          f"{crossover_time(d, v):.2f} ts")
    rows = []
    for t_h in (5.0, 15.0, 30.0, 60.0, 120.0):
        point = compare(d, v, t_h)
        rows.append(
            {
                "predictive time (ts)": t_h,
                "unpartitioned volume": round(point.unpartitioned / 1e6, 1),
                "partitioned volume": round(point.partitioned / 1e6, 1),
                "ratio": round(point.improvement_factor, 2),
            }
        )
    print(format_table(rows, title="search volume (x 10^6 m^2 ts)"))


if __name__ == "__main__":
    main()
