#!/usr/bin/env python3
"""Sharded serving: process-backed shards, exact merges, crash recovery.

This example serves a moving-object index from worker *processes* and
shows the three contracts the serving layer keeps (docs/serving.md):

1. `ShardedIndex.build` wires shards + executor + recovery in one call;
2. answers are bit-identical to an unsharded index — range queries,
   kNN rankings and tie order included — whichever executor runs them;
3. a shard's worker process dying (`kill -9` here) is just another
   shard fault: the supervisor respawns the worker, replays the shard's
   write-ahead log, and answers stay exact.

Run it with:  python examples/sharded_serving.py
"""

import os
import signal
import time

from repro import WorkloadParameters, build_workload
from repro.bench.harness import knn_queries_from_workload
from repro.serve import ShardedIndex

FAMILY = "TPR*"
SHARDS = 2


def main() -> None:
    params = WorkloadParameters(num_objects=800, num_queries=20, time_duration=60.0)
    workload = build_workload("CH", params)
    pairs = [(e.old, e.new) for e in workload.update_events]
    queries = [e.query for e in workload.query_events]
    probes = knn_queries_from_workload(workload)[:10]

    # The unsharded truth, and the same data served from worker processes.
    truth = ShardedIndex.build(family=FAMILY, shards=1, space=params.space)
    served = ShardedIndex.build(
        family=FAMILY, shards=SHARDS, executor="process", space=params.space
    )
    with truth, served:
        for index in (truth, served):
            index.bulk_load(workload.initial_objects)
            index.update_batch(pairs[: len(pairs) // 2])
        pids = [served.executor.worker_pid(i) for i in range(SHARDS)]
        print(f"{FAMILY} x {SHARDS} shards in worker processes {pids}")

        answers = served.range_query_batch(queries)
        exact = [sorted(a) == b for a, b in zip(truth.range_query_batch(queries), answers)]
        ranked = truth.knn_query_batch(probes) == served.knn_query_batch(probes)
        print(f"range answers exact: {all(exact)}   kNN rankings exact: {ranked}")

        # Crash one worker mid-stream.  The next routed batch trips the
        # supervisor, which respawns the worker and replays the WAL.
        os.kill(pids[0], signal.SIGKILL)
        while served.executor.worker_alive(0):
            time.sleep(0.01)
        served.update_batch(pairs[len(pairs) // 2 :])
        truth.update_batch(pairs[len(pairs) // 2 :])
        event = served.recovery_events[-1]
        print(
            f"worker {pids[0]} killed; shard {event['shard_id']} recovered by "
            f"replaying {event['replayed_records']} WAL records into pid "
            f"{served.executor.worker_pid(0)}"
        )

        survived = [
            sorted(a) == b
            for a, b in zip(truth.range_query_batch(queries), served.range_query_batch(queries))
        ]
        print(f"post-recovery answers exact: {all(survived)}")


if __name__ == "__main__":
    main()
