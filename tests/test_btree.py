"""Unit and property tests for the paged B+-tree."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.btree.bplus_tree import BPlusTree
from repro.storage.buffer_manager import BufferManager


def small_tree(**kwargs) -> BPlusTree:
    """A tree with tiny node capacities so splits happen early."""
    kwargs.setdefault("leaf_capacity", 4)
    kwargs.setdefault("interior_capacity", 4)
    return BPlusTree(buffer=BufferManager(capacity=64), **kwargs)


class TestBasicOperations:
    def test_insert_and_search(self):
        tree = small_tree()
        tree.insert(5, "a")
        tree.insert(3, "b")
        tree.insert(8, "c")
        assert tree.search(3) == ["b"]
        assert tree.search(99) == []
        assert len(tree) == 3

    def test_duplicate_keys_are_kept(self):
        tree = small_tree()
        tree.insert(7, "first")
        tree.insert(7, "second")
        assert sorted(tree.search(7)) == ["first", "second"]

    def test_range_search_inclusive(self):
        tree = small_tree()
        for key in range(10):
            tree.insert(key, key * 10)
        result = tree.range_search(3, 6)
        assert [k for k, _ in result] == [3, 4, 5, 6]
        assert [v for _, v in result] == [30, 40, 50, 60]

    def test_range_search_empty_interval(self):
        tree = small_tree()
        tree.insert(1, "a")
        assert tree.range_search(5, 3) == []

    def test_delete_existing(self):
        tree = small_tree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1, "a")
        assert tree.search(1) == ["b"]
        assert len(tree) == 1

    def test_delete_missing_returns_false(self):
        tree = small_tree()
        tree.insert(1, "a")
        assert not tree.delete(1, "zzz")
        assert not tree.delete(2, "a")
        assert len(tree) == 1

    def test_items_in_key_order(self):
        tree = small_tree()
        keys = [9, 1, 5, 3, 7, 2, 8]
        for key in keys:
            tree.insert(key, str(key))
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(leaf_capacity=1)

    def test_page_size_derives_capacities(self):
        tree = BPlusTree(page_size=1024)
        assert tree.leaf_capacity == (1024 - 32) // 56
        assert tree.interior_capacity == (1024 - 32) // 16


class TestStructure:
    def test_tree_grows_in_height(self):
        tree = small_tree()
        assert tree.height == 1
        for key in range(50):
            tree.insert(key, key)
        assert tree.height >= 3

    def test_leaf_chain_connects_all_entries(self):
        tree = small_tree()
        for key in range(40):
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == list(range(40))

    def test_node_accesses_are_counted(self):
        tree = small_tree()
        for key in range(30):
            tree.insert(key, key)
        logical_before = tree.buffer.stats.logical.reads
        tree.search(17)
        assert tree.buffer.stats.logical.reads > logical_before


class TestAgainstReferenceModel:
    def test_random_operations_match_dict(self):
        rng = random.Random(99)
        tree = small_tree()
        reference = []
        for _ in range(800):
            action = rng.random()
            if action < 0.6 or not reference:
                key = rng.randrange(100)
                value = rng.randrange(10_000)
                tree.insert(key, value)
                reference.append((key, value))
            else:
                key, value = reference.pop(rng.randrange(len(reference)))
                assert tree.delete(key, value)
        assert len(tree) == len(reference)
        for key in range(100):
            expected = sorted(v for k, v in reference if k == key)
            assert sorted(tree.search(key)) == expected

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=200))
    def test_inserted_keys_are_all_retrievable(self, keys):
        tree = small_tree()
        for index, key in enumerate(keys):
            tree.insert(key, index)
        assert len(tree) == len(keys)
        assert sorted(k for k, _ in tree.items()) == sorted(keys)
        lo, hi = min(keys), max(keys)
        assert len(tree.range_search(lo, hi)) == len(keys)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=120),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
    )
    def test_range_search_matches_filter(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = small_tree()
        for index, key in enumerate(keys):
            tree.insert(key, index)
        expected = sorted(k for k in keys if lo <= k <= hi)
        assert sorted(k for k, _ in tree.range_search(lo, hi)) == expected
