"""Unit and property tests for the paged B+-tree."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.btree.bplus_tree import BPlusTree
from repro.storage.buffer_manager import BufferManager


def small_tree(**kwargs) -> BPlusTree:
    """A tree with tiny node capacities so splits happen early."""
    kwargs.setdefault("leaf_capacity", 4)
    kwargs.setdefault("interior_capacity", 4)
    return BPlusTree(buffer=BufferManager(capacity=64), **kwargs)


class TestBasicOperations:
    def test_insert_and_search(self):
        tree = small_tree()
        tree.insert(5, "a")
        tree.insert(3, "b")
        tree.insert(8, "c")
        assert tree.search(3) == ["b"]
        assert tree.search(99) == []
        assert len(tree) == 3

    def test_duplicate_keys_are_kept(self):
        tree = small_tree()
        tree.insert(7, "first")
        tree.insert(7, "second")
        assert sorted(tree.search(7)) == ["first", "second"]

    def test_range_search_inclusive(self):
        tree = small_tree()
        for key in range(10):
            tree.insert(key, key * 10)
        result = tree.range_search(3, 6)
        assert [k for k, _ in result] == [3, 4, 5, 6]
        assert [v for _, v in result] == [30, 40, 50, 60]

    def test_range_search_empty_interval(self):
        tree = small_tree()
        tree.insert(1, "a")
        assert tree.range_search(5, 3) == []

    def test_delete_existing(self):
        tree = small_tree()
        tree.insert(1, "a")
        tree.insert(1, "b")
        assert tree.delete(1, "a")
        assert tree.search(1) == ["b"]
        assert len(tree) == 1

    def test_delete_missing_returns_false(self):
        tree = small_tree()
        tree.insert(1, "a")
        assert not tree.delete(1, "zzz")
        assert not tree.delete(2, "a")
        assert len(tree) == 1

    def test_items_in_key_order(self):
        tree = small_tree()
        keys = [9, 1, 5, 3, 7, 2, 8]
        for key in keys:
            tree.insert(key, str(key))
        assert [k for k, _ in tree.items()] == sorted(keys)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(leaf_capacity=1)

    def test_page_size_derives_capacities(self):
        tree = BPlusTree(page_size=1024)
        assert tree.leaf_capacity == (1024 - 32) // 56
        assert tree.interior_capacity == (1024 - 32) // 16


class TestStructure:
    def test_tree_grows_in_height(self):
        tree = small_tree()
        assert tree.height == 1
        for key in range(50):
            tree.insert(key, key)
        assert tree.height >= 3

    def test_leaf_chain_connects_all_entries(self):
        tree = small_tree()
        for key in range(40):
            tree.insert(key, key)
        assert [k for k, _ in tree.items()] == list(range(40))

    def test_node_accesses_are_counted(self):
        tree = small_tree()
        for key in range(30):
            tree.insert(key, key)
        logical_before = tree.buffer.stats.logical.reads
        tree.search(17)
        assert tree.buffer.stats.logical.reads > logical_before


class TestArrayBackedKeys:
    def test_leaf_and_interior_keys_are_flat_arrays(self):
        from array import array

        tree = small_tree()
        for key in range(40):
            tree.insert(key, key)
        tree.delete(7, 7)
        seen_interior = False
        stack = [tree.root_page_id]
        while stack:
            node = tree._node(stack.pop())
            assert isinstance(node.keys, array)
            assert node.keys.typecode == "q"
            if not node.is_leaf:
                seen_interior = True
                stack.extend(node.children)
        assert seen_interior

    def test_bulk_load_produces_array_keys(self):
        from array import array

        tree = small_tree()
        tree.bulk_load([(k, str(k)) for k in range(30)])
        node = tree._node(tree.root_page_id)
        while not node.is_leaf:
            node = tree._node(node.children[0])
        assert isinstance(node.keys, array)


class TestReplace:
    def test_replace_in_place(self):
        tree = small_tree()
        tree.insert(5, "a")
        tree.insert(5, "b")
        tree.insert(5, "c")
        assert tree.replace(5, "b", "B")
        assert tree.search(5) == ["a", "B", "c"]
        assert len(tree) == 3

    def test_replace_missing_returns_false(self):
        tree = small_tree()
        tree.insert(5, "a")
        assert not tree.replace(5, "zzz", "x")
        assert not tree.replace(6, "a", "x")
        assert tree.search(5) == ["a"]

    def test_replace_walks_duplicate_run_across_leaves(self):
        tree = BPlusTree(leaf_capacity=2, interior_capacity=3)
        for index in range(12):
            tree.insert(42, ("dup", index))
        assert tree.replace(42, ("dup", 9), "found")
        values = tree.search(42)
        assert "found" in values and len(values) == 12


class TestBatchOperations:
    def test_insert_batch_matches_sequential_sorted_inserts(self):
        rng = random.Random(5)
        for _ in range(15):
            pairs = [(rng.randrange(40), ("v", i)) for i in range(rng.randrange(0, 150))]
            sequential, batched = small_tree(), small_tree()
            for key, value in sorted(pairs, key=lambda p: p[0]):
                sequential.insert(key, value)
            batched.insert_batch(pairs)
            assert list(sequential.items()) == list(batched.items())
            assert len(sequential) == len(batched) == len(pairs)

    def test_delete_batch_matches_sequential_deletes(self):
        rng = random.Random(6)
        for _ in range(15):
            pairs = [(rng.randrange(30), ("v", i)) for i in range(120)]
            sequential, batched = small_tree(), small_tree()
            sequential.insert_batch(pairs)
            batched.insert_batch(pairs)
            targets = rng.sample(pairs, 50) + [(99, "missing")]
            rng.shuffle(targets)
            expected = [sequential.delete(k, v) for k, v in targets]
            assert batched.delete_batch(targets) == expected
            assert list(sequential.items()) == list(batched.items())

    def test_apply_batch_mixed_operations(self):
        rng = random.Random(7)
        for _ in range(15):
            base = [(rng.randrange(50), ("b", i)) for i in range(100)]
            sequential, batched = small_tree(), small_tree()
            sequential.insert_batch(base)
            batched.insert_batch(base)
            deletes = rng.sample(base, 30)
            remaining = [p for p in base if p not in deletes]
            inserts = [(rng.randrange(50), ("i", i)) for i in range(25)]
            upserts = []
            for j in range(10):
                if remaining and rng.random() < 0.7:
                    key, value = remaining.pop(rng.randrange(len(remaining)))
                    upserts.append((key, value, ("u", j)))
                else:
                    upserts.append((rng.randrange(50), ("missing", j), ("u", j)))
            expected_deletes = [sequential.delete(k, v) for k, v in deletes]
            expected_upserts = []
            for key, old, new in upserts:
                if sequential.replace(key, old, new):
                    expected_upserts.append(True)
                else:
                    sequential.insert(key, new)
                    expected_upserts.append(False)
            for key, value in inserts:
                sequential.insert(key, value)
            delete_flags, upsert_flags = batched.apply_batch(deletes, inserts, upserts)
            assert delete_flags == expected_deletes
            assert upsert_flags == expected_upserts
            canonical = lambda t: sorted(t.items(), key=lambda p: (p[0], repr(p[1])))
            assert canonical(sequential) == canonical(batched)
            assert len(sequential) == len(batched)

    def test_range_search_batch_matches_individual_scans(self):
        rng = random.Random(8)
        tree = small_tree()
        tree.insert_batch([(rng.randrange(100), i) for i in range(300)])
        ranges = [(rng.randrange(100), rng.randrange(110)) for _ in range(30)]
        ranges.append((50, 40))  # empty interval
        got = tree.range_search_batch(ranges)
        assert got == [tree.range_search(lo, hi) for lo, hi in ranges]

    def test_batch_sweep_shares_descents(self):
        tree = BPlusTree(leaf_capacity=16, interior_capacity=16)
        tree.bulk_load([(k, k) for k in range(600)])
        pairs = [(k, ("new", k)) for k in range(100, 140)]
        sequential = BPlusTree(leaf_capacity=16, interior_capacity=16)
        sequential.bulk_load([(k, k) for k in range(600)])
        reads_before = sequential.buffer.stats.logical.reads
        for key, value in pairs:
            sequential.insert(key, value)
        sequential_reads = sequential.buffer.stats.logical.reads - reads_before
        reads_before = tree.buffer.stats.logical.reads
        tree.insert_batch(pairs)
        batched_reads = tree.buffer.stats.logical.reads - reads_before
        assert batched_reads < sequential_reads
        assert list(tree.items()) == list(sequential.items())


class TestAgainstReferenceModel:
    def test_random_operations_match_dict(self):
        rng = random.Random(99)
        tree = small_tree()
        reference = []
        for _ in range(800):
            action = rng.random()
            if action < 0.6 or not reference:
                key = rng.randrange(100)
                value = rng.randrange(10_000)
                tree.insert(key, value)
                reference.append((key, value))
            else:
                key, value = reference.pop(rng.randrange(len(reference)))
                assert tree.delete(key, value)
        assert len(tree) == len(reference)
        for key in range(100):
            expected = sorted(v for k, v in reference if k == key)
            assert sorted(tree.search(key)) == expected

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=200))
    def test_inserted_keys_are_all_retrievable(self, keys):
        tree = small_tree()
        for index, key in enumerate(keys):
            tree.insert(key, index)
        assert len(tree) == len(keys)
        assert sorted(k for k, _ in tree.items()) == sorted(keys)
        lo, hi = min(keys), max(keys)
        assert len(tree.range_search(lo, hi)) == len(keys)

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=120),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
    )
    def test_range_search_matches_filter(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = small_tree()
        for index, key in enumerate(keys):
            tree.insert(key, index)
        expected = sorted(k for k in keys if lo <= k <= hi)
        assert sorted(k for k, _ in tree.range_search(lo, hi)) == expected
