"""Smoke tests of the per-figure experiment drivers (tiny parameters).

These tests check that every driver produces rows with the expected columns
and series; the full-size shapes are exercised by the benchmarks and recorded
in EXPERIMENTS.md.
"""

import pytest

from repro.bench import experiments
from repro.workload.parameters import WorkloadParameters


@pytest.fixture(scope="module")
def tiny_params():
    return WorkloadParameters(
        num_objects=120,
        max_speed=60.0,
        max_update_interval=40.0,
        query_radius=600.0,
        query_predictive_time=20.0,
        time_duration=40.0,
        num_queries=5,
        buffer_pages=8,
        page_size=512,
        seed=3,
    )


def test_fig07_rows(tiny_params):
    rows = experiments.fig07_search_space_expansion("CH", tiny_params)
    assert {row["index"] for row in rows} == {"Bx", "Bx(VP)", "TPR*", "TPR*(VP)"}
    for row in rows:
        assert row["samples"] > 0
        assert row["anisotropy"] >= 1.0


def test_fig10_rows(tiny_params):
    rows = experiments.fig10_dva_discovery("SA", tiny_params)
    assert len(rows) == 3
    ours = next(r for r in rows if "ours" in r["method"])
    naive_pca = next(r for r in rows if "naive I" in r["method"])
    assert ours["mean_perp_speed"] <= naive_pca["mean_perp_speed"]


def test_fig17_rows(tiny_params):
    rows = experiments.fig17_tau_threshold(
        "CH", tiny_params, fixed_taus=(0.0, 20.0), which=("Bx(VP)",)
    )
    modes = {row["mode"] for row in rows}
    assert modes == {"auto", "fixed"}
    assert len(rows) == 3  # 1 auto + 2 fixed


def test_fig18_rows(tiny_params):
    rows = experiments.fig18_analyzer_overhead(("CH", "uniform"), tiny_params, repetitions=2)
    assert [row["dataset"] for row in rows] == ["CH", "uniform"]
    for row in rows:
        assert row["analyzer_ms"] > 0.0


def test_fig19_rows(tiny_params):
    rows = experiments.fig19_datasets(("CH", "uniform"), tiny_params)
    assert len(rows) == 8  # 2 datasets x 4 indexes
    assert {row["dataset"] for row in rows} == {"CH", "uniform"}


def test_fig20_rows(tiny_params):
    rows = experiments.fig20_data_size("CH", tiny_params, sizes=(60, 120))
    assert {row["num_objects"] for row in rows} == {60, 120}


def test_fig21_rows(tiny_params):
    rows = experiments.fig21_max_speed("CH", tiny_params, speeds=(20.0, 60.0))
    assert {row["max_speed"] for row in rows} == {20.0, 60.0}


def test_fig22_rows(tiny_params):
    rows = experiments.fig22_query_radius("CH", tiny_params, radii=(200.0, 800.0))
    assert {row["query_radius"] for row in rows} == {200.0, 800.0}


def test_fig23_rows(tiny_params):
    rows = experiments.fig23_predictive_time("CH", tiny_params, times=(10.0, 30.0))
    assert {row["predictive_time"] for row in rows} == {10.0, 30.0}


def test_fig24_rows(tiny_params):
    rows = experiments.fig24_predictive_time_rectangular("CH", tiny_params, times=(10.0,))
    assert {row["predictive_time"] for row in rows} == {10.0}
    assert len(rows) == 4


def test_ablation_vp_parameters(tiny_params):
    rows = experiments.ablation_vp_parameters(
        "CH", tiny_params, ks=(1, 2), sample_sizes=(50,)
    )
    variants = {row["variant"] for row in rows}
    assert variants == {"k", "sample_size"}


def test_ablation_space_filling_curve(tiny_params):
    rows = experiments.ablation_space_filling_curve("CH", tiny_params)
    assert {row["curve"] for row in rows} == {"hilbert", "z"}
