"""Subprocess body + shared fixtures for the SIGKILL crash-recovery tests.

Not a test module (pytest does not collect it).  Run as a script it
builds a durable sharded Bx index, checkpoints it, then SIGKILLs itself
at a chosen ordinal of a chosen crash-hook event during an update storm:

    python crash_child.py <store_root> <kill_event> <kill_ordinal>

``kill_event`` is one of the storage layer's torn-write windows
(``dw:torn``, ``dw:synced``, ``home:torn``) or the WAL's ``wal:torn``.
The parent test asserts the process died of SIGKILL, reopens the store,
and compares its answers against a clean twin built by the same
deterministic helpers below — which is why they live here, importable
from both sides.
"""

import os
import random
import signal
import sys

from repro.bxtree.bx_tree import BxTree
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.vector import Vector
from repro.objects.knn import KNNQuery
from repro.objects.moving_object import MovingObject
from repro.objects.queries import RangeQuery, RectangularRange
from repro.serve.config import ServeConfig
from repro.serve.durable_store import DurableStore
from repro.serve.sharded_index import ShardedIndex
from repro.storage.buffer_manager import BufferManager

NUM_SHARDS = 2
NUM_OBJECTS = 120
NUM_UPDATES = 40
#: Small pool so post-checkpoint evictions dirty ``pages.db`` — the
#: recovery path must restore the checkpoint image, not trust the live
#: file.
BUFFER_PAGES = 8
SPACE = Rect(0.0, 0.0, 100.0, 100.0)
MAX_UPDATE_INTERVAL = 20.0
#: Tiny pages (many nodes) + the small pool guarantee evictions — and so
#: double-write windows — during the armed update storm.
PAGE_SIZE = 512
SEED = 20260808


def make_shard(buffer):
    """One Bx shard over ``buffer`` (the durable ``shard_factory``)."""
    return BxTree(
        buffer=buffer,
        space=SPACE,
        max_update_interval=MAX_UPDATE_INTERVAL,
        page_size=PAGE_SIZE,
    )


def make_objects():
    rng = random.Random(SEED)
    return [
        MovingObject(
            oid=oid,
            position=Point(rng.uniform(5.0, 95.0), rng.uniform(5.0, 95.0)),
            velocity=Vector(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)),
            reference_time=0.0,
        )
        for oid in range(NUM_OBJECTS)
    ]


def make_updates(objects):
    """Deterministic (old, new) update pairs touching every shard."""
    rng = random.Random(SEED + 1)
    live = {obj.oid: obj for obj in objects}
    pairs = []
    for step in range(NUM_UPDATES):
        old = live[rng.randrange(NUM_OBJECTS)]
        new = MovingObject(
            oid=old.oid,
            position=Point(rng.uniform(5.0, 95.0), rng.uniform(5.0, 95.0)),
            velocity=Vector(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)),
            reference_time=1.0 + step / NUM_UPDATES,
        )
        pairs.append((old, new))
        live[old.oid] = new
    return pairs


def probes():
    """The fixed query mix both sides answer (range + kNN)."""
    ranges = [
        RangeQuery(
            range=RectangularRange(Rect(10.0 * i, 5.0, 10.0 * i + 30.0, 80.0)),
            start_time=3.0,
            end_time=4.0,
            issue_time=2.0,
        )
        for i in range(5)
    ]
    knns = [
        KNNQuery(center=Point(20.0 + 12.0 * i, 50.0), k=5, query_time=3.5, issue_time=2.0)
        for i in range(4)
    ]
    return ranges, knns


def answers(index):
    """The full range + kNN answer set of ``index`` to the probes.

    Returned verbatim (ids, distances, order) so equality between two
    indexes means bit-identical answers.
    """
    ranges, knns = probes()
    return index.range_query_batch(ranges), index.knn_query_batch(knns, space=SPACE)


def build_twin():
    """An in-memory sharded twin (same factories, same topology)."""
    shards = [make_shard(BufferManager(capacity=BUFFER_PAGES)) for _ in range(NUM_SHARDS)]
    return ShardedIndex(
        shards, ServeConfig(name="Bx-twin", space=SPACE, max_workers=1)
    )


def main(root, kill_event, kill_ordinal):
    armed = [False]
    seen = [0]

    def hook(event):
        if armed[0] and event == kill_event:
            seen[0] += 1
            if seen[0] >= kill_ordinal:
                os.kill(os.getpid(), signal.SIGKILL)

    store = DurableStore(root, crash_hook=hook)
    index = store.create(
        make_shard,
        num_shards=NUM_SHARDS,
        name="Bx",
        space=SPACE,
        buffer_pages=BUFFER_PAGES,
        max_workers=1,
    )
    index.bulk_load(make_objects())
    index.checkpoint()
    armed[0] = True
    for old, new in make_updates(make_objects()):
        index.update(old, new)
    # The kill never fired: exit distinctly so the parent flags the miss.
    sys.exit(3)


if __name__ == "__main__":
    main(sys.argv[1], sys.argv[2], int(sys.argv[3]))
