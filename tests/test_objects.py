"""Tests for the moving-object model and the query predicates."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.vector import Vector
from repro.objects.moving_object import MovingObject, ObjectUpdate
from repro.objects.queries import (
    CircularRange,
    MovingRangeQuery,
    RangeQuery,
    RectangularRange,
    TimeIntervalRangeQuery,
    TimeSliceRangeQuery,
)


def obj(x, y, vx, vy, t=0.0, oid=1):
    return MovingObject(oid=oid, position=Point(x, y), velocity=Vector(vx, vy), reference_time=t)


class TestMovingObject:
    def test_position_at_future(self):
        o = obj(0.0, 0.0, 2.0, -1.0)
        assert o.position_at(5.0) == Point(10.0, -5.0)

    def test_position_at_respects_reference_time(self):
        o = obj(0.0, 0.0, 1.0, 0.0, t=10.0)
        assert o.position_at(15.0) == Point(5.0, 0.0)

    def test_speed(self):
        assert obj(0, 0, 3.0, 4.0).speed == pytest.approx(5.0)

    def test_as_moving_rect_is_degenerate(self):
        mr = obj(1.0, 2.0, 3.0, 4.0).as_moving_rect()
        assert mr.rect.area == 0.0
        assert mr.v_x_min == 3.0 and mr.v_y_max == 4.0

    def test_with_update_keeps_oid(self):
        o = obj(0, 0, 1, 1, oid=9)
        updated = o.with_update(Point(5, 5), Vector(0, 0), 10.0)
        assert updated.oid == 9
        assert updated.reference_time == 10.0

    def test_object_update_requires_same_oid(self):
        with pytest.raises(ValueError):
            ObjectUpdate(time=1.0, old=obj(0, 0, 0, 0, oid=1), new=obj(0, 0, 0, 0, oid=2))


class TestQueryConstruction:
    def test_time_slice_is_flagged(self):
        q = TimeSliceRangeQuery(CircularRange(Point(0, 0), 10.0), time=5.0)
        assert q.is_time_slice
        assert not q.is_moving
        assert q.predictive_time == 5.0

    def test_interval_query(self):
        q = TimeIntervalRangeQuery(CircularRange(Point(0, 0), 10.0), 5.0, 8.0, issue_time=2.0)
        assert not q.is_time_slice
        assert q.predictive_time == 6.0

    def test_moving_query(self):
        q = MovingRangeQuery(
            RectangularRange(Rect(0, 0, 10, 10)), Vector(1, 0), 0.0, 5.0
        )
        assert q.is_moving

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            RangeQuery(CircularRange(Point(0, 0), 1.0), start_time=5.0, end_time=4.0)

    def test_interval_before_issue_raises(self):
        with pytest.raises(ValueError):
            RangeQuery(
                CircularRange(Point(0, 0), 1.0), start_time=1.0, end_time=2.0, issue_time=3.0
            )

    def test_negative_radius_raises(self):
        with pytest.raises(ValueError):
            CircularRange(Point(0, 0), -1.0)


class TestQueryGeometry:
    def test_range_at_moves_with_velocity(self):
        q = MovingRangeQuery(CircularRange(Point(0, 0), 1.0), Vector(2.0, 0.0), 0.0, 5.0)
        assert q.range_at(3.0).center == Point(6.0, 0.0)

    def test_bounding_rect_over_interval_covers_both_ends(self):
        q = MovingRangeQuery(RectangularRange(Rect(0, 0, 1, 1)), Vector(1.0, 0.0), 0.0, 4.0)
        bound = q.bounding_rect_over_interval()
        assert bound.contains_rect(Rect(0, 0, 1, 1))
        assert bound.contains_rect(Rect(4, 0, 5, 1))

    def test_as_moving_rect_matches_query_velocity(self):
        q = MovingRangeQuery(RectangularRange(Rect(0, 0, 2, 2)), Vector(1.5, -0.5), 0.0, 4.0)
        mr = q.as_moving_rect()
        assert mr.v_x_min == mr.v_x_max == 1.5
        assert mr.v_y_min == mr.v_y_max == -0.5


class TestMatches:
    def test_time_slice_circle_hit_and_miss(self):
        q = TimeSliceRangeQuery(CircularRange(Point(10.0, 0.0), 1.0), time=5.0)
        assert q.matches(obj(0.0, 0.0, 2.0, 0.0))  # at (10, 0) at t=5
        assert not q.matches(obj(0.0, 0.0, 0.0, 0.0))

    def test_time_slice_rectangle(self):
        q = TimeSliceRangeQuery(RectangularRange(Rect(9.0, -1.0, 11.0, 1.0)), time=5.0)
        assert q.matches(obj(0.0, 0.0, 2.0, 0.0))
        assert not q.matches(obj(0.0, 5.0, 2.0, 0.0))

    def test_interval_query_catches_pass_through(self):
        # The object crosses the circle between t=4 and t=6 only.
        q_hit = TimeIntervalRangeQuery(CircularRange(Point(10.0, 0.0), 1.0), 0.0, 10.0)
        q_miss = TimeIntervalRangeQuery(CircularRange(Point(10.0, 0.0), 1.0), 0.0, 3.0)
        o = obj(0.0, 0.0, 2.0, 0.0)
        assert q_hit.matches(o)
        assert not q_miss.matches(o)

    def test_moving_query_relative_motion(self):
        # Query chases the object at the same speed: relative position constant.
        inside = obj(0.5, 0.5, 1.0, 0.0)
        outside = obj(5.0, 5.0, 1.0, 0.0)
        q = MovingRangeQuery(RectangularRange(Rect(0, 0, 1, 1)), Vector(1.0, 0.0), 0.0, 10.0)
        assert q.matches(inside)
        assert not q.matches(outside)

    def test_stationary_object_inside_range(self):
        q = TimeIntervalRangeQuery(RectangularRange(Rect(0, 0, 10, 10)), 0.0, 5.0)
        assert q.matches(obj(5.0, 5.0, 0.0, 0.0))

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-10, max_value=10),
        st.floats(min_value=-10, max_value=10),
        st.floats(min_value=0, max_value=20),
    )
    def test_matches_agrees_with_dense_sampling_circle(self, x, y, vx, vy, duration):
        o = obj(x, y, vx, vy)
        q = TimeIntervalRangeQuery(CircularRange(Point(0.0, 0.0), 30.0), 0.0, duration)
        sampled = any(
            CircularRange(Point(0.0, 0.0), 30.0).contains(o.position_at(duration * i / 300.0))
            for i in range(301)
        )
        if sampled:
            assert q.matches(o)
        if not q.matches(o):
            assert not sampled

    @settings(max_examples=100, deadline=None)
    @given(
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-100, max_value=100),
        st.floats(min_value=-10, max_value=10),
        st.floats(min_value=-10, max_value=10),
        st.floats(min_value=0, max_value=20),
    )
    def test_matches_agrees_with_dense_sampling_rectangle(self, x, y, vx, vy, duration):
        o = obj(x, y, vx, vy)
        rect = Rect(-25.0, -15.0, 25.0, 15.0)
        q = TimeIntervalRangeQuery(RectangularRange(rect), 0.0, duration)
        sampled = any(
            rect.contains_point(o.position_at(duration * i / 300.0)) for i in range(301)
        )
        if sampled:
            assert q.matches(o)
