"""Unit tests for Point and Vector."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.geometry.point import Point
from repro.geometry.vector import Vector

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestPoint:
    def test_distance_to_is_euclidean(self):
        assert Point(0.0, 0.0).distance_to(Point(3.0, 4.0)) == pytest.approx(5.0)

    def test_squared_distance_matches_distance(self):
        a, b = Point(1.0, 2.0), Point(4.0, 6.0)
        assert a.squared_distance_to(b) == pytest.approx(a.distance_to(b) ** 2)

    def test_translate(self):
        assert Point(1.0, 1.0).translate(2.0, -3.0) == Point(3.0, -2.0)

    def test_at_time_projects_linearly(self):
        p = Point(10.0, 20.0)
        moved = p.at_time(Vector(2.0, -1.0), 5.0)
        assert moved == Point(20.0, 15.0)

    def test_iter_and_tuple(self):
        p = Point(3.5, -2.0)
        assert tuple(p) == (3.5, -2.0)
        assert p.as_tuple() == (3.5, -2.0)

    def test_points_are_value_objects(self):
        assert Point(1.0, 2.0) == Point(1.0, 2.0)
        assert hash(Point(1.0, 2.0)) == hash(Point(1.0, 2.0))


class TestVector:
    def test_magnitude(self):
        assert Vector(3.0, 4.0).magnitude == pytest.approx(5.0)

    def test_angle(self):
        assert Vector(0.0, 2.0).angle == pytest.approx(math.pi / 2)
        assert Vector(-1.0, 0.0).angle == pytest.approx(math.pi)

    def test_normalized_has_unit_length(self):
        assert Vector(10.0, -5.0).normalized().magnitude == pytest.approx(1.0)

    def test_normalized_zero_vector_raises(self):
        with pytest.raises(ValueError):
            Vector(0.0, 0.0).normalized()

    def test_dot_and_cross(self):
        a, b = Vector(1.0, 2.0), Vector(3.0, 4.0)
        assert a.dot(b) == pytest.approx(11.0)
        assert a.cross(b) == pytest.approx(-2.0)

    def test_perpendicular_is_rotation_by_90_degrees(self):
        v = Vector(1.0, 0.0)
        assert v.perpendicular() == Vector(0.0, 1.0)
        assert v.perpendicular().dot(v) == pytest.approx(0.0)

    def test_rotated_by_half_pi(self):
        v = Vector(1.0, 0.0).rotated(math.pi / 2)
        assert v.vx == pytest.approx(0.0, abs=1e-12)
        assert v.vy == pytest.approx(1.0)

    def test_scaled(self):
        assert Vector(1.0, -2.0).scaled(3.0) == Vector(3.0, -6.0)

    def test_arithmetic(self):
        assert Vector(1.0, 2.0) + Vector(3.0, 4.0) == Vector(4.0, 6.0)
        assert Vector(1.0, 2.0) - Vector(3.0, 4.0) == Vector(-2.0, -2.0)
        assert -Vector(1.0, -2.0) == Vector(-1.0, 2.0)

    def test_perpendicular_distance_to_axis(self):
        # Velocity (3, 4) against the x-axis: perpendicular component is 4.
        assert Vector(3.0, 4.0).perpendicular_distance_to_axis(Vector(1.0, 0.0)) == pytest.approx(4.0)
        # Against the y-axis: perpendicular component is 3.
        assert Vector(3.0, 4.0).perpendicular_distance_to_axis(Vector(0.0, 5.0)) == pytest.approx(3.0)

    def test_perpendicular_distance_is_sign_invariant(self):
        axis = Vector(1.0, 1.0)
        v = Vector(2.0, -1.0)
        assert v.perpendicular_distance_to_axis(axis) == pytest.approx(
            v.perpendicular_distance_to_axis(-axis)
        )

    def test_component_along(self):
        assert Vector(3.0, 4.0).component_along(Vector(1.0, 0.0)) == pytest.approx(3.0)

    @given(finite, finite)
    def test_perpendicular_and_parallel_components_reconstruct_magnitude(self, vx, vy):
        v = Vector(vx, vy)
        axis = Vector(1.0, 2.0)
        parallel = v.component_along(axis)
        perpendicular = v.perpendicular_distance_to_axis(axis)
        assert math.hypot(parallel, perpendicular) == pytest.approx(v.magnitude, abs=1e-6)

    @given(finite, finite, st.floats(min_value=-math.pi, max_value=math.pi))
    def test_rotation_preserves_magnitude(self, vx, vy, angle):
        v = Vector(vx, vy)
        assert v.rotated(angle).magnitude == pytest.approx(v.magnitude, rel=1e-9, abs=1e-9)
