"""Unit and property tests for MovingRect (MBR + VBR)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.moving_rect import MovingRect
from repro.geometry.point import Point
from repro.geometry.rect import Rect
from repro.geometry.vector import Vector

coord = st.floats(min_value=-1e4, max_value=1e4, allow_nan=False, allow_infinity=False)
speed = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)


@st.composite
def moving_points(draw):
    p = Point(draw(coord), draw(coord))
    v = Vector(draw(speed), draw(speed))
    t = draw(st.floats(min_value=0.0, max_value=50.0))
    return MovingRect.from_moving_point(p, v, t)


class TestConstruction:
    def test_from_moving_point_is_degenerate(self):
        mr = MovingRect.from_moving_point(Point(1.0, 2.0), Vector(3.0, -4.0), 5.0)
        assert mr.rect.area == 0.0
        assert mr.v_x_min == mr.v_x_max == 3.0
        assert mr.v_y_min == mr.v_y_max == -4.0
        assert mr.reference_time == 5.0

    def test_bounding_empty_raises(self):
        with pytest.raises(ValueError):
            MovingRect.bounding([], 0.0)

    def test_bounding_takes_velocity_extremes(self):
        a = MovingRect.from_moving_point(Point(0, 0), Vector(2.0, -1.0), 0.0)
        b = MovingRect.from_moving_point(Point(1, 1), Vector(-3.0, 4.0), 0.0)
        bound = MovingRect.bounding([a, b], 0.0)
        assert bound.v_x_min == -3.0
        assert bound.v_x_max == 2.0
        assert bound.v_y_min == -1.0
        assert bound.v_y_max == 4.0
        assert bound.rect.as_tuple() == (0.0, 0.0, 1.0, 1.0)


class TestProjection:
    def test_rect_at_future_time_expands(self):
        mr = MovingRect(Rect(0, 0, 1, 1), -1.0, -2.0, 3.0, 4.0, reference_time=0.0)
        future = mr.rect_at(2.0)
        assert future.as_tuple() == (-2.0, -4.0, 7.0, 9.0)

    def test_rect_at_past_time_is_frozen(self):
        mr = MovingRect(Rect(0, 0, 1, 1), -1.0, -1.0, 1.0, 1.0, reference_time=10.0)
        assert mr.rect_at(5.0) == mr.rect

    def test_projected_to_round_trip(self):
        mr = MovingRect.from_moving_point(Point(0, 0), Vector(1.0, 1.0), 0.0)
        projected = mr.projected_to(10.0)
        assert projected.reference_time == 10.0
        assert projected.rect.center == Point(10.0, 10.0)

    def test_expansion_rates(self):
        mr = MovingRect(Rect(0, 0, 1, 1), -2.0, 0.0, 3.0, 1.0)
        assert mr.expansion_rate_x == 5.0
        assert mr.expansion_rate_y == 1.0


class TestContainsAndIntersects:
    def test_contains_over_interval(self):
        child = MovingRect.from_moving_point(Point(5, 5), Vector(1.0, 0.0), 0.0)
        parent = MovingRect(Rect(0, 0, 10, 10), -1.0, -1.0, 2.0, 1.0, 0.0)
        assert parent.contains(child, 0.0, 10.0)

    def test_intersects_during_immediate_overlap(self):
        a = MovingRect(Rect(0, 0, 2, 2), 0, 0, 0, 0, 0.0)
        b = MovingRect(Rect(1, 1, 3, 3), 0, 0, 0, 0, 0.0)
        assert a.intersects_during(b, 0.0, 1.0)

    def test_intersects_during_future_meeting(self):
        # b starts 10 to the right and moves left at speed 2: they meet at t=4.
        a = MovingRect(Rect(0, 0, 2, 2), 0, 0, 0, 0, 0.0)
        b = MovingRect(Rect(10, 0, 12, 2), -2.0, 0.0, -2.0, 0.0, 0.0)
        assert not a.intersects_during(b, 0.0, 3.0)
        assert a.intersects_during(b, 0.0, 4.1)
        assert a.intersects_during(b, 3.9, 6.0)

    def test_intersects_during_never(self):
        a = MovingRect(Rect(0, 0, 1, 1), 0, 0, 0, 0, 0.0)
        b = MovingRect(Rect(10, 10, 11, 11), 1.0, 1.0, 1.0, 1.0, 0.0)
        assert not a.intersects_during(b, 0.0, 100.0)

    def test_intersects_during_invalid_interval_raises(self):
        a = MovingRect(Rect(0, 0, 1, 1), 0, 0, 0, 0, 0.0)
        with pytest.raises(ValueError):
            a.intersects_during(a, 5.0, 1.0)

    def test_diverging_objects_never_meet(self):
        a = MovingRect.from_moving_point(Point(0, 0), Vector(-1.0, 0.0), 0.0)
        b = MovingRect.from_moving_point(Point(1, 0), Vector(1.0, 0.0), 0.0)
        assert not a.intersects_during(b, 0.0, 50.0)


class TestBoundingInvariant:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(moving_points(), min_size=2, max_size=8), st.floats(min_value=50.0, max_value=200.0))
    def test_bound_contains_children_at_future_times(self, children, future):
        reference = max(c.reference_time for c in children)
        bound = MovingRect.bounding(children, reference)
        for child in children:
            child_rect = child.rect_at(future)
            bound_rect = bound.rect_at(future)
            grown = bound_rect.enlarged(1e-6, 1e-6)
            assert grown.contains_rect(child_rect)

    @settings(max_examples=60, deadline=None)
    @given(moving_points(), moving_points(), st.floats(min_value=0.0, max_value=100.0))
    def test_intersects_during_agrees_with_sampling(self, a, b, duration):
        start = max(a.reference_time, b.reference_time)
        end = start + duration
        reported = a.intersects_during(b, start, end)
        sampled = any(
            a.rect_at(start + duration * i / 200.0).intersects(
                b.rect_at(start + duration * i / 200.0)
            )
            for i in range(201)
        )
        # Sampling can only under-detect; it must never contradict a negative.
        if sampled:
            assert reported
